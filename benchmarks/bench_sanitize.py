"""Sanitizer overhead bench — starts the ``BENCH_sanitize.json`` trajectory.

Runs every registered sanitize kernel three times — on a bare pool,
under the SimTSan race detector, and under the SimCheck memory
sanitizer — and records, per kernel:

* the **simulated clock** all three ways.  Event recording is
  charge-free (``ctx.read``/``ctx.write`` replaced equal-unit
  ``ctx.charge`` calls during the migration, and pure recording uses
  ``units=0.0``), and the memcheck read barrier never touches the
  cost model either, so both deltas must be exactly zero; the bench
  asserts it and the JSON keeps the numbers so a future PR that
  accidentally couples a sanitizer to the cost model shows up as a
  nonzero ``sim_delta`` / ``sim_delta_mem``.
* the **wall-clock** time each way — the real price of building the
  per-location access maps, the pairwise conflict check, and the
  per-access bounds/poison checks.

Usage::

    PYTHONPATH=src python benchmarks/bench_sanitize.py

Writes ``benchmarks/results/BENCH_sanitize.json`` and prints a table.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import emit, paper_table, results_dir  # noqa: E402
from repro.parallel.scheduler import SimulatedPool  # noqa: E402
from repro.sanitizer import KERNELS  # noqa: E402
from repro.sanitizer.detector import RaceDetector  # noqa: E402
from repro.sanitizer.memcheck import MemChecker  # noqa: E402

THREADS = 4
REPEATS = 3


def _measure(body, mode: str) -> tuple[float, float]:
    """Return (simulated clock, best-of-N wall seconds) for one run.

    ``mode`` is ``"off"`` (bare pool), ``"detector"`` (SimTSan), or
    ``"memcheck"`` (SimCheck poisoned allocations + read barrier).
    """
    best = float("inf")
    clock = 0.0
    for _ in range(REPEATS):
        pool = SimulatedPool(threads=THREADS)
        begin = time.perf_counter()
        if mode == "detector":
            with RaceDetector().watch(pool):
                body(pool)
        elif mode == "memcheck":
            with MemChecker().watch(pool):
                body(pool)
        else:
            body(pool)
        best = min(best, time.perf_counter() - begin)
        clock = pool.clock
    return clock, best


def run() -> dict:
    records = []
    for name, body in KERNELS.items():
        sim_off, wall_off = _measure(body, mode="off")
        sim_on, wall_on = _measure(body, mode="detector")
        sim_mem, wall_mem = _measure(body, mode="memcheck")
        sim_delta = sim_on - sim_off
        sim_delta_mem = sim_mem - sim_off
        assert sim_delta == 0.0, (
            f"{name}: detector changed the simulated clock by {sim_delta}"
            " — recording must stay charge-free"
        )
        assert sim_delta_mem == 0.0, (
            f"{name}: memcheck changed the simulated clock by"
            f" {sim_delta_mem} — the read barrier must stay charge-free"
        )
        records.append(
            {
                "kernel": name,
                "sim_clock_off": sim_off,
                "sim_clock_on": sim_on,
                "sim_clock_mem": sim_mem,
                "sim_delta": sim_delta,
                "sim_delta_mem": sim_delta_mem,
                "wall_off_s": wall_off,
                "wall_on_s": wall_on,
                "wall_mem_s": wall_mem,
                "wall_overhead": (
                    wall_on / wall_off if wall_off > 0 else float("nan")
                ),
                "wall_overhead_mem": (
                    wall_mem / wall_off if wall_off > 0 else float("nan")
                ),
            }
        )
    return {
        "bench": "sanitize_overhead",
        "threads": THREADS,
        "repeats": REPEATS,
        "kernels": records,
    }


def main() -> int:
    payload = run()
    out = results_dir() / "BENCH_sanitize.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    rows = [
        [
            r["kernel"],
            f"{r['sim_clock_off']:.0f}",
            f"{r['sim_delta']:.0f}",
            f"{r['sim_delta_mem']:.0f}",
            f"{r['wall_off_s'] * 1e3:.1f}",
            f"{r['wall_on_s'] * 1e3:.1f}",
            f"{r['wall_mem_s'] * 1e3:.1f}",
            f"{r['wall_overhead']:.2f}x",
            f"{r['wall_overhead_mem']:.2f}x",
        ]
        for r in payload["kernels"]
    ]
    emit(
        "bench_sanitize",
        paper_table(
            [
                "kernel",
                "sim clock",
                "tsan delta",
                "mem delta",
                "wall off (ms)",
                "wall tsan (ms)",
                "wall mem (ms)",
                "tsan ovh",
                "mem ovh",
            ],
            rows,
            title="SimTSan / SimCheck sanitizer overhead"
            f" ({THREADS} virtual threads, best of {REPEATS})",
        ),
    )
    print(f"wrote {out}")
    return 0


def test_bench_sanitize_overhead():
    """Pytest entry: no sanitizer ever perturbs the simulated clock."""
    payload = run()
    assert all(r["sim_delta"] == 0.0 for r in payload["kernels"])
    assert all(r["sim_delta_mem"] == 0.0 for r in payload["kernels"])


if __name__ == "__main__":
    sys.exit(main())
