"""Table IV — PBKS-D on densest subgraph and maximum clique.

For every dataset: CoreApp's output quality and cost, Opt-D's (the
BKS-based optimum over k-cores) cost, PBKS-D's quality and 40-core
cost, whether the exact maximum clique is contained in PBKS-D's output
subgraph S*, and |S*|/n.

Paper shape: PBKS-D's average degree >= CoreApp's and equals Opt-D's;
PBKS-D is the fastest; the maximum clique lies inside S* on most
datasets; S* is a tiny fraction of the graph.
"""

from __future__ import annotations

import numpy as np

from common import ALL_DATASETS, emit, paper_table, sim_seconds
from repro.parallel.scheduler import SimulatedPool
from repro.search.clique import maximum_clique
from repro.search.coreapp import coreapp_densest
from repro.search.densest import optd_densest, pbks_densest


def _rows(lab):
    rows = []
    checks = []
    for abbr in ALL_DATASETS:
        b = lab.bundle(abbr)
        # CoreApp: includes its own peeling pass (paper timing convention)
        pool_ca = SimulatedPool(threads=1)
        ca = coreapp_densest(b.graph, pool_ca)
        # Opt-D: BKS-based optimal best core (serial)
        pool_od = SimulatedPool(threads=1)
        od = optd_densest(b.graph, b.coreness, b.hcd, pool_od)
        # PBKS-D at 40 threads (score computation on shared artifacts)
        pool_pd = SimulatedPool(threads=40)
        pd = pbks_densest(
            b.graph, b.coreness, b.hcd, pool_pd, counts=b.counts
        )
        mc = maximum_clique(b.graph)
        contained = set(mc.tolist()) <= set(pd.members.tolist())
        frac = pd.size / b.graph.num_vertices
        rows.append(
            [
                abbr,
                f"{ca.average_degree:.2f}",
                f"{sim_seconds(pool_ca.clock):.3f}",
                f"{sim_seconds(pool_od.clock):.3f}",
                f"{pd.average_degree:.2f}",
                f"{sim_seconds(pool_pd.clock):.3f}",
                "Y" if contained else "-",
                f"{100 * frac:.3f}%",
            ]
        )
        checks.append(
            (abbr, ca.average_degree, od.average_degree, pd.average_degree,
             pool_ca.clock, pool_od.clock, pool_pd.clock, contained, frac)
        )
    return rows, checks


def test_table4_densest_and_clique(lab, benchmark):
    rows, checks = benchmark.pedantic(_rows, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        [
            "DS", "CoreApp davg", "CoreApp s", "Opt-D s",
            "PBKS-D davg", "PBKS-D s", "MC in S*", "|S*|/n",
        ],
        rows,
        title="Table IV — densest subgraph & maximum clique",
    )
    emit("table4_densest", text)
    contained_count = 0
    for (abbr, ca_d, od_d, pd_d, ca_t, od_t, pd_t, contained, frac) in checks:
        assert pd_d == np.float64(od_d) or abs(pd_d - od_d) < 1e-9, abbr
        assert pd_d >= ca_d - 1e-9, f"{abbr}: PBKS-D must match/beat CoreApp"
        assert pd_t < od_t, f"{abbr}: PBKS-D(40) must beat Opt-D(1)"
        assert frac < 0.25, f"{abbr}: S* should be a small fraction"
        contained_count += bool(contained)
    # paper: MC inside S* on 7/10 datasets; require a clear majority
    assert contained_count >= 6, f"MC containment on only {contained_count}/10"
