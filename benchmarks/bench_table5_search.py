"""Table V — runtime of subgraph search (PBKS vs serial BKS).

For every dataset and both metric families: the 40-core PBKS score-
computation time in (simulated) seconds, and its relative speedup over
the serial BKS.  Paper bands: 20-50x for type-A, 15-25x for type-B.
"""

from __future__ import annotations

from common import (
    ALL_DATASETS,
    TYPE_A_METRIC,
    TYPE_B_METRIC,
    emit,
    paper_table,
    sim_seconds,
)


def _rows(lab):
    rows = []
    for abbr in ALL_DATASETS:
        pbks_a = lab.pbks_time(abbr, TYPE_A_METRIC, 40)
        pbks_b = lab.pbks_time(abbr, TYPE_B_METRIC, 40)
        bks_a = lab.bks_time(abbr, TYPE_A_METRIC)
        bks_b = lab.bks_time(abbr, TYPE_B_METRIC)
        rows.append(
            [
                abbr,
                f"{sim_seconds(pbks_a):.4f}",
                f"{bks_a / pbks_a:.2f}x",
                f"{sim_seconds(pbks_b):.4f}",
                f"{bks_b / pbks_b:.2f}x",
            ]
        )
    return rows


def test_table5_subgraph_search_runtime(lab, benchmark):
    rows = benchmark.pedantic(_rows, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        ["DS", "Type-A (40) s", "Type-A (1)", "Type-B (40) s", "Type-B (1)"],
        rows,
        title=(
            "Table V — subgraph search runtime "
            "((1) columns: PBKS's speedup over serial BKS)"
        ),
    )
    emit("table5_search", text)
    for row in rows:
        speedup_a = float(row[2].rstrip("x"))
        speedup_b = float(row[4].rstrip("x"))
        assert speedup_a > 5.0, f"{row[0]}: type-A speedup too low"
        assert speedup_b > 3.0, f"{row[0]}: type-B speedup too low"
        # type-B work (O(m^1.5)) dwarfs type-A (O(n)) in absolute time
        assert float(row[3]) > float(row[1]), row[0]
