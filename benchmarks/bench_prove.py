"""SimProve bench — starts the ``BENCH_prove.json`` trajectory.

Three stages:

* **prove** — wall time of the full SAN5xx certification pass over the
  kernel registry (fixpoint interval proofs + determinism
  classification + manifest payload), with certified / fully-proven /
  obligation counts riding along as coverage guards;
* **elision** — for every certified kernel with proven arrays, run it
  under the memcheck barrier at a modeled cost of one work unit per
  crossing, with and without its certificate, and record the sim-clock
  work the certificate elides.  Findings and races must be identical
  in both modes — the fast path may only skip checks the certificate
  already discharged statically;
* **bit_identity** — the paper's PKC peeling kernel on a Holme–Kim
  graph, run end-to-end under ``MemChecker`` barriers with and without
  the certificate: the coreness arrays must be bit-identical
  (``np.array_equal``) and the checker must report zero findings in
  both modes.

Usage::

    PYTHONPATH=src python benchmarks/bench_prove.py

Writes ``benchmarks/results/BENCH_prove.json`` and prints a table.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import emit, paper_table, results_dir  # noqa: E402
from repro.core.pkc import pkc_core_decomposition  # noqa: E402
from repro.graph.generators import powerlaw_cluster  # noqa: E402
from repro.parallel.scheduler import SimulatedPool  # noqa: E402
from repro.sanitizer.kernels import run_kernel  # noqa: E402
from repro.sanitizer.memcheck import MemChecker  # noqa: E402
from repro.sanitizer.prove import prove_kernels  # noqa: E402

REPEATS = 3
#: Modeled sim-clock cost of one memcheck barrier crossing.
BARRIER_UNITS = 1.0


def _timed(fn):
    """(result, best-of-N wall seconds) for one stage."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return result, best


def _elision_rows(report) -> list[dict]:
    """Barrier-elision savings per certified kernel with proven arrays."""
    rows = []
    for name, cert in sorted(report.certificates.items()):
        if cert.status != "certified" or not cert.proven_arrays:
            continue
        base = run_kernel(name, memcheck=True, barrier_units=BARRIER_UNITS)
        fast = run_kernel(
            name,
            memcheck=True,
            barrier_units=BARRIER_UNITS,
            certificate=cert,
        )
        # the certificate may only remove checks, never change outcomes
        assert [str(r) for r in base.races] == [str(r) for r in fast.races]
        assert [str(f) for f in base.memcheck_findings] == [
            str(f) for f in fast.memcheck_findings
        ]
        if fast.elided == 0:
            # certificate covers only plain numpy accesses, which never
            # cross the runtime barrier — nothing to elide
            assert fast.clock == base.clock, f"{name}: clock drifted"
            continue
        assert fast.clock < base.clock, f"{name}: no sim-clock savings"
        rows.append(
            {
                "kernel": name,
                "fully_proven": cert.fully_proven,
                "proven_arrays": list(cert.proven_arrays),
                "clock_memcheck": base.clock,
                "clock_certified": fast.clock,
                "elided": fast.elided,
                "saved_units": base.clock - fast.clock,
            }
        )
    return rows


def _bit_identity(cert) -> dict:
    """PKC end-to-end: certified fast path must be bit-identical."""
    graph = powerlaw_cluster(240, 3, 0.3, seed=11)

    def _run(certificate):
        pool = SimulatedPool(threads=4)
        checker = MemChecker(barrier_units=BARRIER_UNITS)
        if certificate is not None:
            checker.apply_certificate(certificate)
        with checker.watch(pool):
            coreness = pkc_core_decomposition(graph, pool)
        return coreness, checker, pool.clock

    base, base_chk, base_clock = _run(None)
    fast, fast_chk, fast_clock = _run(cert)
    assert np.array_equal(base, fast), "certified path changed the answer"
    assert not base_chk.findings and not fast_chk.findings
    assert fast_chk.elided_events > 0
    assert fast_clock < base_clock
    return {
        "graph": "powerlaw_cluster(240, 3, 0.3, seed=11)",
        "bit_identical": bool(np.array_equal(base, fast)),
        "clock_memcheck": base_clock,
        "clock_certified": fast_clock,
        "elided": fast_chk.elided_events,
    }


def run() -> dict:
    report, wall_prove = _timed(lambda: prove_kernels())
    certified = report.certified
    fully = [
        n for n, c in report.certificates.items() if c.fully_proven
    ]
    obligations = sum(
        len(c.obligations) for c in report.certificates.values()
    )
    rows, wall_elision = _timed(lambda: _elision_rows(report))
    identity, wall_identity = _timed(
        lambda: _bit_identity(report.certificates["pkc"])
    )
    return {
        "bench": "prove_certification",
        "repeats": REPEATS,
        "barrier_units": BARRIER_UNITS,
        "stages": {
            "prove": {
                "wall_s": wall_prove,
                "kernels": len(report.certificates),
                "certified": len(certified),
                "fully_proven": sorted(fully),
                "obligations": obligations,
                "san501": sum(
                    1 for f in report.findings if f.code == "SAN501"
                ),
            },
            "elision": {
                "wall_s": wall_elision,
                "kernels": rows,
                "total_saved_units": sum(r["saved_units"] for r in rows),
                "total_elided": sum(r["elided"] for r in rows),
            },
            "bit_identity": {"wall_s": wall_identity, **identity},
        },
    }


def main() -> int:
    payload = run()
    out = results_dir() / "BENCH_prove.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    s = payload["stages"]
    rows = [
        [
            "prove",
            f"{s['prove']['wall_s'] * 1e3:.1f}",
            f"{s['prove']['certified']}/{s['prove']['kernels']} certified",
            f"{s['prove']['obligations']} obligations, "
            f"{s['prove']['san501']} SAN501",
        ],
        [
            "elision",
            f"{s['elision']['wall_s'] * 1e3:.1f}",
            f"{len(s['elision']['kernels'])} kernels",
            f"{s['elision']['total_elided']} barriers elided, "
            f"{s['elision']['total_saved_units']:.0f} units saved",
        ],
        [
            "bit_identity",
            f"{s['bit_identity']['wall_s'] * 1e3:.1f}",
            "pkc end-to-end",
            f"identical={s['bit_identity']['bit_identical']}, "
            f"clock {s['bit_identity']['clock_memcheck']:.0f} -> "
            f"{s['bit_identity']['clock_certified']:.0f}",
        ],
    ]
    emit(
        "bench_prove",
        paper_table(
            ["stage", "wall (ms)", "scope", "outcome"],
            rows,
            title="SimProve certification + barrier elision"
            f" (best of {REPEATS})",
        ),
    )
    print(f"wrote {out}")
    return 0


def test_bench_prove():
    """Pytest entry: certification coverage + provably free elision."""
    payload = run()
    s = payload["stages"]
    assert s["prove"]["certified"] >= 10
    assert s["prove"]["san501"] == 0
    assert s["elision"]["total_elided"] > 0
    assert s["elision"]["total_saved_units"] > 0
    assert s["bit_identity"]["bit_identical"]
    assert s["bit_identity"]["clock_certified"] < (
        s["bit_identity"]["clock_memcheck"]
    )


if __name__ == "__main__":
    sys.exit(main())
