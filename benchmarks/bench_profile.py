"""SimProf overhead gate — starts the ``BENCH_profile.json`` trajectory.

Runs every registered sanitize kernel twice — once on a bare pool,
once under the SimProf span tracer — and records, per kernel:

* the **simulated clock** both ways.  The tracer is strictly
  read-only (it only snapshots ``RegionStats`` and context counters),
  so the delta must be exactly ``0.0``; the bench asserts it, and the
  JSON keeps both numbers so a future PR that accidentally couples
  tracing to the cost model shows up as a nonzero ``sim_delta``.
* the **span coverage**: the sum of traced region spans must equal
  the pool clock bitwise — the invariant every exporter relies on.
* the **wall-clock** time both ways — the real price of building the
  span tree and the contention attribution maps.

Usage::

    PYTHONPATH=src python benchmarks/bench_profile.py

Writes ``benchmarks/results/BENCH_profile.json`` and prints a table.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import emit, paper_table, results_dir  # noqa: E402
from repro.parallel.scheduler import SimulatedPool  # noqa: E402
from repro.profiler import SpanTracer  # noqa: E402
from repro.sanitizer import KERNELS  # noqa: E402

THREADS = 4
REPEATS = 3


def _measure(body, traced: bool) -> tuple[float, float, int, bool]:
    """Return (sim clock, best wall seconds, regions, coverage_exact)."""
    best = float("inf")
    clock = 0.0
    regions = 0
    coverage = True
    for _ in range(REPEATS):
        pool = SimulatedPool(threads=THREADS)
        tracer = SpanTracer() if traced else None
        begin = time.perf_counter()
        if tracer is not None:
            with tracer.watch(pool):
                body(pool)
        else:
            body(pool)
        best = min(best, time.perf_counter() - begin)
        clock = pool.clock
        if tracer is not None:
            regions = len(tracer.region_spans())
            coverage = tracer.total_elapsed() == pool.clock
    return clock, best, regions, coverage


def run() -> dict:
    records = []
    for name, body in KERNELS.items():
        sim_off, wall_off, _, _ = _measure(body, traced=False)
        sim_on, wall_on, regions, coverage = _measure(body, traced=True)
        sim_delta = sim_on - sim_off
        assert sim_delta == 0.0, (
            f"{name}: tracer changed the simulated clock by {sim_delta}"
            " — SimProf must stay read-only"
        )
        assert coverage, (
            f"{name}: traced spans do not sum to the pool clock"
        )
        records.append(
            {
                "kernel": name,
                "sim_clock_off": sim_off,
                "sim_clock_on": sim_on,
                "sim_delta": sim_delta,
                "regions": regions,
                "coverage_exact": coverage,
                "wall_off_s": wall_off,
                "wall_on_s": wall_on,
                "wall_overhead": (
                    wall_on / wall_off if wall_off > 0 else float("nan")
                ),
            }
        )
    return {
        "bench": "profile_overhead",
        "threads": THREADS,
        "repeats": REPEATS,
        "kernels": records,
    }


def main() -> int:
    payload = run()
    out = results_dir() / "BENCH_profile.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    rows = [
        [
            r["kernel"],
            f"{r['sim_clock_off']:.0f}",
            f"{r['sim_delta']:.0f}",
            str(r["regions"]),
            "yes" if r["coverage_exact"] else "NO",
            f"{r['wall_off_s'] * 1e3:.1f}",
            f"{r['wall_on_s'] * 1e3:.1f}",
            f"{r['wall_overhead']:.2f}x",
        ]
        for r in payload["kernels"]
    ]
    emit(
        "bench_profile",
        paper_table(
            [
                "kernel",
                "sim clock",
                "sim delta",
                "spans",
                "exact",
                "wall off (ms)",
                "wall on (ms)",
                "overhead",
            ],
            rows,
            title="SimProf tracer overhead"
            f" ({THREADS} virtual threads, best of {REPEATS})",
        ),
    )
    print(f"wrote {out}")
    return 0


def test_bench_profile_overhead():
    """Pytest entry: the tracer never perturbs the simulated clock."""
    payload = run()
    assert all(r["sim_delta"] == 0.0 for r in payload["kernels"])
    assert all(r["coverage_exact"] for r in payload["kernels"])


if __name__ == "__main__":
    sys.exit(main())
