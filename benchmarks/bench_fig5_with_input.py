"""Figure 5 — (PKC + PHCD) speedup over (BZ + LCPS), input included.

The same sweep as Figure 4 but charging the core-decomposition input
computation on both sides: the parallel stack pays PKC, the serial
stack pays Batagelj-Zaversnik.  Paper shape: curves like Figure 4 but
with a lower ceiling, because PKC scales worse than PHCD.
"""

from __future__ import annotations

from repro.analysis.stats import ascii_series

from common import FIGURE_DATASETS, THREADS, emit, emit_profile, paper_table


def _series(lab):
    rows = []
    for abbr in FIGURE_DATASETS:
        serial = lab.serial_stack_construction(abbr)
        series = [
            serial / lab.parallel_stack_construction(abbr, p) for p in THREADS
        ]
        rows.append(
            [abbr]
            + [f"{x:.2f}" for x in series]
            + [ascii_series(series)]
        )
    return rows


def test_fig5_stack_speedup_with_input(lab, benchmark):
    rows = benchmark.pedantic(_series, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        ["DS"] + [f"p={p}" for p in THREADS] + ["curve"],
        rows,
        title="Figure 5 — (PKC+PHCD) speedup to (BZ+LCPS), incl. input",
    )
    emit("fig5_with_input", text)
    emit_profile("fig5_with_input")
    for abbr, row in zip(FIGURE_DATASETS, rows):
        with_input = [float(x) for x in row[1:-1]]
        pure = [
            lab.lcps_time(abbr) / lab.phcd_time(abbr, p) for p in THREADS
        ]
        # including the input reduces the 40-core speedup (PKC drags)
        assert with_input[-1] < pure[-1]
        assert with_input[-1] > 1.0
