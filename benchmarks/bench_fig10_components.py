"""Figure 10 — per-component 40-core speedup over the serial stack.

For each figure dataset, the 40-thread speedup of every pipeline
component against its serial counterpart:

* CD   — PKC(40) vs Batagelj-Zaversnik
* HCD  — PHCD(40) vs LCPS
* SC-A — PBKS type-A score computation (excl. preprocessing) vs BKS
* SC-B — PBKS type-B vs BKS

Paper shape: CD has the lowest speedup (hardest to parallelize), SC-A
the highest (>40x on some datasets), SC-B in between (~20x).
"""

from __future__ import annotations

from common import (
    FIGURE_DATASETS,
    TYPE_A_METRIC,
    TYPE_B_METRIC,
    emit,
    emit_profile,
    paper_table,
)

P = 40


def _rows(lab):
    rows = []
    for abbr in FIGURE_DATASETS:
        cd = lab.bz_time(abbr) / lab.pkc_time(abbr, P)
        hcd = lab.lcps_time(abbr) / lab.phcd_time(abbr, P)
        sc_a = lab.bks_time(abbr, TYPE_A_METRIC) / lab.pbks_time(
            abbr, TYPE_A_METRIC, P
        )
        sc_b = lab.bks_time(abbr, TYPE_B_METRIC) / lab.pbks_time(
            abbr, TYPE_B_METRIC, P
        )
        rows.append(
            [abbr, f"{cd:.1f}", f"{hcd:.1f}", f"{sc_a:.1f}", f"{sc_b:.1f}"]
        )
    return rows


def test_fig10_component_speedups(lab, benchmark):
    rows = benchmark.pedantic(_rows, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        ["DS", "CD", "HCD", "SC-A", "SC-B"],
        rows,
        title="Figure 10 — per-component 40-core speedup over the serial stack",
    )
    emit("fig10_components", text)
    emit_profile("fig10_components")
    for row in rows:
        cd, hcd, sc_a, sc_b = (float(x) for x in row[1:])
        assert cd < sc_a, f"{row[0]}: CD must scale worst vs SC-A"
        assert sc_b < sc_a, f"{row[0]}: SC-B must trail SC-A"
        assert all(x > 1.0 for x in (cd, hcd, sc_a, sc_b)), row[0]
