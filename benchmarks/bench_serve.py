"""HCDServe serving bench — writes ``BENCH_serve.json``.

Replays one deterministic 64-request synthetic workload against a
published snapshot of the AS stand-in and records, per simulated
thread count (1/2/4/8):

* **throughput** (answers per 1k work units) and the **cache hit
  rate** — both work-unit quantities, so they must be bit-identical
  across thread counts (asserted: the whole replay signature minus the
  pool clock is compared across the sweep);
* **p50/p95/p99 latency** in work units (same determinism bar);
* the **simulated pool clock**, the one legitimately thread-dependent
  number — it should *shrink* as threads grow (batched shared passes
  parallelize).

It also replays the same trace in per-query baseline mode (batch size
1, no shared-pass memoization, no result cache) and asserts the
batched service beats it on the simulated clock — the build-once/
query-many payoff the serving layer exists for.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py

Writes ``benchmarks/results/BENCH_serve.json`` and prints a table.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import emit, paper_table, results_dir  # noqa: E402
from repro.analysis.datasets import load  # noqa: E402
from repro.serve import (  # noqa: E402
    HCDService,
    ServiceConfig,
    SnapshotCatalog,
    build_snapshot,
    synthetic_trace,
)

THREADS = [1, 2, 4, 8]
DATASET = "AS"
TRACE_REQUESTS = 64
TRACE_SEED = 7
BASELINE_THREADS = 4


def _signature(report) -> dict:
    """The thread-count-independent part of a replay report."""
    payload = report.as_dict()
    payload.pop("sim_clock")
    payload.pop("threads")
    payload["records"] = [r.as_dict() for r in report.records]
    return payload


def run() -> dict:
    dataset = load(DATASET)
    trace = synthetic_trace(TRACE_REQUESTS, seed=TRACE_SEED)
    assert len(trace) >= 32, "speedup claim requires a >=32-query trace"

    with tempfile.TemporaryDirectory() as root:
        catalog = SnapshotCatalog(root)
        snapshot = build_snapshot(
            dataset.graph, threads=4, name="bench", source=DATASET
        )
        catalog.publish(snapshot)

        rows = []
        signatures = []
        for threads in THREADS:
            service = HCDService(catalog, "bench", threads=threads)
            report = service.serve(trace)
            signatures.append(_signature(report))
            rows.append(
                {
                    "threads": threads,
                    "throughput_per_1k_work": report.throughput,
                    "cache_hit_rate": report.cache["hit_rate"],
                    "p50_work_units": report.p50,
                    "p95_work_units": report.p95,
                    "p99_work_units": report.p99,
                    "work_units": report.work_units,
                    "sim_clock": report.sim_clock,
                    "admitted": report.admitted,
                    "hits": report.hits,
                    "computed": report.computed,
                    "coalesced": report.coalesced,
                    "batches": report.batches,
                }
            )

        for signature in signatures[1:]:
            assert signature == signatures[0], (
                "serving replay diverged across thread counts — "
                "work-unit accounting must be partition-independent"
            )

        baseline_config = ServiceConfig(
            max_batch=1, cache_capacity=0, share_passes=False
        )
        baseline = HCDService(
            catalog, "bench", threads=BASELINE_THREADS, config=baseline_config
        ).serve(trace)
        batched_clock = next(
            r["sim_clock"] for r in rows if r["threads"] == BASELINE_THREADS
        )
        assert batched_clock < baseline.sim_clock, (
            f"batched serving ({batched_clock:.0f}) must beat per-query "
            f"({baseline.sim_clock:.0f}) on the simulated clock for a "
            f"{len(trace)}-request trace"
        )

    return {
        "bench": "serve",
        "dataset": DATASET,
        "trace_requests": TRACE_REQUESTS,
        "trace_seed": TRACE_SEED,
        "deterministic_across_threads": True,
        "threads": rows,
        "per_query_baseline": {
            "threads": BASELINE_THREADS,
            "sim_clock": baseline.sim_clock,
            "work_units": baseline.work_units,
            "throughput_per_1k_work": baseline.throughput,
        },
        "batched_speedup": baseline.sim_clock / batched_clock,
    }


def main() -> int:
    payload = run()
    out = results_dir() / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    rows = [
        [
            str(r["threads"]),
            f"{r['sim_clock']:.0f}",
            f"{r['work_units']:.0f}",
            f"{r['p50_work_units']:.0f}",
            f"{r['p95_work_units']:.0f}",
            f"{r['p99_work_units']:.0f}",
            f"{r['throughput_per_1k_work']:.3f}",
            f"{r['cache_hit_rate']:.2f}",
            f"{r['batches']}",
        ]
        for r in payload["threads"]
    ]
    emit(
        "bench_serve",
        paper_table(
            [
                "p",
                "sim clock",
                "work units",
                "p50",
                "p95",
                "p99",
                "thr/1k",
                "hit rate",
                "batches",
            ],
            rows,
            title=(
                f"HCDServe replay of {TRACE_REQUESTS} requests on {DATASET} "
                f"(batched {payload['batched_speedup']:.1f}x over per-query "
                f"at p={BASELINE_THREADS})"
            ),
        ),
    )
    print(f"wrote {out}")
    return 0


def test_bench_serve():
    """Pytest entry: determinism across threads + the batching win."""
    payload = run()
    assert payload["deterministic_across_threads"]
    assert payload["batched_speedup"] > 1.0
    hit_rates = {r["cache_hit_rate"] for r in payload["threads"]}
    p95s = {r["p95_work_units"] for r in payload["threads"]}
    assert len(hit_rates) == 1 and len(p95s) == 1


if __name__ == "__main__":
    sys.exit(main())
