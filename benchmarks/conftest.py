"""Benchmark fixtures: the shared measurement lab."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import shared_lab  # noqa: E402


@pytest.fixture(scope="session")
def lab():
    """Session-wide memoized measurement lab."""
    return shared_lab()


def pytest_configure(config):
    # benchmarks print paper-style tables; keep output visible
    config.option.verbose = max(config.option.verbose, 0)
