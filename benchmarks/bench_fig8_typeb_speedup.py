"""Figure 8 — PBKS's speedup to BKS, type-B score computation.

Thread sweep for the motif-based metric family (triangles/triplets).
Paper shape: ~15-25x at 40 threads — lower than type-A because
higher-order motif counting parallelizes less cleanly.
"""

from __future__ import annotations

from repro.analysis.stats import ascii_series

from common import (
    FIGURE_DATASETS,
    THREADS,
    TYPE_B_METRIC,
    emit,
    emit_profile,
    paper_table,
)


def _series(lab):
    rows = []
    for abbr in FIGURE_DATASETS:
        bks = lab.bks_time(abbr, TYPE_B_METRIC)
        series = [
            bks / lab.pbks_time(abbr, TYPE_B_METRIC, p) for p in THREADS
        ]
        rows.append(
            [abbr]
            + [f"{x:.1f}" for x in series]
            + [ascii_series(series)]
        )
    return rows


def test_fig8_typeb_score_speedup(lab, benchmark):
    rows = benchmark.pedantic(_series, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        ["DS"] + [f"p={p}" for p in THREADS] + ["curve"],
        rows,
        title="Figure 8 — PBKS's speedup to BKS (type-B score computation)",
    )
    emit("fig8_typeb_speedup", text)
    emit_profile("fig8_typeb_speedup", metric=TYPE_B_METRIC)
    for abbr, row in zip(FIGURE_DATASETS, rows):
        series = [float(x) for x in row[1:-1]]
        assert series[-1] == max(series), f"{abbr}: 40 threads fastest"
        assert series[-1] > 4.0, f"{abbr}: type-B speedup too low"
        # type-B ceiling sits below this dataset's type-A ceiling
        from common import TYPE_A_METRIC

        type_a = lab.bks_time(abbr, TYPE_A_METRIC) / lab.pbks_time(
            abbr, TYPE_A_METRIC, 40
        )
        assert series[-1] < type_a, f"{abbr}: type-B must trail type-A"
