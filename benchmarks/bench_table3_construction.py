"""Table III — time cost of HCD construction.

Reproduces the paper's Table III on the stand-ins:

* ``PHCD (s)`` at 1 core, with the LB and LCPS columns expressed as
  PHCD's *relative speedup* to them (paper convention: ``LB`` < 1 means
  the union-find lower bound is faster; ``LCPS`` > 1 means PHCD beats
  the serial state of the art);
* ``PHCD (s)`` at 40 cores, with LB and RC columns.

Paper bands to reproduce: serial PHCD 1.24-2.33x faster than LCPS;
LB/PHCD around 0.3-0.55 serially and 0.28-0.77 at 40 cores; RC 4-125x
slower than PHCD at 40 cores.
"""

from __future__ import annotations

from common import ALL_DATASETS, emit, paper_table, sim_seconds


def _rows(lab):
    rows = []
    for abbr in ALL_DATASETS:
        phcd1 = lab.phcd_time(abbr, 1)
        phcd40 = lab.phcd_time(abbr, 40)
        lcps = lab.lcps_time(abbr)
        lb1 = lab.lb_time(abbr, 1)
        lb40 = lab.lb_time(abbr, 40)
        rc40 = lab.rc_time(abbr, 40)
        rows.append(
            [
                abbr,
                f"{sim_seconds(phcd1):.3f}",
                f"{lb1 / phcd1:.2f}x",
                f"{lcps / phcd1:.2f}x",
                f"{sim_seconds(phcd40):.3f}",
                f"{lb40 / phcd40:.2f}x",
                f"{rc40 / phcd40:.2f}x",
            ]
        )
    return rows


def test_table3_hcd_construction(lab, benchmark):
    rows = benchmark.pedantic(_rows, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        ["DS", "PHCD(1) s", "LB(1)", "LCPS(1)", "PHCD(40) s", "LB(40)", "RC(40)"],
        rows,
        title=(
            "Table III — HCD construction cost "
            "(LB/LCPS/RC columns are PHCD's relative speedup)"
        ),
    )
    emit("table3_construction", text)
    for row in rows:
        lcps_ratio = float(row[3].rstrip("x"))
        lb1_ratio = float(row[2].rstrip("x"))
        rc_ratio = float(row[6].rstrip("x"))
        # shape assertions (paper bands, with simulator slack)
        assert lcps_ratio > 1.0, f"{row[0]}: serial PHCD must beat LCPS"
        assert lb1_ratio < 1.0, f"{row[0]}: LB must lower-bound PHCD"
        assert rc_ratio > 1.5, f"{row[0]}: RC must be clearly slower"
