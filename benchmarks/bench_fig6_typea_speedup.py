"""Figure 6 — PBKS's speedup to BKS, type-A score computation.

Thread sweep over the six figure datasets, measuring PBKS's score
computation (shared preprocessing excluded, per the paper's Figure 10
note) against the full serial BKS.  Paper shape: up to ~50x at 40
threads, monotone in p.
"""

from __future__ import annotations

from repro.analysis.stats import ascii_series

from common import (
    FIGURE_DATASETS,
    THREADS,
    TYPE_A_METRIC,
    emit,
    emit_profile,
    paper_table,
)


def _series(lab):
    rows = []
    for abbr in FIGURE_DATASETS:
        bks = lab.bks_time(abbr, TYPE_A_METRIC)
        series = [
            bks / lab.pbks_time(abbr, TYPE_A_METRIC, p) for p in THREADS
        ]
        rows.append(
            [abbr]
            + [f"{x:.1f}" for x in series]
            + [ascii_series(series)]
        )
    return rows


def test_fig6_typea_score_speedup(lab, benchmark):
    rows = benchmark.pedantic(_series, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        ["DS"] + [f"p={p}" for p in THREADS] + ["curve"],
        rows,
        title="Figure 6 — PBKS's speedup to BKS (type-A score computation)",
    )
    emit("fig6_typea_speedup", text)
    emit_profile("fig6_typea_speedup", metric=TYPE_A_METRIC)
    for row in rows:
        series = [float(x) for x in row[1:-1]]
        assert series == sorted(series), f"{row[0]}: must be monotone"
        assert series[-1] > 10.0, f"{row[0]}: 40-thread speedup too low"
