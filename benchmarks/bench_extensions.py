"""Extension benchmarks (paper Section VI & related-work claims).

* **truss hierarchy scaling** — the PHCD framework transplanted to
  k-truss must scale with threads like PHCD does (the Section VI
  claim, quantified);
* **CD engines** — PKC must beat ParK at every thread count ("PKC adds
  more optimization techniques and has a lower synchronization
  overhead", Section VII), with Batagelj-Zaversnik as the serial
  reference;
* **influential-community index** — construction is one cheap pass and
  queries are index-only (the "Efficient Subgraph Index" extension).
"""

from __future__ import annotations

import numpy as np

from common import THREADS, emit, paper_table, sim_seconds
from repro.core.park import park_core_decomposition
from repro.core.pkc import pkc_core_decomposition
from repro.parallel.scheduler import SimulatedPool
from repro.search.influential import InfluentialCommunityIndex
from repro.truss.decomposition import EdgeIndex, truss_decomposition
from repro.truss.hierarchy import truss_hierarchy


def test_extension_truss_hierarchy_scaling(lab, benchmark):
    """Truss-hierarchy construction scales with simulated threads."""
    b = lab.bundle("H")  # dense, triangle-rich stand-in
    index = EdgeIndex(b.graph)
    trussness = truss_decomposition(b.graph, index)

    def sweep():
        clocks = {}
        reference = None
        for p in THREADS:
            pool = SimulatedPool(threads=p)
            th = truss_hierarchy(b.graph, trussness, pool, index=index)
            clocks[p] = pool.clock
            if reference is None:
                reference = th.canonical_form()
            else:
                assert th.canonical_form() == reference
        return clocks

    clocks = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"p={p}", f"{sim_seconds(clocks[p]):.4f}", f"{clocks[1] / clocks[p]:.2f}x"]
        for p in THREADS
    ]
    text = paper_table(
        ["threads", "time (s)", "speedup"],
        rows,
        title="Extension — truss hierarchy via the PHCD framework (H)",
    )
    emit("extension_truss_scaling", text)
    assert clocks[40] < clocks[1] / 2


def test_extension_cd_engines(lab, benchmark):
    """The full engine family: BZ (serial reference), ParK, PKC,
    Julienne/GBBS bucketing, and the MPM distributed iteration.
    Claims: PKC beats ParK everywhere (Sec. VII), Julienne's
    work-efficiency beats PKC's O(n*kmax+m) scans, and every engine's
    output is bit-identical to BZ's (checked in the test suite).
    """
    import numpy as np

    from repro.core.distributed import mpm_core_decomposition
    from repro.core.julienne import julienne_core_decomposition

    b = lab.bundle("LJ")

    def sweep():
        rows = []
        bz = lab.bz_time("LJ")
        for p in THREADS:
            pool_pkc = SimulatedPool(threads=p)
            pkc_core_decomposition(b.graph, pool_pkc)
            pool_park = SimulatedPool(threads=p)
            park_core_decomposition(b.graph, pool_park)
            pool_jln = SimulatedPool(threads=p)
            out = julienne_core_decomposition(b.graph, pool_jln)
            assert np.array_equal(out, b.coreness)
            pool_mpm = SimulatedPool(threads=p)
            mpm_out, _ = mpm_core_decomposition(b.graph, pool_mpm)
            assert np.array_equal(mpm_out, b.coreness)
            rows.append(
                (p, bz, pool_pkc.clock, pool_park.clock, pool_jln.clock, pool_mpm.clock)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rendered = [
        [
            f"p={p}",
            f"{bz / pkc:.2f}x",
            f"{bz / park:.2f}x",
            f"{bz / jln:.2f}x",
            f"{bz / mpm:.2f}x",
        ]
        for (p, bz, pkc, park, jln, mpm) in rows
    ]
    text = paper_table(
        ["threads", "PKC", "ParK", "Julienne", "MPM"],
        rendered,
        title="Extension — CD engines, speedup over serial BZ (LJ)",
    )
    emit("extension_cd_engines", text)
    for (p, bz, pkc, park, jln, mpm) in rows:
        assert pkc < park, f"PKC must beat ParK at p={p}"


def test_extension_influential_index(lab, benchmark):
    """Index construction is cheap; (k, r) queries are index-only."""
    b = lab.bundle("LJ")
    rng = np.random.default_rng(3)
    weights = rng.random(b.graph.num_vertices)

    def build():
        pool = SimulatedPool(threads=40)
        index = InfluentialCommunityIndex(b.hcd, weights, pool)
        return index, pool.clock

    index, build_clock = benchmark.pedantic(build, rounds=1, iterations=1)
    phcd40 = lab.phcd_time("LJ", 40)
    answers = index.top_r(4, 3)
    rows = [
        ["index build", f"{sim_seconds(build_clock):.4f}"],
        ["PHCD(40) for reference", f"{sim_seconds(phcd40):.4f}"],
        [f"top-3 4-cores found", str(len(answers))],
    ]
    text = paper_table(
        ["quantity", "value"],
        rows,
        title="Extension — influential-community index on the HCD (LJ)",
    )
    emit("extension_influential", text)
    assert build_clock < phcd40  # strictly cheaper than building the HCD
    assert answers and answers[0].influence >= answers[-1].influence


def test_extension_nucleus_hierarchy(lab, benchmark):
    """The paper's named open problem, closed and measured.

    Section VII: "there is no parallel solution for the hierarchy
    construction of nucleus decomposition."  The PHCD framework over
    triangles/K4s provides one; this harness measures its thread
    scaling on a dense stand-in fragment and checks thread invariance.
    """
    from repro.graph.generators import planted_partition
    from repro.nucleus import (
        TriangleIndex,
        nucleus_decomposition,
        nucleus_hierarchy,
    )

    graph = planted_partition(4, 24, 0.55, 0.02, seed=17)
    index = TriangleIndex(graph)
    theta = nucleus_decomposition(graph, index)

    def sweep():
        clocks = {}
        reference = None
        for p in THREADS:
            pool = SimulatedPool(threads=p)
            h = nucleus_hierarchy(graph, theta, pool, index=index)
            clocks[p] = pool.clock
            if reference is None:
                reference = h.canonical_form()
            else:
                assert h.canonical_form() == reference
        return clocks

    clocks = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"p={p}", f"{sim_seconds(clocks[p]):.4f}", f"{clocks[1] / clocks[p]:.2f}x"]
        for p in THREADS
    ]
    text = paper_table(
        ["threads", "time (s)", "speedup"],
        rows,
        title=(
            "Extension — parallel (3,4)-nucleus hierarchy "
            f"(planted blocks, {len(index)} triangles)"
        ),
    )
    emit("extension_nucleus_scaling", text)
    assert clocks[40] < clocks[1] / 2
