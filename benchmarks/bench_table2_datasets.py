"""Table II — statistics of the dataset stand-ins vs the paper.

Regenerates the paper's dataset-statistics table for the ten synthetic
stand-ins: n, m, average degree, kmax, and the number of HCD tree nodes
|T|, side by side with the real datasets' published values.  The
reproduction target is the *relative* structure: ascending m order,
which datasets are deep (web crawls) vs shallow (social), and which
have many vs few tree nodes.
"""

from __future__ import annotations

from common import ALL_DATASETS, emit, paper_table


def _rows(lab):
    rows = []
    for abbr in ALL_DATASETS:
        b = lab.bundle(abbr)
        stats = b.dataset.paper_stats()
        rows.append(
            [
                abbr,
                b.graph.num_vertices,
                b.graph.num_edges,
                f"{b.graph.average_degree():.1f}",
                b.dataset.kmax,
                b.hcd.num_nodes,
                f"{int(stats['n']):,}",
                f"{int(stats['m']):,}",
                f"{stats['davg']:.1f}",
                int(stats["kmax"]),
                int(stats["T"]),
            ]
        )
    return rows


def test_table2_dataset_statistics(lab, benchmark):
    rows = benchmark.pedantic(_rows, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        [
            "DS", "n", "m", "davg", "kmax", "|T|",
            "paper n", "paper m", "paper davg", "paper kmax", "paper |T|",
        ],
        rows,
        title="Table II — dataset statistics (stand-in vs paper)",
    )
    emit("table2_datasets", text)
    # structural assertions: ascending m, web crawls have largest |T|
    ms = [r[2] for r in rows]
    assert ms == sorted(ms)
    t_by_abbr = {r[0]: r[5] for r in rows}
    assert t_by_abbr["O"] == min(t_by_abbr.values())
    assert t_by_abbr["UK"] == max(
        t_by_abbr[a] for a in ("AS", "LJ", "H", "O", "HJ", "FS", "UK")
    )
