"""SimDist bench — starts the ``BENCH_dist.json`` trajectory.

Three stages:

* **certify** — wall time of the full SAN6xx certification pass over
  the cluster layer (monotonicity + phase + ownership + replay
  obligations, wire-schema derivation, manifest payload), with
  protocol / kernel-coverage counts riding along as guards: every
  ``cluster_*`` kernel in the registry must be claimed by a certified
  protocol and the pass must report zero findings;
* **verify** — wall time of the committed-manifest drift check
  (:func:`verify_dist_manifest`), i.e. the cost the pytest ``--dist``
  gate adds to a suite run;
* **perturbation** — the distributed decomposition kernel runs
  before and after a full SAN6xx pass: static certification must
  leave the simulated clock bit-identical (the analysis never touches
  the substrate, so the delta is asserted to be exactly ``0.0``).

Usage::

    PYTHONPATH=src python benchmarks/bench_dist.py

Writes ``benchmarks/results/BENCH_dist.json`` and prints a table.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import emit, paper_table, results_dir  # noqa: E402
from repro.sanitizer.dist import (  # noqa: E402
    analyze_dist,
    verify_dist_manifest,
)
from repro.sanitizer.kernels import KERNELS, run_kernel  # noqa: E402

REPEATS = 3
PERTURB_KERNEL = "cluster_decompose"


def _timed(fn):
    """(result, best-of-N wall seconds) for one stage."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return result, best


def _perturbation() -> dict:
    """Sim-clock of a cluster kernel before/after a full SAN6xx pass."""
    before = run_kernel(PERTURB_KERNEL)
    analyze_dist()  # static pass: must not touch the substrate
    after = run_kernel(PERTURB_KERNEL)
    delta = after.clock - before.clock
    assert delta == 0.0, (
        f"{PERTURB_KERNEL}: SAN6xx analysis perturbed the sim clock "
        f"by {delta}"
    )
    assert after.events == before.events
    return {
        "kernel": PERTURB_KERNEL,
        "clock_before": before.clock,
        "clock_after": after.clock,
        "clock_delta": delta,
        "events": after.events,
    }


def run() -> dict:
    report, wall_certify = _timed(lambda: analyze_dist())
    cluster_kernels = sorted(k for k in KERNELS if k.startswith("cluster"))
    unclassified = sorted(
        k for k, v in report.kernels.items() if v == "unclassified"
    )
    # coverage guards: the whole cluster registry is claimed and clean
    assert set(cluster_kernels) <= set(report.kernels), (
        f"cluster kernels missing from the dist report: "
        f"{sorted(set(cluster_kernels) - set(report.kernels))}"
    )
    assert not unclassified, f"unclassified kernels: {unclassified}"
    assert not report.findings, [str(f) for f in report.findings]
    obligations = sum(
        len(c.obligations) for c in report.certificates.values()
    )
    sends = sum(len(c.sends) for c in report.certificates.values())
    (ok, message), wall_verify = _timed(lambda: verify_dist_manifest())
    assert ok, f"dist manifest gate failed: {message}"
    perturb, wall_perturb = _timed(_perturbation)
    return {
        "bench": "dist_certification",
        "repeats": REPEATS,
        "stages": {
            "certify": {
                "wall_s": wall_certify,
                "protocols": len(report.certificates),
                "certified": len(report.certified),
                "kernels": dict(sorted(report.kernels.items())),
                "cluster_kernels": cluster_kernels,
                "obligations": obligations,
                "send_sites": sends,
                "findings": len(report.findings),
            },
            "verify": {"wall_s": wall_verify, "message": message},
            "perturbation": {"wall_s": wall_perturb, **perturb},
        },
    }


def main() -> int:
    payload = run()
    out = results_dir() / "BENCH_dist.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    s = payload["stages"]
    rows = [
        [
            "certify",
            f"{s['certify']['wall_s'] * 1e3:.1f}",
            f"{s['certify']['certified']}/{s['certify']['protocols']}"
            " protocols",
            f"{len(s['certify']['kernels'])} kernels classified, "
            f"{s['certify']['obligations']} obligations, "
            f"{s['certify']['send_sites']} send sites",
        ],
        [
            "verify",
            f"{s['verify']['wall_s'] * 1e3:.1f}",
            "committed manifest",
            s["verify"]["message"],
        ],
        [
            "perturbation",
            f"{s['perturbation']['wall_s'] * 1e3:.1f}",
            s["perturbation"]["kernel"],
            f"clock delta {s['perturbation']['clock_delta']:.1f} "
            f"({s['perturbation']['events']} events)",
        ],
    ]
    emit(
        "bench_dist",
        paper_table(
            ["stage", "wall (ms)", "scope", "outcome"],
            rows,
            title="SimDist protocol certification"
            f" (best of {REPEATS})",
        ),
    )
    print(f"wrote {out}")
    return 0


def test_bench_dist():
    """Pytest entry: full coverage, clean pass, zero perturbation."""
    payload = run()
    s = payload["stages"]
    assert s["certify"]["certified"] == s["certify"]["protocols"] >= 2
    assert s["certify"]["findings"] == 0
    assert set(s["certify"]["cluster_kernels"]) <= set(
        s["certify"]["kernels"]
    )
    assert "unclassified" not in s["certify"]["kernels"].values()
    assert s["perturbation"]["clock_delta"] == 0.0


if __name__ == "__main__":
    sys.exit(main())
