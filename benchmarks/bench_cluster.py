"""SimCluster bench — writes ``BENCH_cluster.json``.

Three experiment families on the AS stand-in, all deterministic:

* **decomposition scaling**: the distributed shard-grained MPM at
  1/2/4/8 shards under both partitioners.  Every row is asserted
  **bit-identical** to single-node ``core_decomposition``; recorded
  per row are the edge cut, superstep/local-round counts, message and
  byte totals, and the compute/comms clock split — the comms/compute
  ratio curve is the headline: communication grows with the cut while
  overlapped compute shrinks, and label propagation's smaller cut must
  beat range sharding on comms at every shard count.  A second sweep
  fixes the sharding and scales **threads per node**, where the
  cluster clock genuinely drops (the within-node speedup curve).  The
  single-node MPM baseline runs alongside: the cluster must converge
  in **fewer supersteps than MPM takes rounds** (each superstep runs
  local rounds to quiescence), with both exactly equal to the true
  coreness.
* **sharded serving**: a 48-request trace through ``ClusterService``
  at several (shards, replicas) topologies; every answer digest must
  equal the single-node ``HCDService`` digest.
* **fault tolerance**: a deterministic crash at work-unit 500 with
  replica failover — **zero wrong answers** (digest equality with
  failovers > 0 is asserted and recorded in the payload) — and one
  8x-slowed node with and without hedging, where hedging must cut p99
  latency.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py

Writes ``benchmarks/results/BENCH_cluster.json`` and prints a table.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import emit, paper_table, results_dir  # noqa: E402
from repro.analysis.datasets import load  # noqa: E402
from repro.cluster import (  # noqa: E402
    ClusterService,
    ClusterServiceConfig,
    SimCluster,
    distributed_core_decomposition,
    shard_graph,
)
from repro.core.decomposition import core_decomposition  # noqa: E402
from repro.core.distributed import mpm_core_decomposition  # noqa: E402
from repro.parallel.scheduler import SimulatedPool  # noqa: E402
from repro.serve import (  # noqa: E402
    HCDService,
    SnapshotCatalog,
    build_snapshot,
    synthetic_trace,
)

DATASET = "AS"
SHARD_COUNTS = [1, 2, 4, 8]
THREAD_COUNTS = [1, 2, 4, 8]
THREADS_SWEEP_SHARDS = 4
BASE_THREADS = 4
TRACE_REQUESTS = 48
TRACE_SEED = 7
CRASH_AT = 500.0
SLOW_FACTOR = 8.0
HEDGE_TIMEOUT = 2000.0
TOPOLOGIES = [(1, 1), (2, 1), (2, 2), (4, 2)]


def _decomposition(graph) -> dict:
    reference = core_decomposition(graph)
    rows = []
    by_key: dict[tuple[str, int], dict] = {}
    for strategy in ("range", "lp"):
        for shards in SHARD_COUNTS:
            sharded = shard_graph(graph, shards, strategy=strategy)
            cluster = SimCluster(shards, threads=BASE_THREADS)
            report = distributed_core_decomposition(graph, cluster, sharded)
            assert np.array_equal(report.coreness, reference), (
                f"distributed decomposition diverged at "
                f"{strategy}/{shards} shards"
            )
            row = {
                "strategy": strategy,
                "shards": shards,
                "edge_cut": sharded.edge_cut,
                "supersteps": report.supersteps,
                "local_rounds": report.local_rounds,
                "messages": report.messages,
                "bytes": report.bytes_sent,
                "compute_clock": report.compute_clock,
                "comms_clock": report.comms_clock,
                "cluster_clock": report.cluster_clock,
                "comms_compute_ratio": report.as_dict()[
                    "comms_compute_ratio"
                ],
                "bit_identical": True,
            }
            rows.append(row)
            by_key[(strategy, shards)] = row
    # comms grows with the cut; the better partitioner pays less of it
    for shards in SHARD_COUNTS[1:]:
        assert (
            by_key[("lp", shards)]["edge_cut"]
            < by_key[("range", shards)]["edge_cut"]
        ), f"label propagation must beat range sharding on cut ({shards})"
        assert (
            by_key[("lp", shards)]["comms_clock"]
            < by_key[("range", shards)]["comms_clock"]
        ), f"smaller cut must mean cheaper exchange ({shards} shards)"
    range_comms = [by_key[("range", s)]["comms_clock"] for s in SHARD_COUNTS]
    assert range_comms == sorted(range_comms), (
        "comms clock must grow with the shard count"
    )

    # within-node speedup: fixed sharding, scale threads per node
    sharded = shard_graph(graph, THREADS_SWEEP_SHARDS, strategy="lp")
    thread_rows = []
    for threads in THREAD_COUNTS:
        cluster = SimCluster(THREADS_SWEEP_SHARDS, threads=threads)
        report = distributed_core_decomposition(graph, cluster, sharded)
        assert np.array_equal(report.coreness, reference)
        thread_rows.append(
            {
                "threads": threads,
                "compute_clock": report.compute_clock,
                "cluster_clock": report.cluster_clock,
                "speedup": thread_rows[0]["cluster_clock"]
                / report.cluster_clock
                if thread_rows
                else 1.0,
            }
        )
    assert (
        thread_rows[-1]["cluster_clock"] < thread_rows[0]["cluster_clock"]
    ), "more threads per node must shrink the cluster clock"

    # the single-node MPM baseline: supersteps vs rounds
    mpm_pool = SimulatedPool(threads=BASE_THREADS)
    mpm_coreness, mpm_rounds = mpm_core_decomposition(graph, mpm_pool)
    assert np.array_equal(mpm_coreness, reference)
    for shards in SHARD_COUNTS:
        assert by_key[("range", shards)]["supersteps"] <= mpm_rounds, (
            "a superstep runs local rounds to quiescence, so the "
            "exchange count can never exceed MPM's round count"
        )
    return {
        "shard_rows": rows,
        "thread_rows": thread_rows,
        "mpm": {
            "rounds": mpm_rounds,
            "sim_clock": mpm_pool.clock,
            "bit_identical": True,
        },
    }


def _serving(graph) -> dict:
    trace = synthetic_trace(TRACE_REQUESTS, seed=TRACE_SEED)
    with tempfile.TemporaryDirectory() as root:
        catalog = SnapshotCatalog(root)
        catalog.publish(build_snapshot(graph, name="bench"))
        reference = HCDService(catalog, "bench").serve(trace)
        digest = reference.answers_digest()

        topology_rows = []
        for shards, replicas in TOPOLOGIES:
            service = ClusterService(
                catalog,
                "bench",
                config=ClusterServiceConfig(
                    num_shards=shards, replicas=replicas
                ),
            )
            report = service.serve(trace)
            assert report.answers_digest() == digest, (
                f"sharded serving diverged at {shards}x{replicas}"
            )
            topology_rows.append(
                {
                    "shards": shards,
                    "replicas": replicas,
                    "p50": report.p50,
                    "p99": report.p99,
                    "work_units": report.work_units,
                    "network_messages": report.network["messages"],
                    "network_cost": report.network["cost"],
                    "byte_identical": True,
                }
            )

        # deterministic crash mid-run: replica failover, no wrong answers
        crashed = ClusterService(
            catalog,
            "bench",
            config=ClusterServiceConfig(num_shards=2, replicas=2),
        )
        crashed.crash(0, at=CRASH_AT)
        crash_report = crashed.serve(trace)
        assert crash_report.failovers >= 1, "the crash must fire"
        assert crash_report.failed == 0, "failover must answer everything"
        assert crash_report.answers_digest() == digest, (
            "a crashed-and-failed-over replay produced different answers"
        )

        # hedging's tail-latency win under one slow node
        def slow_run(hedge: bool):
            config = ClusterServiceConfig(
                num_shards=2,
                replicas=2,
                hedge_timeout=HEDGE_TIMEOUT if hedge else float("inf"),
            )
            service = ClusterService(catalog, "bench", config=config)
            service.slow(0, SLOW_FACTOR)
            return service.serve(trace)

        without_hedge = slow_run(False)
        with_hedge = slow_run(True)
        assert with_hedge.hedges >= 1
        assert with_hedge.answers_digest() == digest
        assert without_hedge.answers_digest() == digest
        assert with_hedge.p99 < without_hedge.p99, (
            "hedging must cut tail latency under a slow node"
        )

    return {
        "trace_requests": TRACE_REQUESTS,
        "reference_digest": digest,
        "topologies": topology_rows,
        "crash": {
            "crash_at": CRASH_AT,
            "failovers": crash_report.failovers,
            "failed_requests": crash_report.failed,
            "zero_wrong_answers": True,
            "digest_matches_single_node": True,
        },
        "hedging": {
            "slow_factor": SLOW_FACTOR,
            "hedge_timeout": HEDGE_TIMEOUT,
            "hedges": with_hedge.hedges,
            "p99_without": without_hedge.p99,
            "p99_with": with_hedge.p99,
            "tail_win": without_hedge.p99 / with_hedge.p99,
        },
    }


def run() -> dict:
    graph = load(DATASET).graph
    return {
        "bench": "cluster",
        "dataset": DATASET,
        "trace_seed": TRACE_SEED,
        "decomposition": _decomposition(graph),
        "serving": _serving(graph),
    }


def main() -> int:
    payload = run()
    out = results_dir() / "BENCH_cluster.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    rows = [
        [
            row["strategy"],
            str(row["shards"]),
            str(row["edge_cut"]),
            str(row["supersteps"]),
            f"{row['compute_clock']:.0f}",
            f"{row['comms_clock']:.0f}",
            f"{row['comms_compute_ratio']:.3f}",
        ]
        for row in payload["decomposition"]["shard_rows"]
    ]
    emit(
        "bench_cluster",
        paper_table(
            ["partition", "shards", "cut", "steps", "compute", "comms", "c/c"],
            rows,
            title=(
                f"Distributed decomposition on {DATASET} "
                f"(bit-identical everywhere; MPM baseline: "
                f"{payload['decomposition']['mpm']['rounds']} rounds)"
            ),
        ),
    )
    hedging = payload["serving"]["hedging"]
    print(
        f"hedging tail win under one {hedging['slow_factor']:.0f}x slow "
        f"node: p99 {hedging['p99_without']:.0f} -> "
        f"{hedging['p99_with']:.0f} ({hedging['tail_win']:.2f}x)"
    )
    crash = payload["serving"]["crash"]
    print(
        f"crash at t={crash['crash_at']:.0f}: {crash['failovers']} "
        f"failover(s), {crash['failed_requests']} failed, "
        f"zero wrong answers: {crash['zero_wrong_answers']}"
    )
    print(f"wrote {out}")
    return 0


def test_bench_cluster():
    """Pytest entry: bit-identity, zero-wrong-answers, hedging win."""
    payload = run()
    assert all(
        row["bit_identical"]
        for row in payload["decomposition"]["shard_rows"]
    )
    assert payload["decomposition"]["mpm"]["bit_identical"]
    assert all(
        row["byte_identical"] for row in payload["serving"]["topologies"]
    )
    assert payload["serving"]["crash"]["zero_wrong_answers"]
    assert payload["serving"]["crash"]["failed_requests"] == 0
    assert payload["serving"]["hedging"]["tail_win"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
