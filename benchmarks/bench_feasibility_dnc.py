"""Section V-B feasibility study — divide-and-conquer is not viable.

Reproduces the paper's two arguments against the D&C paradigm on the
SK stand-in (the dataset the paper uses for its KaHIP/Spinner
comparison):

1. parallel graph partitioning alone costs a large multiple of PHCD's
   entire 40-core construction time;
2. the local-k-core-search merge (RC) dominates, making the full D&C
   stack far slower than PHCD.
"""

from __future__ import annotations

from common import emit, paper_table, sim_seconds
from repro.core.divide_conquer import dnc_build_hcd
from repro.parallel.scheduler import SimulatedPool

DATASET = "SK"
P = 40


def _measure(lab):
    b = lab.bundle(DATASET)
    pool = SimulatedPool(threads=P)
    dnc = dnc_build_hcd(b.graph, b.coreness, pool, num_parts=P)
    phcd = lab.phcd_time(DATASET, P)
    rows = [
        ["PHCD (40)", f"{sim_seconds(phcd):.3f}", "1.00x"],
        [
            "partition only",
            f"{sim_seconds(dnc.partition_time):.3f}",
            f"{dnc.partition_time / phcd:.2f}x",
        ],
        [
            "partial LCPS",
            f"{sim_seconds(dnc.local_lcps_time):.3f}",
            f"{dnc.local_lcps_time / phcd:.2f}x",
        ],
        [
            "RC merge",
            f"{sim_seconds(dnc.merge_time):.3f}",
            f"{dnc.merge_time / phcd:.2f}x",
        ],
        [
            "D&C total",
            f"{sim_seconds(dnc.total_time):.3f}",
            f"{dnc.total_time / phcd:.2f}x",
        ],
    ]
    return rows, dnc, phcd


def test_feasibility_divide_and_conquer(lab, benchmark):
    rows, dnc, phcd = benchmark.pedantic(
        _measure, args=(lab,), rounds=1, iterations=1
    )
    text = paper_table(
        ["phase", "time (s)", "vs PHCD(40)"],
        rows,
        title=f"Section V-B — divide-and-conquer feasibility on {DATASET} (40 cores)",
    )
    emit("feasibility_dnc", text)
    # the paper's two findings
    assert dnc.partition_time > phcd, "partitioning alone must exceed PHCD"
    assert dnc.total_time > 3 * phcd, "full D&C must be far slower"
    # and the merge's RC cost must dominate the D&C stack
    assert dnc.merge_time > dnc.local_lcps_time
