"""Ablations — the design choices DESIGN.md calls out.

Not in the paper's evaluation, but each isolates one design decision of
PHCD/PBKS and quantifies it on the simulator:

* **preprocessing reuse** — PBKS's one-shot neighbor-coreness counts
  amortized over the six metrics vs recomputing per metric;
* **scheduling** — dynamic vs static chunking for PHCD's skewed shell
  loops (hub imbalance);
* **union-find engine** — the simulated wait-free structure under
  increasing CAS failure rates (the F term of the work bound);
* **vertex-rank precomputation** — Algorithm 1's cost share inside
  PHCD (it must stay a small fraction).
"""

from __future__ import annotations

from common import TYPE_A_METRIC, emit, paper_table, sim_seconds
from repro.core.phcd import phcd_build_hcd
from repro.parallel.scheduler import SimulatedPool
from repro.search.metrics import metric_names
from repro.search.pbks import pbks_search
from repro.search.preprocessing import preprocess_neighbor_counts

DATASET = "UK"
P = 40


def test_ablation_preprocessing_reuse(lab, benchmark):
    """Shared preprocessing must amortize across the six metrics."""
    b = lab.bundle(DATASET)
    metrics = metric_names()

    def shared():
        pool = SimulatedPool(threads=P)
        counts = preprocess_neighbor_counts(b.graph, b.coreness, pool)
        for metric in metrics:
            pbks_search(
                b.graph, b.coreness, b.hcd, metric, pool,
                counts=counts, rank_result=b.rank_result,
            )
        return pool.clock

    def recompute():
        pool = SimulatedPool(threads=P)
        for metric in metrics:
            pbks_search(
                b.graph, b.coreness, b.hcd, metric, pool,
                counts=None, rank_result=b.rank_result,
            )
        return pool.clock

    t_shared = benchmark.pedantic(shared, rounds=1, iterations=1)
    t_recompute = recompute()
    text = paper_table(
        ["variant", "time (s)"],
        [
            ["shared preprocessing", f"{sim_seconds(t_shared):.4f}"],
            ["recomputed per metric", f"{sim_seconds(t_recompute):.4f}"],
        ],
        title=f"Ablation — preprocessing reuse across {len(metrics)} metrics ({DATASET})",
    )
    emit("ablation_preprocessing", text)
    assert t_shared < t_recompute


def _forced_chunking_pool(threads: int, chunking: str) -> SimulatedPool:
    """A pool whose parallel_for ignores the caller's chunking choice."""
    pool = SimulatedPool(threads=threads)
    original = pool.parallel_for

    def forced(items, fn, label="parallel_for", chunking_=None, grain=16, **kw):
        return original(items, fn, label=label, chunking=chunking, grain=grain)

    pool.parallel_for = forced  # type: ignore[method-assign]
    return pool


def test_ablation_loop_scheduling(lab, benchmark):
    """Scheduling is per-loop: PHCD's shell loops want static chunking
    (contiguous shells keep union-find traffic local), while PBKS's
    wedge-closing loop wants dynamic chunking (hub skew).  This
    ablation measures both loops both ways and checks each algorithm
    ships with the winning schedule.
    """
    b = lab.bundle(DATASET)

    def run_all():
        clocks = {}
        for chunking in ("static", "dynamic"):
            pool = _forced_chunking_pool(P, chunking)
            phcd_build_hcd(b.graph, b.coreness, pool)
            clocks[("phcd", chunking)] = pool.clock
            pool = _forced_chunking_pool(P, chunking)
            pbks_search(
                b.graph, b.coreness, b.hcd, "clustering_coefficient", pool,
                counts=b.counts, rank_result=b.rank_result,
            )
            clocks[("pbks_b", chunking)] = pool.clock
        return clocks

    clocks = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = paper_table(
        ["loop", "static (s)", "dynamic (s)", "shipped"],
        [
            [
                "PHCD shell loops",
                f"{sim_seconds(clocks[('phcd', 'static')]):.4f}",
                f"{sim_seconds(clocks[('phcd', 'dynamic')]):.4f}",
                "static",
            ],
            [
                "PBKS type-B wedges",
                f"{sim_seconds(clocks[('pbks_b', 'static')]):.4f}",
                f"{sim_seconds(clocks[('pbks_b', 'dynamic')]):.4f}",
                "dynamic",
            ],
        ],
        title=f"Ablation — per-loop scheduling choices on {DATASET} (40 cores)",
    )
    emit("ablation_schedule", text)
    assert clocks[("phcd", "static")] < clocks[("phcd", "dynamic")]
    assert clocks[("pbks_b", "dynamic")] < clocks[("pbks_b", "static")]


def test_ablation_cas_failure_rates(lab, benchmark):
    """CAS failures add work (the F term) but never change the output."""
    b = lab.bundle("LJ")
    reference = None
    rows = []

    def run_all():
        nonlocal reference
        results = []
        for rate in (0.0, 0.2, 0.5):
            pool = SimulatedPool(threads=P)
            hcd = phcd_build_hcd(
                b.graph, b.coreness, pool, cas_failure_rate=rate, seed=1
            )
            results.append((rate, pool.clock, hcd))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base_clock = results[0][1]
    for rate, clock, hcd in results:
        if reference is None:
            reference = hcd
        assert hcd.equivalent_to(reference)
        rows.append([f"{rate:.1f}", f"{sim_seconds(clock):.4f}", f"{clock / base_clock:.3f}x"])
        assert clock >= base_clock - 1e-9
    text = paper_table(
        ["failure rate", "PHCD(40) time (s)", "vs fail-free"],
        rows,
        title="Ablation — wait-free union-find under CAS failure injection (LJ)",
    )
    emit("ablation_cas_failures", text)


def test_ablation_vertex_rank_share(lab, benchmark):
    """Algorithm 1 must be a minor fraction of PHCD's total."""
    b = lab.bundle(DATASET)

    def run():
        pool = SimulatedPool(threads=P)
        phcd_build_hcd(b.graph, b.coreness, pool)
        rank_time = sum(
            r.elapsed for r in pool.regions if r.label.startswith("vertex_rank")
        )
        return pool.clock, rank_time

    total, rank_time = benchmark.pedantic(run, rounds=1, iterations=1)
    share = rank_time / total
    text = paper_table(
        ["component", "time (s)", "share"],
        [
            ["vertex rank (Alg. 1)", f"{sim_seconds(rank_time):.4f}", f"{100 * share:.1f}%"],
            ["PHCD total", f"{sim_seconds(total):.4f}", "100%"],
        ],
        title=f"Ablation — Algorithm 1 cost share inside PHCD ({DATASET}, 40 cores)",
    )
    emit("ablation_vertex_rank", text)
    assert share < 0.35


def test_ablation_accumulation_span(lab, benchmark):
    """Depth-synchronous vs Euler-scan tree accumulation.

    On the shallow HCD forests of the stand-ins the depth-grouped
    accumulation wins (few rounds, no scan overhead); on deep chains
    the Euler variant's O(log n) rounds win.  The crossover justifies
    shipping the depth-grouped version for PBKS while keeping the scan
    for degenerate hierarchies.
    """
    import numpy as np

    from repro.parallel.accumulate import tree_accumulate, tree_accumulate_euler

    b = lab.bundle(DATASET)
    hcd_parents = b.hcd.parent
    values = np.ones((b.hcd.num_nodes, 5))
    chain_parents = np.array([-1] + list(range(999)), dtype=np.int64)
    chain_values = np.ones((1000, 5))

    def run_all():
        clocks = {}
        for name, parents_, vals_ in (
            ("hcd", hcd_parents, values),
            ("chain", chain_parents, chain_values),
        ):
            pool = SimulatedPool(threads=P)
            level = tree_accumulate(pool, parents_, vals_)
            clocks[(name, "level")] = pool.clock
            pool = SimulatedPool(threads=P)
            euler = tree_accumulate_euler(pool, parents_, vals_)
            clocks[(name, "euler")] = pool.clock
            assert np.allclose(level, euler)
        return clocks

    clocks = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            forest,
            f"{sim_seconds(clocks[(forest, 'level')]):.5f}",
            f"{sim_seconds(clocks[(forest, 'euler')]):.5f}",
        ]
        for forest in ("hcd", "chain")
    ]
    text = paper_table(
        ["forest", "depth-grouped (s)", "euler scan (s)"],
        rows,
        title=f"Ablation — tree accumulation variants ({DATASET} HCD vs 1000-chain)",
    )
    emit("ablation_accumulation", text)
    # deep chains favor the scan; the shallow real hierarchy favors
    # the depth-grouped version PBKS ships with
    assert clocks[("chain", "euler")] < clocks[("chain", "level")]


def test_ablation_typea_metric_equivalence(lab, benchmark):
    """All four type-A paper metrics cost the same (shared kernel)."""
    b = lab.bundle("FS")
    rows = []

    def run():
        clocks = {}
        for metric in ("average_degree", "internal_density", "cut_ratio", TYPE_A_METRIC):
            pool = SimulatedPool(threads=P)
            pbks_search(
                b.graph, b.coreness, b.hcd, metric, pool,
                counts=b.counts, rank_result=b.rank_result,
            )
            clocks[metric] = pool.clock
        return clocks

    clocks = benchmark.pedantic(run, rounds=1, iterations=1)
    base = min(clocks.values())
    for metric, clock in clocks.items():
        rows.append([metric, f"{sim_seconds(clock):.5f}", f"{clock / base:.3f}x"])
        assert clock / base < 1.2  # only the scoring formula differs
    text = paper_table(
        ["metric", "PBKS(40) time (s)", "vs fastest"],
        rows,
        title="Ablation — type-A metrics share one computation kernel (FS)",
    )
    emit("ablation_typea_equivalence", text)
