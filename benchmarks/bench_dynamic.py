"""Dynamic maintenance bench — writes ``BENCH_dynamic.json``.

Replays one deterministic mixed mutation batch (24 deletions + 24
insertions on the AS stand-in) three ways and records simulated work
units for each:

* **maintenance**: per-edge repair (one singleton ``apply_batch`` per
  mutation) vs **batched** repair (one level-grouped ``apply_batch``
  for the whole batch), both charged to a shared
  :class:`~repro.parallel.scheduler.SimulatedPool` so the work-unit
  totals are directly comparable.  The batched pass must win, and both
  must land on the exact coreness of a from-scratch recomputation.
* **publishing**: a ``DynamicServingFeed`` with ``publish_every=1``
  (one full snapshot per mutation) vs a debounced feed that coalesces
  the whole batch into a single **delta** publish reusing unchanged
  arrays.  The debounced feed must win on pool clock, and both
  catalogs must serve a 32-request query trace with identical answers.
* **determinism**: the batched repair is replayed at 1/2/4/8 simulated
  threads and the resulting coreness, changed-set size, round count,
  and work-unit totals are asserted bit-identical — only the pool
  clock may move.

Usage::

    PYTHONPATH=src python benchmarks/bench_dynamic.py

Writes ``benchmarks/results/BENCH_dynamic.json`` and prints a table.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import emit, paper_table, results_dir  # noqa: E402
from repro.analysis.datasets import load  # noqa: E402
from repro.core.decomposition import core_decomposition  # noqa: E402
from repro.dynamic import DynamicGraph  # noqa: E402
from repro.parallel.scheduler import SimulatedPool  # noqa: E402
from repro.serve import (  # noqa: E402
    DynamicServingFeed,
    HCDService,
    SnapshotCatalog,
    synthetic_trace,
)

THREADS = [1, 2, 4, 8]
DATASET = "AS"
NUM_DELETIONS = 24
NUM_INSERTIONS = 24
MUTATION_SEED = 5
TRACE_REQUESTS = 32
TRACE_SEED = 11
BASE_THREADS = 4


def _mutation_batch(graph):
    """Deterministic mixed batch: strided deletions + random non-edges."""
    present = {tuple(e) for e in graph.edge_array().tolist()}
    deletions = sorted(present)[:: max(1, len(present) // NUM_DELETIONS)]
    deletions = deletions[:NUM_DELETIONS]
    rng = np.random.default_rng(MUTATION_SEED)
    insertions = []
    while len(insertions) < NUM_INSERTIONS:
        u, v = sorted(rng.integers(0, graph.num_vertices, 2).tolist())
        if u != v and (u, v) not in present:
            present.add((u, v))
            insertions.append((u, v))
    return insertions, deletions


def _pool_work(pool: SimulatedPool) -> int:
    """Total charged work units (compute + atomics) across all regions."""
    return sum(r.work_total + r.atomic_ops for r in pool.regions)


def _maintenance(graph, insertions, deletions) -> dict:
    """Per-edge (singleton batches) vs one batched repair, shared pools."""
    per_edge = DynamicGraph(graph)
    per_pool = SimulatedPool(threads=BASE_THREADS)
    for u, v in insertions:
        per_edge.apply_batch(insertions=[(u, v)], pool=per_pool)
    for u, v in deletions:
        per_edge.apply_batch(deletions=[(u, v)], pool=per_pool)

    batched = DynamicGraph(graph)
    batch_pool = SimulatedPool(threads=BASE_THREADS)
    report = batched.apply_batch(
        insertions=insertions, deletions=deletions, pool=batch_pool
    )

    assert np.array_equal(per_edge.coreness, batched.coreness), (
        "batched repair diverged from per-edge maintenance"
    )
    recomputed = core_decomposition(batched.to_graph())
    assert np.array_equal(batched.coreness, recomputed), (
        "batched repair diverged from a from-scratch recomputation"
    )

    per_work, batch_work = _pool_work(per_pool), _pool_work(batch_pool)
    assert batch_work < per_work, (
        f"batched maintenance ({batch_work}) must beat per-edge "
        f"({per_work}) on sim work units"
    )
    return {
        "mutations": len(insertions) + len(deletions),
        "changed_vertices": report.changed,
        "repair_rounds": report.rounds,
        "per_edge": {"work_units": per_work, "sim_clock": per_pool.clock},
        "batched": {"work_units": batch_work, "sim_clock": batch_pool.clock},
        "work_speedup": per_work / batch_work,
        "clock_speedup": per_pool.clock / batch_pool.clock,
    }


def _feed_replay(graph, insertions, deletions, root, batched: bool) -> dict:
    """Drive a serving feed through the batch; serve the query trace."""
    dyn = DynamicGraph(graph)
    pool = SimulatedPool(threads=BASE_THREADS)
    catalog = SnapshotCatalog(root)
    window = len(insertions) + len(deletions) if batched else 1
    feed = DynamicServingFeed(
        dyn, catalog, "bench", publish_every=window, pool=pool
    )
    feed.publish()  # version 1: the pre-mutation baseline
    publishes = 1
    if batched:
        if feed.apply_batch(insertions=insertions, deletions=deletions):
            publishes += 1
        if feed.flush() is not None:
            publishes += 1
    else:
        for u, v in insertions:
            if feed.apply_batch(insertions=[(u, v)]) is not None:
                publishes += 1
        for u, v in deletions:
            if feed.apply_batch(deletions=[(u, v)]) is not None:
                publishes += 1

    trace = synthetic_trace(TRACE_REQUESTS, seed=TRACE_SEED)
    service = HCDService(catalog, "bench", threads=BASE_THREADS)
    report = service.serve(trace)
    return {
        "publishes": publishes,
        "maintain_publish_clock": pool.clock,
        "maintain_publish_work": _pool_work(pool),
        "serve_records": [r.as_dict() for r in report.records],
        "serve_work_units": report.work_units,
        "coreness": dyn.coreness.copy(),
    }


def _publishing(graph, insertions, deletions) -> dict:
    """Publish-each full snapshots vs one debounced delta publish."""
    with tempfile.TemporaryDirectory() as root_a, \
            tempfile.TemporaryDirectory() as root_b:
        each = _feed_replay(graph, insertions, deletions, root_a, False)
        debounced = _feed_replay(graph, insertions, deletions, root_b, True)

    assert np.array_equal(each.pop("coreness"), debounced.pop("coreness"))
    records_each = each.pop("serve_records")
    records_debounced = debounced.pop("serve_records")
    assert records_each == records_debounced, (
        "the two catalogs must answer the query trace identically"
    )
    assert debounced["publishes"] < each["publishes"]
    assert debounced["maintain_publish_clock"] < each["maintain_publish_clock"], (
        f"debounced delta publishing ({debounced['maintain_publish_clock']:.0f}) "
        f"must beat publish-each ({each['maintain_publish_clock']:.0f}) "
        "on the simulated clock"
    )
    return {
        "trace_requests": TRACE_REQUESTS,
        "identical_answers": True,
        "publish_each": each,
        "debounced_delta": debounced,
        "work_speedup": (
            each["maintain_publish_work"] / debounced["maintain_publish_work"]
        ),
        "clock_speedup": (
            each["maintain_publish_clock"] / debounced["maintain_publish_clock"]
        ),
    }


def _determinism(graph, insertions, deletions) -> list[dict]:
    """Batched repair at each thread count; everything but clock is fixed."""
    rows = []
    signatures = []
    for threads in THREADS:
        dyn = DynamicGraph(graph)
        pool = SimulatedPool(threads=threads)
        report = dyn.apply_batch(
            insertions=insertions, deletions=deletions, pool=pool
        )
        work = _pool_work(pool)
        signatures.append(
            (dyn.coreness.tobytes(), report.changed, report.rounds, work)
        )
        rows.append(
            {
                "threads": threads,
                "work_units": work,
                "sim_clock": pool.clock,
                "changed_vertices": report.changed,
                "repair_rounds": report.rounds,
            }
        )
    for signature in signatures[1:]:
        assert signature == signatures[0], (
            "batched repair diverged across thread counts — the repair "
            "must be bit-identical for any partition"
        )
    return rows


def run() -> dict:
    graph = load(DATASET).graph
    insertions, deletions = _mutation_batch(graph)
    assert len(insertions) == NUM_INSERTIONS
    assert len(deletions) == NUM_DELETIONS

    maintenance = _maintenance(graph, insertions, deletions)
    publishing = _publishing(graph, insertions, deletions)
    thread_rows = _determinism(graph, insertions, deletions)

    return {
        "bench": "dynamic",
        "dataset": DATASET,
        "insertions": NUM_INSERTIONS,
        "deletions": NUM_DELETIONS,
        "mutation_seed": MUTATION_SEED,
        "trace_seed": TRACE_SEED,
        "deterministic_across_threads": True,
        "maintenance": maintenance,
        "publishing": publishing,
        "threads": thread_rows,
    }


def main() -> int:
    payload = run()
    out = results_dir() / "BENCH_dynamic.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    m, p = payload["maintenance"], payload["publishing"]
    rows = [
        [
            "maintenance",
            f"{m['per_edge']['work_units']}",
            f"{m['batched']['work_units']}",
            f"{m['work_speedup']:.2f}x",
            f"{m['clock_speedup']:.2f}x",
        ],
        [
            "publish+serve",
            f"{p['publish_each']['maintain_publish_work']}",
            f"{p['debounced_delta']['maintain_publish_work']}",
            f"{p['work_speedup']:.2f}x",
            f"{p['clock_speedup']:.2f}x",
        ],
    ]
    emit(
        "bench_dynamic",
        paper_table(
            ["stage", "per-edge work", "batched work", "work", "clock"],
            rows,
            title=(
                f"Batched maintenance on {DATASET} "
                f"({NUM_INSERTIONS}+{NUM_DELETIONS} mutations, "
                f"{payload['publishing']['debounced_delta']['publishes']} vs "
                f"{payload['publishing']['publish_each']['publishes']} "
                f"publishes)"
            ),
        ),
    )
    print(f"wrote {out}")
    return 0


def test_bench_dynamic():
    """Pytest entry: determinism + both batched-over-per-edge wins."""
    payload = run()
    assert payload["deterministic_across_threads"]
    assert payload["maintenance"]["work_speedup"] > 1.0
    assert payload["publishing"]["clock_speedup"] > 1.0
    assert payload["publishing"]["identical_answers"]


if __name__ == "__main__":
    sys.exit(main())
