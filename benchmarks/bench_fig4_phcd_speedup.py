"""Figure 4 — PHCD's speedup over LCPS across thread counts.

One series per figure dataset: ``speedup(p) = LCPS(1) / PHCD(p)`` for
p in {1, 5, 10, 20, 40}.  Paper shape: monotone-increasing curves,
serial ratio 1.24-2.33x, up to 22x at 40 cores, with larger graphs
scaling better.
"""

from __future__ import annotations

from repro.analysis.stats import ascii_series

from common import FIGURE_DATASETS, THREADS, emit, emit_profile, paper_table


def _series(lab):
    rows = []
    for abbr in FIGURE_DATASETS:
        lcps = lab.lcps_time(abbr)
        series = [lcps / lab.phcd_time(abbr, p) for p in THREADS]
        rows.append(
            [abbr]
            + [f"{x:.2f}" for x in series]
            + [ascii_series(series)]
        )
    return rows


def test_fig4_phcd_speedup_over_lcps(lab, benchmark):
    rows = benchmark.pedantic(_series, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        ["DS"] + [f"p={p}" for p in THREADS] + ["curve"],
        rows,
        title="Figure 4 — PHCD's speedup to LCPS (one row per dataset)",
    )
    emit("fig4_phcd_speedup", text)
    emit_profile("fig4_phcd_speedup")
    for row in rows:
        series = [float(x) for x in row[1:-1]]
        # serial band and scaling shape
        assert series[0] > 1.0, f"{row[0]}: PHCD(1) must beat LCPS"
        assert series[-1] > 2.0 * series[0], f"{row[0]}: must scale"
        # 40 threads fastest up to saturation noise on small stand-ins
        assert series[-1] >= 0.95 * max(series), f"{row[0]}: 40 threads fastest"
