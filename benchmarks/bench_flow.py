"""SimFlow analysis bench — starts the ``BENCH_flow.json`` trajectory.

Times the three SAN4xx stages separately over the repo's own trees:

* **path analysis** — per-worker CFG construction, divergent-sync
  taint, and disjoint-write interval proofs over ``src/`` and
  ``benchmarks/``;
* **effect inference** — the call-graph walk from every registered
  kernel to its reachable workers;
* **selftest** — the seeded-bug round trip (two planted SAN4xx bugs
  plus a fixed variant that must verify).

Wall-clock is best-of-N; finding/verified/worker counts ride along so
a future PR that silently loses coverage (fewer workers analyzed,
fewer verified-disjoint sites) shows up as a count regression, not
just a speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_flow.py

Writes ``benchmarks/results/BENCH_flow.json`` and prints a table.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import emit, paper_table, results_dir  # noqa: E402
from repro.sanitizer.flow import (  # noqa: E402
    analyze_paths,
    check_kernel_effects,
    flow_selftest,
)

REPEATS = 3
PATHS = [p for p in ("src", "benchmarks") if Path(p).exists()]


def _timed(fn):
    """(result, best-of-N wall seconds) for one stage."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return result, best


def run() -> dict:
    report, wall_paths = _timed(lambda: analyze_paths(list(PATHS)))
    (drift, effects), wall_effects = _timed(
        lambda: check_kernel_effects()
    )
    (ok, _message), wall_selftest = _timed(flow_selftest)
    assert ok, "flow selftest must pass under the bench"
    return {
        "bench": "flow_analysis",
        "repeats": REPEATS,
        "paths": list(PATHS),
        "stages": {
            "paths": {
                "wall_s": wall_paths,
                "files": report.files,
                "workers": report.workers,
                "findings": len(report.findings),
                "errors": report.errors,
                "warnings": report.warnings,
                "verified_disjoint": len(report.verified),
            },
            "effects": {
                "wall_s": wall_effects,
                "kernels": len(effects),
                "drift_findings": len(drift),
            },
            "selftest": {
                "wall_s": wall_selftest,
                "ok": ok,
            },
        },
    }


def main() -> int:
    payload = run()
    out = results_dir() / "BENCH_flow.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    s = payload["stages"]
    rows = [
        [
            "paths",
            f"{s['paths']['wall_s'] * 1e3:.1f}",
            f"{s['paths']['files']} files / {s['paths']['workers']} workers",
            f"{s['paths']['findings']} finding(s), "
            f"{s['paths']['verified_disjoint']} verified",
        ],
        [
            "effects",
            f"{s['effects']['wall_s'] * 1e3:.1f}",
            f"{s['effects']['kernels']} kernels",
            f"{s['effects']['drift_findings']} drift finding(s)",
        ],
        [
            "selftest",
            f"{s['selftest']['wall_s'] * 1e3:.1f}",
            "2 seeded bugs + 1 fixed variant",
            "ok" if s["selftest"]["ok"] else "FAILED",
        ],
    ]
    emit(
        "bench_flow",
        paper_table(
            ["stage", "wall (ms)", "scope", "outcome"],
            rows,
            title="SimFlow SAN4xx analysis wall-time"
            f" (best of {REPEATS})",
        ),
    )
    print(f"wrote {out}")
    return 0


def test_bench_flow():
    """Pytest entry: analysis covers the tree and stays drift-free."""
    payload = run()
    s = payload["stages"]
    assert s["paths"]["workers"] > 0
    assert s["paths"]["verified_disjoint"] >= 3
    assert s["effects"]["drift_findings"] == 0
    assert s["selftest"]["ok"]


if __name__ == "__main__":
    sys.exit(main())
