"""Figure 7 — end-to-end type-A speedup, inputs included.

(PKC + PHCD + preprocessing + PBKS) against (BZ + LCPS + BKS).  The
paper's shape: speedups well below Figure 6's because computing the
input dominates and scales worse than the score computation.
"""

from __future__ import annotations

from repro.analysis.stats import ascii_series

from common import (
    FIGURE_DATASETS,
    THREADS,
    TYPE_A_METRIC,
    emit,
    emit_profile,
    paper_table,
)


def _series(lab):
    rows = []
    for abbr in FIGURE_DATASETS:
        serial = lab.serial_stack_search(abbr, TYPE_A_METRIC)
        series = [
            serial / lab.parallel_stack_search(abbr, TYPE_A_METRIC, p)
            for p in THREADS
        ]
        rows.append(
            [abbr]
            + [f"{x:.2f}" for x in series]
            + [ascii_series(series)]
        )
    return rows


def test_fig7_typea_endtoend_speedup(lab, benchmark):
    rows = benchmark.pedantic(_series, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        ["DS"] + [f"p={p}" for p in THREADS] + ["curve"],
        rows,
        title="Figure 7 — (PKC+PHCD+PBKS) speedup to (BZ+LCPS+BKS), type-A",
    )
    emit("fig7_typea_endtoend", text)
    emit_profile("fig7_typea_endtoend", metric=TYPE_A_METRIC)
    for abbr, row in zip(FIGURE_DATASETS, rows):
        series = [float(x) for x in row[1:-1]]
        score_only = lab.bks_time(abbr, TYPE_A_METRIC) / lab.pbks_time(
            abbr, TYPE_A_METRIC, 40
        )
        assert series[-1] > 1.5, f"{abbr}: end-to-end must still win"
        assert series[-1] < score_only, (
            f"{abbr}: input computation must reduce the speedup"
        )
