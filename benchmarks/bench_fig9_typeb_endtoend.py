"""Figure 9 — end-to-end type-B speedup, inputs included.

(PKC + PHCD + preprocessing + PBKS) vs (BZ + LCPS + BKS) for the
motif-based metrics.  Paper shape: closer to Figure 8 than Figure 7 is
to Figure 6, because type-B score computation dominates the pipeline
("we achieve a better speedup on harder cases").
"""

from __future__ import annotations

from repro.analysis.stats import ascii_series

from common import (
    FIGURE_DATASETS,
    THREADS,
    TYPE_A_METRIC,
    TYPE_B_METRIC,
    emit,
    emit_profile,
    paper_table,
)


def _series(lab):
    rows = []
    for abbr in FIGURE_DATASETS:
        serial = lab.serial_stack_search(abbr, TYPE_B_METRIC)
        series = [
            serial / lab.parallel_stack_search(abbr, TYPE_B_METRIC, p)
            for p in THREADS
        ]
        rows.append(
            [abbr]
            + [f"{x:.2f}" for x in series]
            + [ascii_series(series)]
        )
    return rows


def test_fig9_typeb_endtoend_speedup(lab, benchmark):
    rows = benchmark.pedantic(_series, args=(lab,), rounds=1, iterations=1)
    text = paper_table(
        ["DS"] + [f"p={p}" for p in THREADS] + ["curve"],
        rows,
        title="Figure 9 — (PKC+PHCD+PBKS) speedup to (BZ+LCPS+BKS), type-B",
    )
    emit("fig9_typeb_endtoend", text)
    emit_profile("fig9_typeb_endtoend", metric=TYPE_B_METRIC)
    for abbr, row in zip(FIGURE_DATASETS, rows):
        end_b = float(row[-2])
        score_b = lab.bks_time(abbr, TYPE_B_METRIC) / lab.pbks_time(
            abbr, TYPE_B_METRIC, 40
        )
        end_a = lab.serial_stack_search(
            abbr, TYPE_A_METRIC
        ) / lab.parallel_stack_search(abbr, TYPE_A_METRIC, 40)
        assert end_b > 2.0, abbr
        # end-to-end type-B retains more of its score-only speedup than
        # type-A does (the "harder cases" claim)
        assert end_b / score_b > 0.5 * end_a / (
            lab.bks_time(abbr, TYPE_A_METRIC)
            / lab.pbks_time(abbr, TYPE_A_METRIC, 40)
        ), abbr
