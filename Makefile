PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test sanitize lint profile bench-sanitize bench-profile

## check: the CI gate — tests, worker lint, kernel race sweep, profiler selftest
check: test sanitize profile

test:
	$(PYTHON) -m pytest -x -q

## sanitize: race-check every kernel, lint src/, run the seeded selftest
sanitize:
	$(PYTHON) -m repro sanitize --all-kernels
	$(PYTHON) -m repro sanitize --lint
	$(PYTHON) -m repro sanitize --selftest

## lint: just the static parallel-loop lint over src/
lint:
	$(PYTHON) -m repro sanitize --lint

## profile: SimProf zero-perturbation selftest
profile:
	$(PYTHON) -m repro profile --selftest

## bench-sanitize: refresh benchmarks/results/BENCH_sanitize.json
bench-sanitize:
	$(PYTHON) benchmarks/bench_sanitize.py

## bench-profile: refresh benchmarks/results/BENCH_profile.json
bench-profile:
	$(PYTHON) benchmarks/bench_profile.py
