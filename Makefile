PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test sanitize memcheck lint flow prove dist profile bench-sanitize bench-profile bench-flow bench-prove bench-dist serve-bench bench-dynamic bench-cluster

## check: the CI gate — tests, strict lint, flow analysis, prove + dist certification, kernel race+memcheck sweep, profiler selftest, dynamic + prove + dist + cluster benches
check: test lint flow prove dist sanitize memcheck profile bench-dynamic bench-prove bench-dist bench-cluster

test:
	$(PYTHON) -m pytest -x -q

## sanitize: race-check every kernel, lint src/, run the seeded selftest
sanitize:
	$(PYTHON) -m repro sanitize --all-kernels
	$(PYTHON) -m repro sanitize --lint
	$(PYTHON) -m repro sanitize --selftest

## memcheck: SimCheck sweep — kernels + seeded selftests under the memory sanitizer
memcheck:
	$(PYTHON) -m repro sanitize --memcheck --all-kernels
	$(PYTHON) -m repro sanitize --memcheck --selftest

## lint: the full static SAN1xx-SAN3xx lint over src/ + benchmarks/, warnings gating
lint:
	$(PYTHON) -m repro sanitize --strict --lint

## flow: SimFlow SAN4xx analysis — divergent sync, disjoint-write proofs, effect drift
flow:
	$(PYTHON) -m repro sanitize --strict --flow --all-kernels
	$(PYTHON) -m repro sanitize --flow --selftest

## prove: SimProve SAN5xx certification — bounds proofs, determinism, manifest drift
prove:
	$(PYTHON) -m repro sanitize --strict --prove
	$(PYTHON) -m repro sanitize --prove --selftest

## dist: SimDist SAN6xx certification — monotonicity, BSP phases, ownership, wire schemas, replay safety, manifest drift
dist:
	$(PYTHON) -m repro sanitize --strict --dist
	$(PYTHON) -m repro sanitize --dist --selftest

## profile: SimProf zero-perturbation selftest
profile:
	$(PYTHON) -m repro profile --selftest

## bench-sanitize: refresh benchmarks/results/BENCH_sanitize.json
bench-sanitize:
	$(PYTHON) benchmarks/bench_sanitize.py

## bench-profile: refresh benchmarks/results/BENCH_profile.json
bench-profile:
	$(PYTHON) benchmarks/bench_profile.py

## bench-flow: refresh benchmarks/results/BENCH_flow.json (SimFlow wall-time)
bench-flow:
	$(PYTHON) benchmarks/bench_flow.py

## bench-prove: refresh benchmarks/results/BENCH_prove.json (certification + barrier elision)
bench-prove:
	$(PYTHON) benchmarks/bench_prove.py

## bench-dist: refresh benchmarks/results/BENCH_dist.json (protocol certification coverage + zero perturbation)
bench-dist:
	$(PYTHON) benchmarks/bench_dist.py

## serve-bench: refresh benchmarks/results/BENCH_serve.json (HCDServe replay)
serve-bench:
	$(PYTHON) benchmarks/bench_serve.py

## bench-dynamic: refresh benchmarks/results/BENCH_dynamic.json (batched maintenance + delta publishing)
bench-dynamic:
	$(PYTHON) benchmarks/bench_dynamic.py

## bench-cluster: refresh benchmarks/results/BENCH_cluster.json (distributed decomposition + fault-tolerant sharded serving)
bench-cluster:
	$(PYTHON) benchmarks/bench_cluster.py
