"""(3,4)-nucleus hierarchy — the paper's named open problem, running.

The paper's related work closes with: "there is no parallel solution
for the hierarchy construction of nucleus decomposition."  The PHCD
framework is motif-agnostic, so this repository provides one: elements
are triangles, adjacency is K4 co-membership, and Algorithm 2's four
pivot/union-find steps apply unchanged.

This example decomposes a graph with planted dense blocks and walks
the nucleus communities it finds — the densest-of-the-dense regions
that even k-truss cannot separate.

Run:  python examples/nucleus_communities.py
"""

import numpy as np

from repro import SimulatedPool
from repro.graph.generators import planted_partition
from repro.nucleus import TriangleIndex, nucleus_decomposition, nucleus_hierarchy


def main() -> None:
    graph = planted_partition(3, 18, 0.6, 0.03, seed=11)
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")

    index = TriangleIndex(graph)
    print(f"triangles: {len(index)}")

    pool = SimulatedPool(threads=4)
    theta = nucleus_decomposition(graph, index, pool)
    print(f"nucleus numbers: 0..{int(theta.max())}")
    print("triangles per theta level:")
    for k, count in enumerate(np.bincount(theta)):
        if count:
            print(f"  theta={k:3d}: {count}")

    hierarchy = nucleus_hierarchy(graph, theta, pool, index=index)
    print(f"\nnucleus hierarchy: {hierarchy.num_nodes} nodes")
    print(f"total simulated time: {pool.clock:.0f}")

    deepest = int(np.argmax(hierarchy.node_theta))
    k = int(hierarchy.node_theta[deepest])
    members = hierarchy.vertices_of_nucleus(deepest)
    tris = hierarchy.reconstruct_nucleus(deepest)
    print(
        f"\ndeepest community: a {k}-(3,4)-nucleus with {tris.size} "
        f"triangles over {members.size} vertices"
    )
    print(f"vertices: {members[:15].tolist()}" + (" ..." if members.size > 15 else ""))
    print(
        f"every triangle inside it participates in at least {k} K4s "
        "within the community — a strictly tighter notion than k-core "
        "degree or k-truss triangle support."
    )


if __name__ == "__main__":
    main()
