"""Quickstart: build a graph, construct its HCD, search the best k-core.

Run:  python examples/quickstart.py
"""

from repro import Graph, decompose, search_best_core
from repro.analysis.visualization import ascii_tree


def main() -> None:
    # The graph of the paper's Figure 1, roughly: a 4-core nucleus (K5),
    # two 3-cores beside it, and a sparse 2-shell stitching everything.
    edges = []
    k5 = range(0, 5)
    edges += [(u, v) for u in k5 for v in k5 if u < v]
    k4a = range(5, 9)
    edges += [(u, v) for u in k4a for v in k4a if u < v]
    k4b = range(9, 13)
    edges += [(u, v) for u in k4b for v in k4b if u < v]
    ring = [13, 14, 15, 16, 17]
    edges += list(zip(ring, ring[1:] + ring[:1]))
    edges += [(5, 0), (13, 5), (15, 9)]
    graph = Graph.from_edges(edges)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # Parallel decomposition: PKC coreness + PHCD hierarchy on 4
    # simulated threads.  Results are identical to the serial stack.
    deco = decompose(graph, threads=4)
    print(f"\ncoreness values: {sorted(set(deco.coreness.tolist()))}")
    print(f"hierarchy: {deco.hcd}")
    print("\nthe HCD forest:")
    print(ascii_tree(deco.hcd))

    # Subgraph search: which k-core has the highest average degree?
    result, pipeline = search_best_core(graph, "average_degree", threads=4)
    members = result.best_members()
    print(
        f"\nbest k-core by average degree: k={result.best_k}, "
        f"score={result.best_score:.3f}, members={members.tolist()}"
    )

    print("\nsimulated phase times (arbitrary units):")
    for phase, elapsed in pipeline.phase_times.items():
        print(f"  {phase:20} {elapsed:10.0f}")


if __name__ == "__main__":
    main()
