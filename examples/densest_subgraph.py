"""Densest subgraph & maximum clique — the paper's flagship application.

Plants a dense community inside a sparse social-style background, then
compares four solvers on it:

* CoreApp   — the kmax-core heuristic (0.5-approximation baseline);
* Opt-D     — the serial BKS-based optimum over all k-cores;
* PBKS-D    — the paper's parallel search (same answer, much faster);
* exact     — Goldberg's flow-based optimum over *all* subgraphs.

Also demonstrates the Table IV observation that the maximum clique
lives inside PBKS-D's output, making it a strong pruning step.

Run:  python examples/densest_subgraph.py
"""

import numpy as np

from repro import SimulatedPool, decompose
from repro.graph.generators import barabasi_albert
from repro.graph.graph import Graph
from repro.search.clique import maximum_clique
from repro.search.coreapp import coreapp_densest
from repro.search.densest import exact_densest, optd_densest, pbks_densest


def planted_graph(seed: int = 7) -> Graph:
    """A BA background with a hidden K12 planted on random vertices."""
    base = barabasi_albert(400, 3, seed=seed)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(base.num_vertices, size=12, replace=False)
    edges = list(base.edges())
    edges += [
        (int(chosen[i]), int(chosen[j]))
        for i in range(12)
        for j in range(i + 1, 12)
    ]
    return Graph.from_edges(edges, num_vertices=base.num_vertices)


def main() -> None:
    graph = planted_graph()
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")
    deco = decompose(graph, threads=4)

    pool = SimulatedPool(threads=1)
    ca = coreapp_densest(graph, pool)
    print(
        f"\nCoreApp  : avg degree {ca.average_degree:8.3f}  "
        f"|S|={ca.size:4d}  sim time {pool.clock:10.0f}"
    )

    pool = SimulatedPool(threads=1)
    od = optd_densest(graph, deco.coreness, deco.hcd, pool)
    print(
        f"Opt-D    : avg degree {od.average_degree:8.3f}  "
        f"|S|={od.size:4d}  sim time {pool.clock:10.0f}"
    )

    pool = SimulatedPool(threads=40)
    pd = pbks_densest(graph, deco.coreness, deco.hcd, pool)
    print(
        f"PBKS-D   : avg degree {pd.average_degree:8.3f}  "
        f"|S|={pd.size:4d}  sim time {pool.clock:10.0f}  (40 threads)"
    )

    exact = exact_densest(graph)
    print(f"exact    : avg degree {exact.average_degree:8.3f}  |S|={exact.size:4d}")

    ratio = pd.average_degree / exact.average_degree
    print(f"\nPBKS-D achieves {100 * ratio:.1f}% of the exact optimum")
    assert ratio >= 0.5, "0.5-approximation guarantee violated!"

    mc = maximum_clique(graph)
    inside = set(mc.tolist()) <= set(pd.members.tolist())
    print(
        f"maximum clique: size {mc.size}; contained in PBKS-D's subgraph: "
        f"{'yes' if inside else 'no'}"
    )
    print(
        f"S* holds {pd.size} of {graph.num_vertices} vertices "
        f"({100 * pd.size / graph.num_vertices:.2f}%) — clique search can "
        "be pruned to it"
    )


if __name__ == "__main__":
    main()
