"""Anchored k-core: spending an engagement budget wisely.

The paper's engagement story: users at the k-core's fringe leave when
their in-community degree drops below k, and departures cascade.
*Anchoring* a user (a perk that keeps them engaged unconditionally)
can retain whole chains of followers.  This example builds a
social-style graph with fragile chains around a stable nucleus and
spends a small anchor budget greedily.

Run:  python examples/engagement_anchoring.py
"""

import numpy as np

from repro.graph.generators import barabasi_albert
from repro.graph.graph import Graph
from repro.search.anchoring import anchored_k_core, greedy_anchors

K = 3


def fragile_graph(seed: int = 5) -> Graph:
    """A BA nucleus with chains of nearly-retained users attached."""
    base = barabasi_albert(120, 3, seed=seed)
    rng = np.random.default_rng(seed)
    edges = list(base.edges())
    next_id = base.num_vertices
    # chains whose members each have k-1 in-chain links + one into the
    # nucleus: one anchor at the end retains the whole chain at k=3
    for _ in range(6):
        length = int(rng.integers(3, 6))
        chain = list(range(next_id, next_id + length))
        next_id += length
        for a, b in zip(chain, chain[1:]):
            edges.append((a, b))
        # one nucleus link per member: chain middles then sit at exactly
        # degree 3, so the chain lives or dies with its exposed end
        for member in chain:
            edges.append((member, int(rng.integers(0, 60))))
    return Graph.from_edges(edges, num_vertices=next_id)


def main() -> None:
    graph = fragile_graph()
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")

    plain = anchored_k_core(graph, K)
    print(f"plain {K}-core: {plain.size} members")

    for budget in (1, 2, 4):
        result = greedy_anchors(graph, K, budget=budget)
        print(
            f"budget {budget}: anchors={result.anchors} "
            f"gains={result.gains} -> {result.members.size} members "
            f"(+{result.total_gain})"
        )

    result = greedy_anchors(graph, K, budget=4)
    if result.anchors:
        per_anchor = result.total_gain / len(result.anchors)
        print(
            f"\neach anchor retained {per_anchor:.1f} users on average — "
            "the cascade effect the anchored-coreness literature exploits."
        )


if __name__ == "__main__":
    main()
