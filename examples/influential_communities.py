"""Influential community search on the HCD (Section VI extension).

Assigns synthetic influence weights (a PageRank-like activity score)
to a social-network stand-in, builds the influential-community index
in one pass over the hierarchy, then answers several (k, r) queries
without touching the graph again.

Run:  python examples/influential_communities.py
"""

import numpy as np

from repro import InfluentialCommunityIndex, SimulatedPool, decompose
from repro.analysis.datasets import load


def main() -> None:
    dataset = load("LJ")
    graph = dataset.graph
    print(
        f"dataset {dataset.abbrev}: n={graph.num_vertices}, "
        f"m={graph.num_edges}, kmax={dataset.kmax}"
    )
    deco = decompose(graph, threads=4)

    # Influence proxy: degree-weighted activity with noise, so dense
    # regions tend to hold influential users but not uniformly.
    rng = np.random.default_rng(7)
    weights = graph.degrees() * (0.5 + rng.random(graph.num_vertices))

    pool = SimulatedPool(threads=4)
    index = InfluentialCommunityIndex(deco.hcd, weights, pool)
    print(f"index built (simulated time {pool.clock:.0f})\n")

    for k in (2, 4, 8):
        print(f"top-3 influential {k}-cores:")
        for answer in index.top_r(k, 3):
            members = index.members(answer)
            print(
                f"  influence={answer.influence:8.2f}  |S|={answer.size:5d}  "
                f"sample={members[:6].tolist()}"
            )
        print()

    print(
        "queries run entirely on the index — the HCD compresses the "
        "k-core hierarchy into O(n) space, as the paper's 'Efficient "
        "Subgraph Index' extension describes."
    )


if __name__ == "__main__":
    main()
