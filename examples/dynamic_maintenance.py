"""Dynamic coreness maintenance under a stream of edge updates.

Feeds a random insert/delete stream into :class:`DynamicGraph`, which
repairs the coreness array locally after every update (the traversal
algorithms of the streaming/maintenance literature the paper builds
on), and periodically verifies against a full recomputation.

Run:  python examples/dynamic_maintenance.py
"""

import numpy as np

from repro import DynamicGraph
from repro.core.decomposition import core_decomposition
from repro.graph.generators import erdos_renyi


def main() -> None:
    graph = erdos_renyi(200, 0.03, seed=11)
    dyn = DynamicGraph(graph)
    print(f"initial graph: n={graph.num_vertices}, m={graph.num_edges}")
    print(f"initial kmax: {int(dyn.coreness.max())}")

    rng = np.random.default_rng(0)
    edges = set(map(tuple, graph.edge_array().tolist()))
    inserts = deletes = 0
    for step in range(300):
        if rng.random() < 0.65 or not edges:
            while True:
                u, v = sorted(int(x) for x in rng.integers(0, 200, size=2))
                if u != v and (u, v) not in edges:
                    break
            dyn.insert_edge(u, v)
            edges.add((u, v))
            inserts += 1
        else:
            u, v = sorted(edges)[int(rng.integers(0, len(edges)))]
            dyn.delete_edge(u, v)
            edges.remove((u, v))
            deletes += 1
        if (step + 1) % 100 == 0:
            truth = core_decomposition(dyn.to_graph())
            ok = bool(np.array_equal(dyn.coreness, truth))
            print(
                f"after {step + 1:4d} updates: m={dyn.num_edges}, "
                f"kmax={int(dyn.coreness.max())}, "
                f"matches full recompute: {ok}"
            )
            assert ok

    print(f"\nprocessed {inserts} insertions and {deletes} deletions")
    hcd = dyn.hcd(threads=4)
    print(f"hierarchy rebuilt from maintained coreness: {hcd}")
    hcd.validate(dyn.to_graph(), dyn.coreness)
    print("hierarchy validates against the definitional invariants.")


if __name__ == "__main__":
    main()
