"""Sweep every community scoring metric, then register a custom one.

PBKS evaluates any metric defined over the primary values
(n, m, boundary edges, triangles, triplets).  This example scores the
hollywood-like stand-in under all six paper metrics — sharing one
preprocessing pass, as the paper prescribes — and then defines a new
metric ("triangle density") that works unchanged.

Run:  python examples/community_metrics.py
"""

from repro import SimulatedPool, decompose, register_metric
from repro.analysis.datasets import load
from repro.search.metrics import metric_names
from repro.search.pbks import pbks_search
from repro.search.preprocessing import preprocess_neighbor_counts


def main() -> None:
    dataset = load("H")
    graph = dataset.graph
    print(
        f"dataset {dataset.abbrev}: n={graph.num_vertices}, "
        f"m={graph.num_edges}, kmax={dataset.kmax}"
    )
    deco = decompose(graph, threads=8)

    pool = SimulatedPool(threads=8)
    counts = preprocess_neighbor_counts(graph, dataset.coreness, pool)

    print(f"\n{'metric':28}{'best k':>8}{'score':>12}{'|S|':>8}")
    for name in metric_names():
        result = pbks_search(
            graph, dataset.coreness, deco.hcd, name, pool, counts=counts
        )
        print(
            f"{name:28}{result.best_k:>8}{result.best_score:>12.4f}"
            f"{result.best_members().size:>8}"
        )

    # A user-defined type-B metric: triangles per possible triple.
    register_metric(
        "triangle_density",
        "B",
        lambda v, totals: (
            6.0 * v.triangles / (v.n * (v.n - 1) * (v.n - 2))
            if v.n >= 3
            else 0.0
        ),
    )
    result = pbks_search(
        graph, dataset.coreness, deco.hcd, "triangle_density", pool, counts=counts
    )
    print(
        f"{'triangle_density (custom)':28}{result.best_k:>8}"
        f"{result.best_score:>12.4f}{result.best_members().size:>8}"
    )
    print(
        "\ncustom metrics over the primary values run through the same "
        "work-efficient PBKS kernels — no new algorithm code required."
    )


if __name__ == "__main__":
    main()
