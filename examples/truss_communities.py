"""k-truss hierarchy via the PHCD framework (Section VI extension).

The paper closes by noting the PHCD/PBKS framework carries over to
other hierarchical cohesive models, naming k-truss first.  This
example decomposes a clustered graph into its trussness classes and
builds the truss hierarchy with the transplanted Algorithm 2 —
union-find over *edges*, shells in descending trussness, pivots and
all — then inspects the communities it finds.

Run:  python examples/truss_communities.py
"""

import numpy as np

from repro import SimulatedPool
from repro.graph.generators import powerlaw_cluster
from repro.truss import EdgeIndex, truss_decomposition, truss_hierarchy


def main() -> None:
    graph = powerlaw_cluster(300, 4, 0.7, seed=3)
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")

    index = EdgeIndex(graph)
    pool = SimulatedPool(threads=4)
    trussness = truss_decomposition(graph, index, pool)
    print(f"trussness range: 2..{int(trussness.max())}")
    print("edges per trussness level:")
    for k, count in enumerate(np.bincount(trussness)):
        if count:
            print(f"  k={k:3d}: {count}")

    hierarchy = truss_hierarchy(graph, trussness, pool, index=index)
    print(f"\ntruss hierarchy: {hierarchy.num_nodes} nodes")
    print(f"total simulated time: {pool.clock:.0f}")

    # the deepest community: a tightly knit triangle-rich group
    deepest = int(np.argmax(hierarchy.node_trussness))
    k = int(hierarchy.node_trussness[deepest])
    edge_ids = hierarchy.reconstruct_truss(deepest)
    vertices = sorted(
        {int(x) for e in edge_ids for x in index.edges[e]}
    )
    print(
        f"\ndeepest community: a {k}-truss with {edge_ids.size} edges over "
        f"{len(vertices)} vertices: {vertices[:12]}"
        + (" ..." if len(vertices) > 12 else "")
    )
    print(
        "every edge inside it closes at least "
        f"{k - 2} triangles within the community."
    )


if __name__ == "__main__":
    main()
