"""Visualize a graph's hierarchical core decomposition.

Renders the HCD of a composed graph with known structure as an ASCII
forest and as Graphviz DOT (written next to this script), plus the
per-level summary histogram — the "graph visualization" application of
the paper's introduction.

Run:  python examples/hierarchy_visualization.py
"""

from pathlib import Path

from repro import decompose
from repro.analysis.visualization import ascii_tree, hierarchy_summary, to_dot
from repro.graph.generators import core_chain


def main() -> None:
    # A graph engineered to have a rich, known hierarchy: three nested
    # branches sharing one outermost 2-core.
    result = core_chain([[6, 4, 2], [5, 2], [3, 2]], seed=1)
    graph = result.graph
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")

    deco = decompose(graph, threads=2)
    print("\nASCII forest (vertex sets truncated):")
    print(ascii_tree(deco.hcd, max_vertices=6))

    print("\nsummary:")
    print(hierarchy_summary(deco.hcd))

    dot_path = Path(__file__).with_name("hierarchy.dot")
    dot_path.write_text(to_dot(deco.hcd), encoding="utf-8")
    print(f"\nGraphviz DOT written to {dot_path}")
    print("render with:  dot -Tpng hierarchy.dot -o hierarchy.png")


if __name__ == "__main__":
    main()
