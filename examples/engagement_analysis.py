"""User-engagement analysis on the core hierarchy.

Reproduces the paper's motivating application: a user's coreness
predicts their engagement, and the prediction sharpens when the user's
*position in the HCD* is also considered (Lin et al., PVLDB'21).

Run:  python examples/engagement_analysis.py
"""

from repro import decompose
from repro.analysis.datasets import load
from repro.analysis.engagement import EngagementStudy


def main() -> None:
    dataset = load("UK")  # the web-crawl stand-in (deepest hierarchy)
    graph = dataset.graph
    print(
        f"dataset {dataset.abbrev}: n={graph.num_vertices}, "
        f"m={graph.num_edges}, kmax={dataset.kmax}"
    )

    deco = decompose(graph, threads=4)
    study = EngagementStudy.run(dataset.coreness, deco.hcd, seed=42)

    print(
        f"\nPearson correlation(coreness, engagement) = "
        f"{study.coreness_correlation:.3f}"
    )
    print("\nmean engagement per k-shell (coreness -> engagement):")
    for k in sorted(study.by_coreness):
        bar = "#" * int(study.by_coreness[k])
        print(f"  k={k:3d}: {study.by_coreness[k]:7.2f} {bar}")

    print(
        "\nwithin-shell refinement by hierarchy depth "
        "(coreness, depth) -> engagement:"
    )
    shown = 0
    for (k, depth) in sorted(study.by_position):
        print(f"  (k={k:3d}, depth={depth:2d}): {study.by_position[(k, depth)]:7.2f}")
        shown += 1
        if shown >= 12:
            print(f"  ... ({len(study.by_position)} cells total)")
            break

    print(
        f"\nestimating engagement from (coreness, HCD depth) instead of "
        f"coreness alone reduces mean absolute error by "
        f"{study.position_gain:.4f} — the hierarchy position carries "
        "signal, as the paper reports."
    )


if __name__ == "__main__":
    main()
