"""k-edge-connected components (Section VI extension).

Builds a graph of dense groups joined by thin bridges and walks its
k-ECC hierarchy: each level strips away connections that fewer than k
edge-disjoint paths support — a robustness-oriented notion of
community that complements k-core (degree) and k-truss (triangles).

Run:  python examples/ecc_communities.py
"""

import numpy as np

from repro.ecc import ecc_decomposition, k_edge_connected_components
from repro.graph.generators import complete_graph
from repro.graph.graph import Graph


def bridged_groups() -> Graph:
    """Three cliques: two joined by a 2-edge band, one by a single bridge."""
    edges = list(complete_graph(5).edges())                        # A: 0-4
    edges += [(u + 5, v + 5) for u, v in complete_graph(5).edges()]   # B: 5-9
    edges += [(u + 10, v + 10) for u, v in complete_graph(4).edges()]  # C: 10-13
    edges += [(0, 5), (1, 6)]   # A=B double band (2-edge-connected)
    edges += [(9, 10)]          # B-C single bridge
    return Graph.from_edges(edges)


def main() -> None:
    graph = bridged_groups()
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")

    for k in (1, 2, 3, 4):
        comps = [c for c in k_edge_connected_components(graph, k) if len(c) > 1]
        print(f"k={k}: {len(comps)} non-trivial {k}-ECC(s): {comps}")

    hierarchy = ecc_decomposition(graph)
    print("\nhierarchy nodes (connectivity, members):")
    for (value, members), parent in zip(hierarchy.nodes, hierarchy.parents):
        pa = "root" if parent < 0 else f"child of value-{hierarchy.nodes[parent][0]}"
        print(f"  lambda={value}: {sorted(members)} ({pa})")

    print("\nper-vertex connectivity numbers:")
    print(" ", np.asarray(hierarchy.connectivity))
    print(
        "\nthe single bridge (9-10) caps C's membership at lambda=1, while "
        "the double band keeps A and B together up to lambda=2 — exactly "
        "the robustness distinctions degree-based cores cannot make."
    )


if __name__ == "__main__":
    main()
