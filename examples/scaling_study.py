"""Mini scaling study: Figures 4 and 6 from the public API.

Sweeps the simulated thread count for HCD construction (PHCD vs LCPS)
and type-A subgraph search (PBKS vs BKS) on one dataset stand-in and
prints the speedup curves the paper plots.

Run:  python examples/scaling_study.py [dataset-abbrev]
"""

import sys

from repro import SimulatedPool
from repro.analysis.datasets import load
from repro.core.lcps import lcps_build_hcd
from repro.core.phcd import phcd_build_hcd
from repro.search.bks import bks_search
from repro.search.pbks import pbks_search
from repro.search.preprocessing import preprocess_neighbor_counts

THREADS = [1, 5, 10, 20, 40]


def main() -> None:
    abbrev = sys.argv[1] if len(sys.argv) > 1 else "UK"
    dataset = load(abbrev)
    graph, coreness = dataset.graph, dataset.coreness
    print(
        f"dataset {dataset.abbrev}: n={graph.num_vertices}, "
        f"m={graph.num_edges}, kmax={dataset.kmax}"
    )

    serial = SimulatedPool(threads=1)
    hcd = lcps_build_hcd(graph, coreness, serial)
    lcps_time = serial.clock

    print("\nHCD construction — PHCD's speedup over serial LCPS (Fig. 4):")
    for p in THREADS:
        pool = SimulatedPool(threads=p)
        phcd_build_hcd(graph, coreness, pool)
        bar = "#" * int(2 * lcps_time / pool.clock)
        print(f"  p={p:3d}: {lcps_time / pool.clock:6.2f}x {bar}")

    serial = SimulatedPool(threads=1)
    bks_search(graph, coreness, hcd, "conductance", serial)
    bks_time = serial.clock

    print("\ntype-A search — PBKS's speedup over serial BKS (Fig. 6):")
    for p in THREADS:
        pool = SimulatedPool(threads=p)
        counts = preprocess_neighbor_counts(graph, coreness, pool)
        mark = pool.mark()
        pbks_search(graph, coreness, hcd, "conductance", pool, counts=counts)
        elapsed = pool.elapsed_since(mark)
        bar = "#" * int(bks_time / elapsed)
        print(f"  p={p:3d}: {bks_time / elapsed:6.1f}x {bar}")

    print(
        "\n(the clock is the deterministic simulated-multicore model; "
        "see DESIGN.md section 1 for the substitution rationale)"
    )


if __name__ == "__main__":
    main()
