"""SimProf selftest — the zero-perturbation and coverage gate.

For every kernel in the sanitizer's workload registry
(:data:`repro.sanitizer.kernels.KERNELS` — the same bodies the race
detector sweeps), the selftest runs the kernel twice on fresh pools,
bare and under a :class:`~repro.profiler.tracer.SpanTracer`, and
checks:

1. **zero perturbation** — the simulated clocks are *exactly* equal
   (``delta == 0.0``, no tolerance): the tracer reads scheduler state
   but never charges it;
2. **exact coverage** — the sum of traced region-span elapsed values
   is bitwise equal to the traced pool's clock: every region was
   observed and none was double-counted;
3. **exporters serialize** — the Chrome trace and the profile report
   both round-trip through :func:`json.dumps`.

Exposed as ``repro profile --selftest``; ``make check`` and CI run it.
"""

from __future__ import annotations

import json

from repro.parallel.scheduler import SimulatedPool
from repro.profiler.export import chrome_trace
from repro.profiler.report import profile_report
from repro.profiler.tracer import SpanTracer

__all__ = ["selftest", "check_kernel"]


def check_kernel(body, threads: int = 4) -> tuple[SpanTracer, SimulatedPool]:
    """Run ``body(pool)`` bare and traced; raise on any gate failure."""
    bare = SimulatedPool(threads=threads)
    body(bare)
    traced = SimulatedPool(threads=threads)
    tracer = SpanTracer()
    with tracer.watch(traced):
        body(traced)
    delta = traced.clock - bare.clock
    if delta != 0.0:
        raise AssertionError(
            f"tracer perturbed the simulated clock by {delta!r} "
            f"({bare.clock!r} bare vs {traced.clock!r} traced)"
        )
    covered = tracer.total_elapsed()
    if covered != traced.clock:
        raise AssertionError(
            f"span coverage {covered!r} != pool clock {traced.clock!r}"
        )
    json.dumps(chrome_trace(tracer, traced))
    json.dumps(profile_report(tracer, traced))
    return tracer, traced


def selftest(threads: int = 4) -> tuple[bool, str]:
    """Gate every registered kernel; returns ``(ok, message)``."""
    from repro.sanitizer.kernels import KERNELS

    checked = 0
    regions = 0
    for name, body in KERNELS.items():
        try:
            tracer, _pool = check_kernel(body, threads=threads)
        except AssertionError as exc:
            return False, f"kernel {name!r}: {exc}"
        checked += 1
        regions += len(tracer.region_spans())
    return True, (
        f"{checked} kernels traced ({regions} regions): clock delta 0.0, "
        "span coverage exact, exporters serialize"
    )
