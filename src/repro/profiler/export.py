"""SimProf exporters — Chrome trace JSON and profile artifacts.

Two machine-readable artifacts are produced from a traced run:

* :func:`chrome_trace` — a ``trace_event``-format JSON object loadable
  in ``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_.
  Track 0 holds the nested phase/region spans; tracks 1..p hold one
  lane per virtual thread showing each thread's local time inside
  every region, which makes load imbalance directly visible as ragged
  right edges.  Timestamps are the simulated clock, reported in
  microseconds (1 sim unit = 1 us).
* :func:`repro.profiler.report.profile_report` — the aggregated
  ``profile.json`` (see its module).

:func:`write_artifacts` bundles both next to each other on disk.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.profiler.tracer import Span, SpanTracer

__all__ = ["chrome_trace", "write_artifacts"]


def _span_args(span: Span) -> dict:
    if span.kind == "phase":
        return {"elapsed": span.elapsed}
    args = {
        "threads": span.threads,
        "items": span.items,
        "work_total": span.work_total,
        "work_max": span.work_max,
        "atomic_ops": span.atomic_ops,
        "imbalance": round(span.imbalance, 4),
    }
    args.update({f"cost_{k}": v for k, v in span.costs.items()})
    return args


def chrome_trace(
    tracer: SpanTracer,
    pool,
    pid: int = 0,
    process_name: str | None = None,
) -> dict:
    """Chrome ``trace_event`` JSON object for a traced run.

    The returned dict serializes with :func:`json.dumps` and loads in
    ``chrome://tracing`` / Perfetto.  ``displayTimeUnit`` is ``ms``;
    simulated clock units map 1:1 onto microseconds.  ``pid`` and
    ``process_name`` place the events on a named process track, which
    lets multi-pool callers (the cluster profiler) merge several pools
    into one trace with one process lane per node.
    """
    if process_name is None:
        process_name = f"SimulatedPool(p={pool.threads})"
    events: list[dict] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        },
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "thread_name",
            "args": {"name": "phases+regions"},
        },
    ]
    for t in range(pool.threads):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": t + 1,
                "name": "thread_name",
                "args": {"name": f"vthread {t}"},
            }
        )
    for root in tracer.roots:
        for span in root.walk():
            cat = "phase" if span.kind == "phase" else "region"
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "cat": cat,
                    "name": span.name,
                    "ts": span.t0,
                    "dur": span.elapsed,
                    "args": _span_args(span),
                }
            )
            if span.kind == "phase":
                continue
            for t, local in enumerate(span.thread_time):
                if local <= 0:
                    continue
                events.append(
                    {
                        "ph": "X",
                        "pid": pid,
                        "tid": t + 1,
                        "cat": "vthread",
                        "name": span.name,
                        "ts": span.t0,
                        "dur": local,
                        "args": {"work": span.thread_work[t]},
                    }
                )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tracer": "SimProf",
            "threads": pool.threads,
            "clock": pool.clock,
        },
    }


def write_artifacts(
    tracer: SpanTracer,
    pool,
    out_dir: str | Path,
    prefix: str = "",
) -> dict[str, Path]:
    """Write ``profile.json`` + ``trace.json`` under ``out_dir``.

    Returns ``{"profile": path, "trace": path}``.  ``prefix`` is
    prepended to both file names (``prefix + "profile.json"``).
    """
    from repro.profiler.report import profile_report

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        "profile": out / f"{prefix}profile.json",
        "trace": out / f"{prefix}trace.json",
    }
    paths["profile"].write_text(
        json.dumps(profile_report(tracer, pool), indent=2) + "\n",
        encoding="utf-8",
    )
    paths["trace"].write_text(
        json.dumps(chrome_trace(tracer, pool)) + "\n", encoding="utf-8"
    )
    return paths
