"""SimProf aggregation — ``profile.json`` and the terminal flame view.

:func:`profile_report` folds a traced run into a machine-readable
dictionary with three sections:

* ``spans`` — the raw span tree (phases nesting regions), each region
  carrying its cost decomposition and per-thread work;
* ``phases`` — per-phase-path aggregates: elapsed, work / spawn /
  barrier / contention split, the per-thread work histogram with its
  load-imbalance factor, and the top-N hottest contended cache lines
  (``hot_locations``) — the "which PHCD level is the bottleneck at
  p=8" answer;
* ``totals`` — whole-run decomposition plus the exact-coverage check
  (``region_elapsed_sum`` must equal ``clock``).

:func:`flame_summary` renders the same data as an indented terminal
tree with percentage bars — a flame graph for people without a
browser at hand.
"""

from __future__ import annotations

from repro.profiler.tracer import Span, SpanTracer

__all__ = ["profile_report", "flame_summary", "phase_table"]

#: contended locations kept per phase in the report
DEFAULT_TOP_LOCATIONS = 8

_COST_KEYS = ("work", "spawn", "barrier", "contention")


def _new_agg() -> dict:
    return {
        "elapsed": 0.0,
        "regions": 0,
        "items": 0,
        "atomic_ops": 0,
        "costs": {k: 0.0 for k in _COST_KEYS},
        "thread_work": [],
        "_locations": {},
    }


def _fold_region(agg: dict, span: Span) -> None:
    agg["elapsed"] += span.elapsed
    agg["regions"] += 1
    agg["items"] += span.items
    agg["atomic_ops"] += span.atomic_ops
    for k in _COST_KEYS:
        agg["costs"][k] += span.costs.get(k, 0.0)
    tw = agg["thread_work"]
    if len(tw) < len(span.thread_work):
        tw.extend([0.0] * (len(span.thread_work) - len(tw)))
    for t, w in enumerate(span.thread_work):
        tw[t] += w
    locations = agg["_locations"]
    for loc, (ops, queued) in span.contention.items():
        total_ops, total_queued = locations.get(loc, (0, 0))
        locations[loc] = (total_ops + ops, total_queued + queued)


def _imbalance(thread_work: list[float]) -> float:
    if len(thread_work) <= 1:
        return 1.0
    total = sum(thread_work)
    if total <= 0:
        return 1.0
    return max(thread_work) * len(thread_work) / total


def _finalize_phase(
    path: str, agg: dict, contended_cost: float, top: int
) -> dict:
    hot = sorted(
        agg["_locations"].items(),
        key=lambda kv: (-kv[1][1], -kv[1][0], repr(kv[0])),
    )[:top]
    return {
        "path": path,
        "elapsed": agg["elapsed"],
        "regions": agg["regions"],
        "items": agg["items"],
        "atomic_ops": agg["atomic_ops"],
        "costs": dict(agg["costs"]),
        "thread_work": list(agg["thread_work"]),
        "imbalance": _imbalance(agg["thread_work"]),
        "hot_locations": [
            {
                "location": repr(loc),
                "ops": ops,
                "queued": queued,
                "penalty": queued * contended_cost,
            }
            for loc, (ops, queued) in hot
        ],
    }


def profile_report(
    tracer: SpanTracer, pool, top: int = DEFAULT_TOP_LOCATIONS
) -> dict:
    """Aggregate a traced run into the ``profile.json`` dictionary.

    Regions are attributed to the phase *path* of their enclosing
    phase spans joined with ``/`` (e.g. ``phcd/phcd:level-3``);
    regions outside any phase fall under ``(unphased)``.  Every region
    lands in exactly one path, so the phase elapsed values sum to the
    pool clock (up to float associativity; the bitwise-exact check is
    ``totals.region_elapsed_sum``).
    """
    contended_cost = pool.cost_model.contended_atomic_cost
    phases: dict[str, dict] = {}
    order: list[str] = []

    def visit(span: Span, path: tuple[str, ...]) -> None:
        if span.kind == "phase":
            for child in span.children:
                visit(child, path + (span.name,))
            return
        key = "/".join(path) if path else "(unphased)"
        if key not in phases:
            phases[key] = _new_agg()
            order.append(key)
        _fold_region(phases[key], span)

    for root in tracer.roots:
        visit(root, ())

    totals = _new_agg()
    for span in tracer.region_spans():
        _fold_region(totals, span)

    return {
        "schema": "simprof/v1",
        "threads": pool.threads,
        "clock": pool.clock,
        "cost_model": {
            "op_cost": pool.cost_model.op_cost,
            "atomic_cost": pool.cost_model.atomic_cost,
            "contended_atomic_cost": contended_cost,
            "spawn_cost": pool.cost_model.spawn_cost,
            "barrier_cost": pool.cost_model.barrier_cost,
        },
        "totals": {
            "region_elapsed_sum": tracer.total_elapsed(),
            "regions": totals["regions"],
            "atomic_ops": totals["atomic_ops"],
            "costs": dict(totals["costs"]),
            "imbalance": _imbalance(totals["thread_work"]),
        },
        "phases": [
            _finalize_phase(path, phases[path], contended_cost, top)
            for path in order
        ],
        "spans": [root.to_dict() for root in tracer.roots],
    }


# ----------------------------------------------------------------------
# terminal rendering
# ----------------------------------------------------------------------


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def phase_totals(report: dict, prefix: str = "") -> dict[str, float]:
    """Elapsed simulated time per phase path, optionally prefix-filtered.

    Convenience over :func:`profile_report` output for callers that
    only care whether (and how long) certain phases ran — e.g. the
    serving path asserting its ``serve.*`` stages appear in the span
    tree.  Paths are ``/``-joined phase stacks, insertion-ordered.
    """
    return {
        phase["path"]: phase["elapsed"]
        for phase in report["phases"]
        if phase["path"].startswith(prefix)
    }


def phase_table(report: dict) -> str:
    """Per-phase cost-decomposition table from a profile report."""
    clock = report["clock"] or 1.0
    lines = [
        f"{'phase':<34} {'elapsed':>12} {'%':>6}  "
        f"{'work%':>6} {'spawn%':>6} {'barr%':>6} {'cont%':>6} {'imbal':>6}"
    ]
    for phase in report["phases"]:
        elapsed = phase["elapsed"] or 1.0
        costs = phase["costs"]
        lines.append(
            f"{phase['path']:<34} {phase['elapsed']:>12.0f} "
            f"{100 * phase['elapsed'] / clock:>5.1f}%  "
            f"{100 * costs['work'] / elapsed:>5.1f}% "
            f"{100 * costs['spawn'] / elapsed:>5.1f}% "
            f"{100 * costs['barrier'] / elapsed:>5.1f}% "
            f"{100 * costs['contention'] / elapsed:>5.1f}% "
            f"{phase['imbalance']:>5.2f}x"
        )
    return "\n".join(lines)


def flame_summary(report: dict, max_depth: int = 6) -> str:
    """Indented span tree with bars — a terminal flame graph.

    ``max_depth`` truncates very deep nests; region leaves with zero
    elapsed time are dropped for readability.
    """
    clock = report["clock"] or 1.0
    out = [
        f"SimProf — {report['threads']} virtual threads, "
        f"clock {report['clock']:.0f} sim units"
    ]

    def visit(node: dict, depth: int) -> None:
        if depth > max_depth:
            return
        elapsed = node.get("elapsed", 0.0)
        if node.get("kind") != "phase" and elapsed == 0.0:
            return
        frac = elapsed / clock
        label = ("  " * depth) + node["name"]
        suffix = ""
        if node.get("kind") != "phase":
            suffix = (
                f"  p={node.get('threads', 1)}"
                f" items={node.get('items', 0)}"
                f" imbal={node.get('imbalance', 1.0):.2f}x"
            )
        out.append(
            f"{label:<42} {elapsed:>12.0f} {100 * frac:>5.1f}% "
            f"|{_bar(frac)}|{suffix}"
        )
        for child in node.get("children", ()):
            visit(child, depth + 1)

    for root in report["spans"]:
        visit(root, 0)
    out.append("")
    out.append(phase_table(report))

    hot = [
        (phase["path"], loc)
        for phase in report["phases"]
        for loc in phase["hot_locations"]
        if loc["queued"] > 0
    ]
    if hot:
        hot.sort(key=lambda pair: -pair[1]["penalty"])
        out.append("")
        out.append("hottest contended cache lines:")
        for path, loc in hot[:DEFAULT_TOP_LOCATIONS]:
            out.append(
                f"  {loc['location']:<38} phase={path:<28} "
                f"ops={loc['ops']:<8} queued={loc['queued']:<8} "
                f"penalty={loc['penalty']:.0f}"
            )
    return "\n".join(out)
