"""SimProf: zero-perturbation span tracing for the simulated substrate.

An observability layer riding the same pool-observer hooks SimTSan
uses (see :mod:`repro.sanitizer`):

* :mod:`repro.profiler.tracer` — :class:`SpanTracer`, a read-only
  region observer nesting region records under the algorithm phases
  kernels annotate via ``pool.phase(...)``, with per-span cost
  decomposition (work / spawn / barrier / contention), per-thread
  work histograms, and per-cache-line contention attribution;
* :mod:`repro.profiler.export` — Chrome ``trace_event`` JSON
  (``chrome://tracing`` / Perfetto) and artifact bundling;
* :mod:`repro.profiler.report` — the aggregated ``profile.json`` and
  a terminal flame summary;
* :mod:`repro.profiler.selftest` — the zero-perturbation gate:
  attaching the tracer changes ``pool.clock`` by exactly ``0.0``.

Entry points: ``repro profile`` (CLI), ``REPRO_PROFILE=1`` for the
benchmark harnesses, :func:`selftest` (programmatic gate).
"""

from repro.profiler.export import chrome_trace, write_artifacts
from repro.profiler.report import (
    flame_summary,
    phase_table,
    phase_totals,
    profile_report,
)
from repro.profiler.selftest import check_kernel, selftest
from repro.profiler.tracer import Span, SpanTracer

__all__ = [
    "Span",
    "SpanTracer",
    "chrome_trace",
    "write_artifacts",
    "profile_report",
    "phase_table",
    "phase_totals",
    "flame_summary",
    "check_kernel",
    "selftest",
]
