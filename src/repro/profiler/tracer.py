"""SimProf span tracer — zero-perturbation observability for the pool.

:class:`SpanTracer` attaches to a
:class:`~repro.parallel.scheduler.SimulatedPool` through the same
observer protocol SimTSan's race detector uses, and additionally
consumes the pool's phase hooks (``on_phase_begin`` /
``on_phase_end``).  It builds a tree of :class:`Span` records:

* a **phase span** for every ``pool.phase(...)`` block a kernel opens
  (``phcd:level-3``, ``pbks:score``, ...), nested by the phase stack;
* a **region span** for every completed ``parallel_for`` /
  ``serial_region``, attached under the innermost open phase (or at
  the root when no phase is open).

Each region span carries a *cost decomposition* of its simulated
elapsed time — pure work (the critical-path thread), spawn overhead,
barrier overhead, and the contention penalty — plus the per-thread
work histogram, a load-imbalance factor, and the per-cache-line
contended-atomic attribution derived from the same location keys the
sanitizer's contention model uses.

Zero-perturbation guarantee
---------------------------
The tracer is strictly *read-only*: it never charges a context, never
enables event recording, and only snapshots state the scheduler
already maintains (``RegionStats``, per-context counters, the clock).
Attaching or detaching it therefore changes ``pool.clock`` by exactly
``0.0`` on every workload — asserted by
:func:`repro.profiler.selftest.selftest`,
``benchmarks/bench_profile.py`` and the test suite.
"""

from __future__ import annotations

from repro.parallel.context import ThreadContext

__all__ = ["Span", "SpanTracer"]


class Span:
    """One node of the trace tree: an algorithm phase or a region.

    Attributes
    ----------
    name:
        Phase name or region label.
    kind:
        ``"phase"``, ``"parallel"`` or ``"serial"``.
    t0, t1:
        Simulated clock at entry / exit.
    threads, items, work_total, work_max, atomic_ops:
        Copied from the region's :class:`RegionStats` (regions only).
    costs:
        Decomposition of ``elapsed`` into ``work`` / ``spawn`` /
        ``barrier`` / ``contention`` simulated time (regions only).
    thread_work:
        Work units charged by each virtual thread (regions only).
    thread_time:
        Local simulated time of each virtual thread, excluding
        contention (regions only).
    contention:
        ``{location-key: (ops, queued)}`` for contended atomic
        locations touched by more than one thread (regions only);
        ``queued * contended_atomic_cost`` is the location's share of
        the region's contention penalty.
    children:
        Nested spans (phases only; regions are leaves).
    """

    __slots__ = (
        "name",
        "kind",
        "t0",
        "t1",
        "elapsed",
        "threads",
        "items",
        "work_total",
        "work_max",
        "atomic_ops",
        "costs",
        "thread_work",
        "thread_time",
        "contention",
        "children",
    )

    def __init__(self, name: str, kind: str, t0: float) -> None:
        self.name = name
        self.kind = kind
        self.t0 = t0
        self.t1 = t0
        #: For regions this is the scheduler's RegionStats.elapsed
        #: verbatim (so sums reproduce the clock bitwise); for phases
        #: it is ``t1 - t0`` at close.
        self.elapsed = 0.0
        self.threads = 0
        self.items = 0
        self.work_total = 0.0
        self.work_max = 0.0
        self.atomic_ops = 0
        self.costs: dict[str, float] = {}
        self.thread_work: list[float] = []
        self.thread_time: list[float] = []
        self.contention: dict[object, tuple[int, int]] = {}
        self.children: list["Span"] = []

    @property
    def imbalance(self) -> float:
        """Load-imbalance factor: max thread work / mean thread work.

        ``1.0`` is perfect balance; ``p`` means one thread did all the
        work.  Phases and empty regions report ``1.0``.
        """
        if self.kind == "phase" or self.threads <= 1:
            return 1.0
        if self.work_total <= 0:
            return 1.0
        return self.work_max * self.threads / self.work_total

    def walk(self):
        """Yield this span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-ready representation (recursive)."""
        d: dict = {
            "name": self.name,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
            "elapsed": self.elapsed,
        }
        if self.kind != "phase":
            d.update(
                threads=self.threads,
                items=self.items,
                work_total=self.work_total,
                work_max=self.work_max,
                atomic_ops=self.atomic_ops,
                costs=dict(self.costs),
                thread_work=list(self.thread_work),
                imbalance=self.imbalance,
            )
            if self.contention:
                d["contention"] = [
                    {"location": repr(loc), "ops": ops, "queued": queued}
                    for loc, (ops, queued) in sorted(
                        self.contention.items(),
                        key=lambda kv: (-kv[1][1], -kv[1][0], repr(kv[0])),
                    )
                ]
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.kind}, t0={self.t0:.0f}, "
            f"t1={self.t1:.0f}, children={len(self.children)})"
        )


class SpanTracer:
    """Pool observer recording a span tree; see the module docstring.

    Usage::

        tracer = SpanTracer()
        with tracer.watch(pool):
            run_kernel(pool, ...)
        print(flame_summary(profile_report(tracer, pool)))

    The tracer may be combined with phases opened before attachment:
    regions are filed under whatever phases are open *at region end*.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._pool = None
        self._region_t0: float | None = None

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def attach(self, pool) -> None:
        """Install this tracer as ``pool``'s region observer."""
        pool.set_observer(self)
        self._pool = pool
        # adopt phases already open on the pool so nesting stays right
        for name in pool.phase_stack:
            self.on_phase_begin(name)

    def detach(self) -> None:
        """Remove the tracer from its pool; open phase spans are closed."""
        pool = self._pool
        if pool is not None:
            while self._stack:
                self.on_phase_end(self._stack[-1].name)
            if pool.observer is self:
                pool.set_observer(None)
        self._pool = None

    def watch(self, pool):
        """Context manager attaching for the duration of a block."""
        tracer = self

        class _Watch:
            def __enter__(self):
                tracer.attach(pool)
                return tracer

            def __exit__(self, *exc):
                tracer.detach()
                return False

        return _Watch()

    # ------------------------------------------------------------------
    # observer protocol
    # ------------------------------------------------------------------

    def _open(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def on_phase_begin(self, name: str) -> None:
        span = Span(str(name), "phase", self._clock())
        self._open(span)
        self._stack.append(span)

    def on_phase_end(self, name: str) -> None:
        if not self._stack:
            return  # phase opened before attach and not adopted
        span = self._stack.pop()
        span.t1 = self._clock()
        span.elapsed = span.t1 - span.t0

    def on_region_begin(self, label: str, contexts: list[ThreadContext]) -> None:
        # read-only by design: no recording toggles, no charges — just
        # remember where the clock stood when the region opened
        if self._pool is not None:
            self._region_t0 = self._pool.clock

    def on_region_end(self, label: str, contexts: list[ThreadContext]) -> None:
        pool = self._pool
        if pool is None:
            return
        stats = pool.last_region
        if stats is None or stats.label != label:
            # accounting not closed (shouldn't happen) — skip silently
            # rather than risk perturbing the run
            return
        t0 = self._region_t0
        if t0 is None:
            t0 = pool.clock - stats.elapsed
        self._region_t0 = None
        span = Span(label, stats.kind, t0)
        span.t1 = pool.clock
        span.elapsed = stats.elapsed
        span.threads = stats.threads
        span.items = stats.items
        span.work_total = float(stats.work_total)
        span.work_max = float(stats.work_max)
        span.atomic_ops = int(stats.atomic_ops)
        span.thread_work = [float(ctx.work) for ctx in contexts]
        span.thread_time = [float(ctx.local_time) for ctx in contexts]
        cost = pool.cost_model
        if stats.kind == "serial":
            spawn = barrier = 0.0
        else:
            spawn = cost.spawn_cost * stats.threads
            barrier = cost.barrier_cost
        contention = float(stats.contention_penalty)
        span.costs = {
            "work": stats.elapsed - spawn - barrier - contention,
            "spawn": spawn,
            "barrier": barrier,
            "contention": contention,
        }
        span.contention = self._contended_locations(contexts)
        self._open(span)

    # ------------------------------------------------------------------

    @staticmethod
    def _contended_locations(
        contexts: list[ThreadContext],
    ) -> dict[object, tuple[int, int]]:
        """Per-location ``(ops, queued)`` over the region's contexts.

        Mirrors the scheduler's contention formula: ops beyond the
        busiest thread's share queue on the critical path.  Locations
        touched by a single thread never queue and are omitted.
        """
        if len(contexts) <= 1:
            return {}
        totals: dict[object, int] = {}
        maxima: dict[object, int] = {}
        hit_by: dict[object, int] = {}
        for ctx in contexts:
            for loc, ops in ctx.atomic_locations.items():
                totals[loc] = totals.get(loc, 0) + ops
                hit_by[loc] = hit_by.get(loc, 0) + 1
                if ops > maxima.get(loc, 0):
                    maxima[loc] = ops
        return {
            loc: (total, total - maxima[loc])
            for loc, total in totals.items()
            if hit_by[loc] > 1
        }

    def _clock(self) -> float:
        return self._pool.clock if self._pool is not None else 0.0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def region_spans(self) -> list[Span]:
        """Every region span, in completion order."""
        return [
            s
            for root in self.roots
            for s in root.walk()
            if s.kind != "phase"
        ]

    def total_elapsed(self) -> float:
        """Sum of region-span elapsed times, in completion order.

        Summed left-to-right over the same floats the scheduler added
        to its clock, so for a pool traced from construction this is
        *bitwise equal* to ``pool.clock`` — the invariant the selftest
        and the CI gate assert.
        """
        total = 0.0
        for span in self.region_spans():
            total += span.elapsed
        return total

    def __repr__(self) -> str:
        return (
            f"SpanTracer(roots={len(self.roots)}, "
            f"regions={len(self.region_spans())})"
        )
