"""Classic sequential disjoint-set union (Tarjan & van Leeuwen).

Union by rank with path compression; amortized O(alpha(n)) per
operation.  Serves as the reference implementation for the pivot and
wait-free variants and as the engine of the serial baselines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint sets over the universe ``0..size-1``.

    Operations mirror the paper's vocabulary (Section III-B):
    ``make_set`` happens at construction, plus :meth:`find`,
    :meth:`union`, and :meth:`same_set`.
    """

    __slots__ = ("parent", "rank", "_components")

    def __init__(self, size: int) -> None:
        self.parent = np.arange(size, dtype=np.int64)
        self.rank = np.zeros(size, dtype=np.int8)
        self._components = int(size)

    def find(self, x: int) -> int:
        """Cardinal element (root) of ``x``'s set, with path compression."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def union(self, x: int, y: int) -> int:
        """Merge the sets of ``x`` and ``y``; return the new root."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        rank = self.rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self._components -= 1
        return rx

    def same_set(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` are currently connected."""
        return self.find(x) == self.find(y)

    @property
    def num_components(self) -> int:
        """Number of disjoint sets remaining."""
        return self._components

    def component_labels(self) -> np.ndarray:
        """Array mapping each element to its root (fully compressed)."""
        return np.asarray([self.find(x) for x in range(self.parent.size)], dtype=np.int64)

    def __len__(self) -> int:
        return int(self.parent.size)
