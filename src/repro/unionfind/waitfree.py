"""Simulated wait-free union-find (Anderson & Woll, STOC'91).

The paper runs PHCD's connectivity maintenance on a wait-free DSU whose
total work is ``O(n sqrt(p) + m alpha(n) + F)`` for ``p`` threads and at
most ``F`` CAS failures.  On this substrate the *logic* of the
wait-free structure is executed sequentially (linking by index-rank via
CAS, path splitting on find) while:

* every CAS is charged to the active thread context as an atomic on the
  touched parent slot, and
* a deterministic failure process makes a configurable fraction of CAS
  attempts spuriously fail and retry — exercising and accounting the
  ``F`` term of the bound.

Pivot maintenance follows Section III-B: the winning root's pivot is
re-minimized after every successful link.  Because a failed CAS only
retries (never corrupts state), results are identical to the sequential
:class:`~repro.unionfind.pivot.PivotUnionFind` — which the test suite
asserts.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.context import (
    EV_ATOMIC_READ,
    EV_ATOMIC_WRITE,
    ThreadContext,
)
from repro.unionfind.pivot import FIND_CHARGE

__all__ = ["SimulatedWaitFreeUnionFind"]


class _DeterministicFailures:
    """Counter-based PRNG deciding which CAS attempts fail."""

    __slots__ = ("_rate_num", "_rate_den", "_state")

    def __init__(self, failure_rate: float, seed: int) -> None:
        # store the rate as a fraction of 2**32 for branch-free compare
        self._rate_num = int(max(0.0, min(1.0, failure_rate)) * (1 << 32))
        self._rate_den = 1 << 32
        self._state = (seed * 2654435761 + 1) & 0xFFFFFFFF

    def next_fails(self) -> bool:
        # xorshift32 step
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return x < self._rate_num


class SimulatedWaitFreeUnionFind:
    """Wait-free DSU with pivots, charged CAS traffic, and failure injection.

    Parameters
    ----------
    ranks:
        Vertex-rank array defining pivot order (Definition 4).
    failure_rate:
        Probability that any single CAS attempt spuriously fails and is
        retried; the retries are counted in :attr:`cas_failures` (the
        paper's ``F``).
    seed:
        Seed of the deterministic failure process.
    """

    __slots__ = (
        "parent",
        "pivot",
        "_ranks",
        "_failures",
        "cas_failures",
        "cas_attempts",
        "_name",
    )

    def __init__(
        self,
        ranks: np.ndarray,
        failure_rate: float = 0.0,
        seed: int = 0,
        name: str = "wfuf",
    ) -> None:
        size = int(np.asarray(ranks).size)
        self.parent = np.arange(size, dtype=np.int64)
        self.pivot = np.arange(size, dtype=np.int64)
        self._ranks = np.asarray(ranks, dtype=np.int64)
        self._failures = _DeterministicFailures(failure_rate, seed)
        self.cas_failures = 0
        self.cas_attempts = 0
        self._name = name

    # ------------------------------------------------------------------

    def _cas_parent(
        self, slot: int, expected: int, value: int, ctx: ThreadContext | None
    ) -> bool:
        """One CAS attempt on ``parent[slot]`` with failure injection."""
        self.cas_attempts += 1
        if ctx is not None:
            # Contention is keyed per exact slot: every successful link
            # targets a distinct loser-root, so two threads only queue
            # when they genuinely race for the same root.
            ctx.atomic(("wfuf", slot), word=("ufp", self._name, int(slot)))
        if self._failures.next_fails():
            self.cas_failures += 1
            return False
        if self.parent[slot] != expected:
            return False
        self.parent[slot] = value
        return True

    def find(self, x: int, ctx: ThreadContext | None = None) -> int:
        """Root of ``x`` with path splitting (wait-free compression).

        Charged at a flat unit — amortized O(alpha(n)) hops.
        """
        parent = self.parent
        split = False
        while parent[x] != x:
            grand = int(parent[int(parent[x])])
            # path splitting: point x at its grandparent (an atomic
            # store in Anderson-Woll; lost updates only delay
            # compression, never break the structure)
            parent[x] = grand
            x = grand
            split = True
        if ctx is not None:
            ctx.charge(FIND_CHARGE)
            ctx.record(EV_ATOMIC_READ, ("ufp", self._name, int(x)))
            if split:
                ctx.record(EV_ATOMIC_WRITE, ("ufp", self._name, int(x)))
        return int(x)

    def union(self, x: int, y: int, ctx: ThreadContext | None = None) -> int:
        """Merge by index-rank with CAS retry loop; returns the new root."""
        while True:
            rx = self.find(x, ctx)
            ry = self.find(y, ctx)
            if rx == ry:
                return rx
            # Link the higher id under the lower id (deterministic
            # index-rank linking keeps trees shallow in expectation and,
            # combined with splitting, gives the Anderson-Woll bound).
            if rx > ry:
                rx, ry = ry, rx
            if self._cas_parent(ry, ry, rx, ctx):
                # Pivot re-minimization on the winning root: a CAS-min
                # loop concurrently (load both pivots, CAS the better
                # one in).  Cost rides on the link CAS already charged;
                # the accesses are recorded as atomic events.
                px, py = int(self.pivot[rx]), int(self.pivot[ry])
                if ctx is not None:
                    ctx.record(EV_ATOMIC_READ, ("ufpv", self._name, int(rx)))
                    ctx.record(EV_ATOMIC_READ, ("ufpv", self._name, int(ry)))
                if self._ranks[py] < self._ranks[px]:
                    self.pivot[rx] = py
                    if ctx is not None:
                        ctx.record(
                            EV_ATOMIC_WRITE, ("ufpv", self._name, int(rx))
                        )
                return rx
            # CAS failed (injected or raced) -> retry from fresh roots

    def get_pivot(self, x: int, ctx: ThreadContext | None = None) -> int:
        """Pivot (lowest-rank member) of ``x``'s component."""
        root = self.find(x, ctx)
        if ctx is not None:
            ctx.record(EV_ATOMIC_READ, ("ufpv", self._name, int(root)))
        return int(self.pivot[root])

    def same_set(self, x: int, y: int, ctx: ThreadContext | None = None) -> bool:
        """Whether ``x`` and ``y`` are connected."""
        return self.find(x, ctx) == self.find(y, ctx)

    @property
    def num_components(self) -> int:
        """Number of disjoint sets (O(n) scan; intended for tests)."""
        roots = {self.find(i) for i in range(self.parent.size)}
        return len(roots)

    def __len__(self) -> int:
        return int(self.parent.size)
