"""Union-find substrate: sequential, pivot-augmented, simulated wait-free."""

from repro.unionfind.pivot import PivotUnionFind
from repro.unionfind.sequential import UnionFind
from repro.unionfind.waitfree import SimulatedWaitFreeUnionFind

__all__ = ["UnionFind", "PivotUnionFind", "SimulatedWaitFreeUnionFind"]
