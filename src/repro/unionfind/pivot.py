"""Union-find with pivot maintenance (paper Section III-B).

The *pivot* of a connected component is its minimum-vertex-rank member
(Definition 5).  :class:`PivotUnionFind` stores the pivot at each set's
cardinal element and updates it during :meth:`union` so that
``get_pivot(x)`` answers in find-time.  PHCD uses pivots both to group
k-shell vertices into tree nodes and to identify parent tree nodes.

All operations optionally charge a
:class:`~repro.parallel.context.ThreadContext` so PHCD's simulated cost
reflects real union-find traffic.

Sanitizer model
---------------
Slot accesses are reported to the race detector as *atomic* events on
word keys ``("ufp", name, slot)`` (parent links) and ``("ufpv", name,
root)`` (pivots): in a concurrent union-find every one of these is a
CAS or an atomic load, so cross-thread overlap is synchronized by
construction.  The events ride on the existing flat charges
(:data:`FIND_CHARGE`, the per-union atomic) via
:meth:`~repro.parallel.context.ThreadContext.record`, so simulated
timings are unchanged by recording.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.context import (
    EV_ATOMIC_READ,
    EV_ATOMIC_WRITE,
    ThreadContext,
)

__all__ = ["PivotUnionFind", "FIND_CHARGE"]

#: Work units charged per find: with path compression the amortized
#: traversal is O(alpha(n)) hops over hot, cached parent slots — less
#: than one full random access on average.
FIND_CHARGE = 0.3


class PivotUnionFind:
    """Disjoint sets with per-set minimum-rank pivots.

    Parameters
    ----------
    ranks:
        ``ranks[v]`` is the vertex rank of ``v`` (Definition 4); lower
        rank wins the pivot.  Pivot comparisons use these values, so
        the array must assign distinct ranks to distinct vertices.
    """

    __slots__ = ("parent", "rank", "pivot", "_ranks", "_components", "_name")

    def __init__(self, ranks: np.ndarray, name: str = "puf") -> None:
        size = int(np.asarray(ranks).size)
        self.parent = np.arange(size, dtype=np.int64)
        self.rank = np.zeros(size, dtype=np.int8)  # union-by-rank heights
        self.pivot = np.arange(size, dtype=np.int64)  # pivot at cardinal elem
        self._ranks = np.asarray(ranks, dtype=np.int64)
        self._components = size
        self._name = name

    # ------------------------------------------------------------------

    def _charge(self, ctx: ThreadContext | None, units: float) -> None:
        if ctx is not None:
            ctx.charge(units)

    def _charge_atomic(
        self, ctx: ThreadContext | None, slot: int, word: object
    ) -> None:
        if ctx is not None:
            # per exact slot: links target distinct roots (see waitfree)
            ctx.atomic(("uf", slot), word=word)

    def find(self, x: int, ctx: ThreadContext | None = None) -> int:
        """Cardinal element of ``x``'s set, with path compression.

        Charged at a flat unit: with compression the amortized hop
        count is O(alpha(n)) — the "scales stably" constant the paper
        contrasts with LCPS's dynamic arrays.
        """
        parent = self.parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        compressed = parent[x] != root
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        self._charge(ctx, FIND_CHARGE)
        if ctx is not None:
            # concurrent finds use atomic loads / CAS repointing
            ctx.record(EV_ATOMIC_READ, ("ufp", self._name, int(root)))
            if compressed:
                ctx.record(EV_ATOMIC_WRITE, ("ufp", self._name, int(root)))
        return root

    def get_pivot(self, x: int, ctx: ThreadContext | None = None) -> int:
        """Pivot (lowest-rank member) of ``x``'s component."""
        root = self.find(x, ctx)
        if ctx is not None:
            ctx.record(EV_ATOMIC_READ, ("ufpv", self._name, int(root)))
        return int(self.pivot[root])

    def union(self, x: int, y: int, ctx: ThreadContext | None = None) -> int:
        """Merge ``x``'s and ``y``'s sets, keeping the lower-rank pivot.

        Returns the new cardinal element.  The pivot write is charged
        as an atomic on the winning root's slot, mirroring the CAS a
        concurrent implementation would issue.
        """
        rx = self.find(x, ctx)
        ry = self.find(y, ctx)
        if rx == ry:
            return rx
        if self.rank[rx] < self.rank[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        if self.rank[rx] == self.rank[ry]:
            self.rank[rx] += 1
        # the link itself is the CAS on the loser root's parent slot
        self._charge_atomic(ctx, rx, word=("ufp", self._name, int(ry)))
        # pivot of the merged set = lower-vertex-rank of the two pivots;
        # concurrently this is an atomic-min (load both, CAS the winner) —
        # cost is folded into the link charge, events recorded raw.
        px, py = int(self.pivot[rx]), int(self.pivot[ry])
        if ctx is not None:
            ctx.record(EV_ATOMIC_READ, ("ufpv", self._name, int(rx)))
            ctx.record(EV_ATOMIC_READ, ("ufpv", self._name, int(ry)))
        if self._ranks[py] < self._ranks[px]:
            self.pivot[rx] = py
            if ctx is not None:
                ctx.record(EV_ATOMIC_WRITE, ("ufpv", self._name, int(rx)))
        self._components -= 1
        return rx

    def same_set(self, x: int, y: int, ctx: ThreadContext | None = None) -> bool:
        """Whether ``x`` and ``y`` are connected."""
        return self.find(x, ctx) == self.find(y, ctx)

    @property
    def num_components(self) -> int:
        """Number of disjoint sets remaining."""
        return self._components

    def __len__(self) -> int:
        return int(self.parent.size)
