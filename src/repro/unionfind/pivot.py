"""Union-find with pivot maintenance (paper Section III-B).

The *pivot* of a connected component is its minimum-vertex-rank member
(Definition 5).  :class:`PivotUnionFind` stores the pivot at each set's
cardinal element and updates it during :meth:`union` so that
``get_pivot(x)`` answers in find-time.  PHCD uses pivots both to group
k-shell vertices into tree nodes and to identify parent tree nodes.

All operations optionally charge a
:class:`~repro.parallel.context.ThreadContext` so PHCD's simulated cost
reflects real union-find traffic.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.context import ThreadContext

__all__ = ["PivotUnionFind", "FIND_CHARGE"]

#: Work units charged per find: with path compression the amortized
#: traversal is O(alpha(n)) hops over hot, cached parent slots — less
#: than one full random access on average.
FIND_CHARGE = 0.3


class PivotUnionFind:
    """Disjoint sets with per-set minimum-rank pivots.

    Parameters
    ----------
    ranks:
        ``ranks[v]`` is the vertex rank of ``v`` (Definition 4); lower
        rank wins the pivot.  Pivot comparisons use these values, so
        the array must assign distinct ranks to distinct vertices.
    """

    __slots__ = ("parent", "rank", "pivot", "_ranks", "_components")

    def __init__(self, ranks: np.ndarray) -> None:
        size = int(np.asarray(ranks).size)
        self.parent = np.arange(size, dtype=np.int64)
        self.rank = np.zeros(size, dtype=np.int8)  # union-by-rank heights
        self.pivot = np.arange(size, dtype=np.int64)  # pivot at cardinal elem
        self._ranks = np.asarray(ranks, dtype=np.int64)
        self._components = size

    # ------------------------------------------------------------------

    def _charge(self, ctx: ThreadContext | None, units: float) -> None:
        if ctx is not None:
            ctx.charge(units)

    def _charge_atomic(self, ctx: ThreadContext | None, slot: int) -> None:
        if ctx is not None:
            # per exact slot: links target distinct roots (see waitfree)
            ctx.atomic(("uf", slot))

    def find(self, x: int, ctx: ThreadContext | None = None) -> int:
        """Cardinal element of ``x``'s set, with path compression.

        Charged at a flat unit: with compression the amortized hop
        count is O(alpha(n)) — the "scales stably" constant the paper
        contrasts with LCPS's dynamic arrays.
        """
        parent = self.parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        self._charge(ctx, FIND_CHARGE)
        return root

    def get_pivot(self, x: int, ctx: ThreadContext | None = None) -> int:
        """Pivot (lowest-rank member) of ``x``'s component."""
        return int(self.pivot[self.find(x, ctx)])

    def union(self, x: int, y: int, ctx: ThreadContext | None = None) -> int:
        """Merge ``x``'s and ``y``'s sets, keeping the lower-rank pivot.

        Returns the new cardinal element.  The pivot write is charged
        as an atomic on the winning root's slot, mirroring the CAS a
        concurrent implementation would issue.
        """
        rx = self.find(x, ctx)
        ry = self.find(y, ctx)
        if rx == ry:
            return rx
        if self.rank[rx] < self.rank[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        if self.rank[rx] == self.rank[ry]:
            self.rank[rx] += 1
        self._charge_atomic(ctx, rx)
        # pivot of the merged set = lower-vertex-rank of the two pivots
        px, py = int(self.pivot[rx]), int(self.pivot[ry])
        if self._ranks[py] < self._ranks[px]:
            self.pivot[rx] = py
        self._components -= 1
        return rx

    def same_set(self, x: int, y: int, ctx: ThreadContext | None = None) -> bool:
        """Whether ``x`` and ``y`` are connected."""
        return self.find(x, ctx) == self.find(y, ctx)

    @property
    def num_components(self) -> int:
        """Number of disjoint sets remaining."""
        return self._components

    def __len__(self) -> int:
        return int(self.parent.size)
