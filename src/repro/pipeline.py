"""High-level pipelines: graph in, hierarchy / best subgraph out.

These are the entry points most users want — they wire together the
stages the paper's end-to-end experiments time (Figures 5, 7, 9):

``PKC (parallel core decomposition) -> PHCD (parallel HCD construction)
-> preprocessing -> PBKS (parallel search)``

with per-phase simulated timings, and the serial counterpart
(``BZ -> LCPS -> BKS``) for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.decomposition import core_decomposition
from repro.core.hcd import HCD
from repro.core.lcps import lcps_build_hcd
from repro.core.phcd import phcd_build_hcd
from repro.core.pkc import pkc_core_decomposition
from repro.core.vertex_rank import VertexRankResult, compute_vertex_rank
from repro.graph.graph import Graph
from repro.parallel.cost_model import CostModel
from repro.parallel.scheduler import SimulatedPool
from repro.search.bks import bks_search
from repro.search.pbks import pbks_search
from repro.search.preprocessing import preprocess_neighbor_counts
from repro.search.result import SearchResult

__all__ = ["DecompositionResult", "decompose", "search_best_core"]


@dataclass
class DecompositionResult:
    """A graph's full decomposition with per-phase simulated timings."""

    graph: Graph
    coreness: np.ndarray
    hcd: HCD
    rank_result: VertexRankResult
    pool: SimulatedPool
    #: simulated time per phase, keys 'core_decomposition' and 'hcd'
    phase_times: dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total simulated time across phases."""
        return sum(self.phase_times.values())


def decompose(
    graph: Graph,
    threads: int = 1,
    cost_model: CostModel | None = None,
    parallel: bool | None = None,
    pool: SimulatedPool | None = None,
) -> DecompositionResult:
    """Coreness + HCD of ``graph`` with per-phase timings.

    ``parallel=None`` picks the paper's pairing automatically: the
    parallel stack (PKC + PHCD) when ``threads > 1``, the serial stack
    (Batagelj-Zaversnik + LCPS) when ``threads == 1``.  Pass
    ``parallel=True`` to run the parallel algorithms on one thread
    (the paper's PHCD(1) serial-performance comparison).

    Pass ``pool`` to supply a pre-built pool — e.g. one with a SimProf
    tracer or SimTSan observer already attached; ``threads`` and
    ``cost_model`` are then ignored in favor of the pool's own.
    """
    if pool is None:
        pool = SimulatedPool(threads=threads, cost_model=cost_model)
    else:
        threads = pool.threads
    if parallel is None:
        parallel = threads > 1
    mark = pool.mark()
    with pool.phase("core-decomposition"):
        if parallel:
            coreness = pkc_core_decomposition(graph, pool)
        else:
            coreness = core_decomposition(graph, pool)
    cd_time = pool.elapsed_since(mark)

    mark = pool.mark()
    with pool.phase("hcd"):
        rank_result = compute_vertex_rank(graph, coreness, pool)
        if parallel:
            hcd = phcd_build_hcd(
                graph, coreness, pool, rank_result=rank_result
            )
        else:
            hcd = lcps_build_hcd(graph, coreness, pool)
    hcd_time = pool.elapsed_since(mark)

    return DecompositionResult(
        graph=graph,
        coreness=coreness,
        hcd=hcd,
        rank_result=rank_result,
        pool=pool,
        phase_times={"core_decomposition": cd_time, "hcd": hcd_time},
    )


def search_best_core(
    graph: Graph,
    metric: str,
    threads: int = 1,
    cost_model: CostModel | None = None,
    parallel: bool | None = None,
    pool: SimulatedPool | None = None,
    deco: DecompositionResult | None = None,
) -> tuple[SearchResult, DecompositionResult]:
    """End-to-end best-k-core search from a raw graph.

    Runs :func:`decompose`, then the matching search engine (PBKS on
    the parallel stack, BKS on the serial stack).  The search phase's
    simulated time is added to the decomposition's ``phase_times``
    under ``'search'`` (and ``'preprocessing'``).  ``pool`` behaves as
    in :func:`decompose`.

    Pass ``deco`` to reuse an existing decomposition instead of
    recomputing coreness and the HCD — the build-once/query-many path:
    the serving layer answers every query against one shared
    :class:`DecompositionResult` (a snapshot's
    :meth:`~repro.serve.snapshot.Snapshot.decomposition`) and only the
    search stage runs per call.  ``graph`` must be the decomposed
    graph; ``threads``/``cost_model`` are ignored in favor of the
    decomposition's own pool (or ``pool`` when also given).
    """
    if deco is not None:
        if deco.graph is not graph:
            raise ValueError(
                "deco was computed for a different graph object; "
                "pass the graph the decomposition was built from"
            )
        if pool is not None and pool is not deco.pool:
            deco = DecompositionResult(
                graph=deco.graph,
                coreness=deco.coreness,
                hcd=deco.hcd,
                rank_result=deco.rank_result,
                pool=pool,
                phase_times=dict(deco.phase_times),
            )
    else:
        deco = decompose(
            graph,
            threads=threads,
            cost_model=cost_model,
            parallel=parallel,
            pool=pool,
        )
    pool = deco.pool
    threads = pool.threads
    use_parallel = parallel if parallel is not None else threads > 1
    mark = pool.mark()
    if use_parallel:
        with pool.phase("preprocessing"):
            counts = preprocess_neighbor_counts(graph, deco.coreness, pool)
        deco.phase_times["preprocessing"] = pool.elapsed_since(mark)
        mark = pool.mark()
        with pool.phase("search"):
            result = pbks_search(
                graph,
                deco.coreness,
                deco.hcd,
                metric,
                pool,
                counts=counts,
                rank_result=deco.rank_result,
            )
    else:
        with pool.phase("search"):
            result = bks_search(graph, deco.coreness, deco.hcd, metric, pool)
    deco.phase_times["search"] = pool.elapsed_since(mark)
    return result, deco
