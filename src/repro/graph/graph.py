"""Compressed-sparse-row (CSR) storage for undirected simple graphs.

The paper's algorithms (LCPS, PHCD, BKS, PBKS) all operate on a static
undirected simple graph whose adjacency lists are stored in flat arrays.
:class:`Graph` mirrors that layout: vertices are dense integers
``0..n-1``; ``indptr`` and ``indices`` are numpy ``int64`` arrays where
the neighbors of vertex ``v`` occupy ``indices[indptr[v]:indptr[v+1]]``.

Graphs are immutable once constructed.  Use
:class:`repro.graph.builder.GraphBuilder` or :func:`Graph.from_edges`
to build one from an edge list; both symmetrize, deduplicate, and drop
self-loops so the result is always a *simple undirected* graph, the
setting assumed throughout the paper (Section II-A).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphBuildError, GraphFormatError

__all__ = ["Graph"]

#: Largest vertex count for which the scalar dedup key ``lo * n + hi``
#: provably fits int64 (``n**2 <= 2**63 - 1``).  Beyond it the key
#: arithmetic would silently wrap, merging distinct edges — dedup falls
#: back to row-wise ``np.unique`` instead.
_KEY_SAFE_N = 3_037_000_499


class Graph:
    """An immutable undirected simple graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; ``indptr[v]`` is the offset
        of vertex ``v``'s adjacency list inside ``indices``.
    indices:
        ``int64`` array of length ``2 * m`` holding the concatenated,
        per-vertex-sorted adjacency lists.  Every undirected edge
        ``{u, v}`` appears twice: as ``v`` in ``u``'s list and as ``u``
        in ``v``'s list.
    validate:
        When true (the default), check the CSR invariants.  Internal
        constructors that already guarantee the invariants pass false.
    """

    __slots__ = ("_indptr", "_indices", "_n", "_m")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        validate: bool = True,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphBuildError("indptr and indices must be 1-D arrays")
        if indptr.size == 0:
            raise GraphBuildError("indptr must have at least one entry")
        self._indptr = indptr
        self._indices = indices
        self._n = int(indptr.size - 1)
        self._m = int(indices.size // 2)
        if validate:
            self._check_invariants()
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        num_vertices: int | None = None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Duplicate edges, reversed duplicates, and self-loops are removed;
        the resulting graph is symmetric.  ``num_vertices`` may be passed
        to include isolated vertices beyond the largest endpoint id.
        """
        pairs = np.asarray(list(edges), dtype=np.int64)
        if pairs.size == 0:
            n = int(num_vertices or 0)
            return cls.empty(n)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise GraphFormatError("edges must be (u, v) pairs")
        if pairs.min() < 0:
            raise GraphFormatError("vertex ids must be non-negative")
        max_id = int(pairs.max())
        n = max_id + 1 if num_vertices is None else int(num_vertices)
        if n <= max_id:
            raise GraphFormatError(
                f"num_vertices={n} too small for max vertex id {max_id}"
            )
        return cls._from_edge_array(pairs, n)

    @classmethod
    def _from_edge_array(cls, pairs: np.ndarray, n: int) -> "Graph":
        """Symmetrize/dedup an ``(e, 2)`` edge array and build the CSR."""
        u = pairs[:, 0]
        v = pairs[:, 1]
        keep = u != v  # drop self-loops
        u = u[keep]
        v = v[keep]
        # Canonicalize each undirected edge as (min, max) and dedup.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        if n <= _KEY_SAFE_N:
            key = lo * np.int64(n) + hi
            _, first = np.unique(key, return_index=True)
            lo = lo[first]
            hi = hi[first]
        else:
            uniq = np.unique(np.column_stack([lo, hi]), axis=0)
            lo = uniq[:, 0]
            hi = uniq[:, 1]
        # Symmetric COO: both directions.
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst, validate=False)

    @classmethod
    def empty(cls, num_vertices: int = 0) -> "Graph":
        """Return an edgeless graph with ``num_vertices`` vertices."""
        indptr = np.zeros(int(num_vertices) + 1, dtype=np.int64)
        return cls(indptr, np.empty(0, dtype=np.int64), validate=False)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def _check_invariants(self) -> None:
        indptr, indices, n = self._indptr, self._indices, self._n
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphBuildError("indptr endpoints do not bracket indices")
        if np.any(np.diff(indptr) < 0):
            raise GraphBuildError("indptr must be non-decreasing")
        if indices.size:
            if indices.min() < 0 or indices.max() >= n:
                raise GraphBuildError("neighbor id out of range")
        for v in range(n):
            row = indices[indptr[v] : indptr[v + 1]]
            if row.size == 0:
                continue
            if np.any(row[:-1] >= row[1:]):
                raise GraphBuildError(
                    f"adjacency list of vertex {v} is not strictly sorted"
                )
            if np.any(row == v):
                raise GraphBuildError(f"self-loop at vertex {v}")
        # Symmetry: every (u, v) arc must have the reverse arc.
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        fwd = set(zip(src.tolist(), indices.tolist()))
        for a, b in fwd:
            if (b, a) not in fwd:
                raise GraphBuildError(f"missing reverse arc for ({a}, {b})")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._m

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row-pointer array of length ``n + 1``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR column array of length ``2 m``."""
        return self._indices

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices as an ``int64`` array."""
        return np.diff(self._indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of vertex ``v`` (a read-only view)."""
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def average_degree(self) -> float:
        """Average degree ``2m / n`` (0.0 for the empty graph)."""
        if self._n == 0:
            return 0.0
        return 2.0 * self._m / self._n

    # ------------------------------------------------------------------
    # iteration / edges
    # ------------------------------------------------------------------

    def vertices(self) -> range:
        """Range over all vertex ids."""
        return range(self._n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        indptr, indices = self._indptr, self._indices
        for u in range(self._n):
            row = indices[indptr[u] : indptr[u + 1]]
            for v in row[row > u]:
                yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u < v`` rows."""
        n = self._n
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        dst = self._indices
        keep = src < dst
        return np.column_stack([src[keep], dst[keep]])

    # ------------------------------------------------------------------
    # subgraphs
    # ------------------------------------------------------------------

    def induced_subgraph(
        self, vertices: Sequence[int] | np.ndarray
    ) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is
        the vertex of ``self`` that became vertex ``i`` of the subgraph.
        """
        vs = np.unique(np.asarray(vertices, dtype=np.int64))
        if vs.size and (vs[0] < 0 or vs[-1] >= self._n):
            raise GraphFormatError("subgraph vertex id out of range")
        remap = np.full(self._n, -1, dtype=np.int64)
        remap[vs] = np.arange(vs.size, dtype=np.int64)
        sub_edges = []
        for u in vs:
            row = self.neighbors(int(u))
            for v in row[row > u]:
                if remap[v] >= 0:
                    sub_edges.append((remap[u], remap[v]))
        sub = Graph.from_edges(sub_edges, num_vertices=vs.size)
        return sub, vs

    def connected_components(self) -> np.ndarray:
        """Label each vertex with a component id (``int64`` array).

        Component ids are assigned in order of the lowest vertex id they
        contain, so the labelling is deterministic.
        """
        labels = np.full(self._n, -1, dtype=np.int64)
        next_label = 0
        stack: list[int] = []
        for start in range(self._n):
            if labels[start] != -1:
                continue
            labels[start] = next_label
            stack.append(start)
            while stack:
                u = stack.pop()
                for v in self.neighbors(u):
                    if labels[v] == -1:
                        labels[v] = next_label
                        stack.append(int(v))
            next_label += 1
        return labels

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return bool(
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # graphs are immutable, allow set membership
        return hash((self._n, self._m, self._indices.tobytes()[:64]))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"
