"""Deterministic synthetic graph generators.

The paper evaluates on ten real-world graphs up to 3.7 billion edges
(Table II).  Those inputs are not redistributable nor tractable here, so
:mod:`repro.analysis.datasets` builds scaled-down stand-ins from the
generator families in this module:

* :func:`erdos_renyi` — homogeneous random graphs (flat shell profile);
* :func:`barabasi_albert` — preferential attachment (social-network-like
  heavy-tailed degrees, deep cores);
* :func:`powerlaw_cluster` — BA plus triangle closure (high clustering,
  exercises the type-B motif counters);
* :func:`rmat` — Kronecker-style skewed graphs (web-crawl-like);
* :func:`planted_partition` — community structure (many k-core tree
  nodes, wide hierarchies);
* :func:`core_chain` — a composed graph whose exact HCD is known in
  closed form; the construction returns the expected hierarchy so tests
  can verify LCPS/PHCD output against ground truth.

Every generator takes an integer ``seed`` and is fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphBuildError
from repro.graph.graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_cluster",
    "rmat",
    "planted_partition",
    "complete_graph",
    "cycle_graph",
    "star_graph",
    "core_chain",
    "CoreChainSpec",
    "CoreChainResult",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.PCG64(seed))


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) random graph via geometric edge skipping (O(m) expected)."""
    if not 0.0 <= p <= 1.0:
        raise GraphBuildError(f"edge probability {p} outside [0, 1]")
    if n < 0:
        raise GraphBuildError("n must be non-negative")
    if n < 2 or p == 0.0:
        return Graph.empty(n)
    rng = _rng(seed)
    total_pairs = n * (n - 1) // 2
    if p == 1.0:
        picks = np.arange(total_pairs, dtype=np.int64)
    else:
        # Skip-sampling: successive gaps are geometric(p).
        expected = int(total_pairs * p)
        picks_list: list[int] = []
        pos = -1
        log1mp = np.log1p(-p)
        gaps = rng.random(max(16, expected + 4 * int(np.sqrt(expected + 1)) + 16))
        gi = 0
        while True:
            if gi >= gaps.size:
                gaps = rng.random(gaps.size)
                gi = 0
            gap = int(np.log(gaps[gi]) / log1mp) + 1
            gi += 1
            pos += gap
            if pos >= total_pairs:
                break
            picks_list.append(pos)
        picks = np.asarray(picks_list, dtype=np.int64)
    # Decode linear pair index -> (u, v) with u < v.
    u = (
        n
        - 2
        - np.floor(
            np.sqrt(-8.0 * picks + 4.0 * n * (n - 1) - 7.0) / 2.0 - 0.5
        ).astype(np.int64)
    )
    v = picks + u + 1 - (u * (2 * n - u - 1)) // 2
    return Graph.from_edges(np.column_stack([u, v]), num_vertices=n)


def barabasi_albert(n: int, m_per_vertex: int, seed: int = 0) -> Graph:
    """Preferential-attachment graph: each new vertex links to ``m`` targets.

    Uses the repeated-endpoints trick: sampling uniformly from the edge
    endpoint list is sampling proportionally to degree.
    """
    m = int(m_per_vertex)
    if m < 1:
        raise GraphBuildError("m_per_vertex must be >= 1")
    if n < m + 1:
        raise GraphBuildError(f"need n > m_per_vertex, got n={n}, m={m}")
    rng = _rng(seed)
    # Start from a star on m+1 vertices so every early vertex has degree >= 1.
    endpoints: list[int] = []
    edges: list[tuple[int, int]] = []
    for v in range(1, m + 1):
        edges.append((0, v))
        endpoints.extend((0, v))
    for v in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = endpoints[int(rng.integers(0, len(endpoints)))]
            targets.add(pick)
        for t in targets:
            edges.append((v, t))
            endpoints.extend((v, t))
    return Graph.from_edges(edges, num_vertices=n)


def powerlaw_cluster(
    n: int, m_per_vertex: int, triangle_prob: float, seed: int = 0
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert`, but after each preferential link a
    triangle-closing link to a neighbor of the last target is added with
    probability ``triangle_prob``.
    """
    m = int(m_per_vertex)
    if m < 1:
        raise GraphBuildError("m_per_vertex must be >= 1")
    if n < m + 1:
        raise GraphBuildError(f"need n > m_per_vertex, got n={n}, m={m}")
    if not 0.0 <= triangle_prob <= 1.0:
        raise GraphBuildError("triangle_prob outside [0, 1]")
    rng = _rng(seed)
    endpoints: list[int] = []
    edges: list[tuple[int, int]] = []
    adj: list[set[int]] = [set() for _ in range(n)]

    def connect(a: int, b: int) -> None:
        edges.append((a, b))
        endpoints.extend((a, b))
        adj[a].add(b)
        adj[b].add(a)

    for v in range(1, m + 1):
        connect(0, v)
    for v in range(m + 1, n):
        added = 0
        last_target = -1
        mine = adj[v]
        while added < m:
            close = (
                last_target >= 0
                and adj[last_target]
                and rng.random() < triangle_prob
            )
            if close:
                candidates = [w for w in adj[last_target] if w != v and w not in mine]
                if candidates:
                    pick = candidates[int(rng.integers(0, len(candidates)))]
                    connect(v, pick)
                    added += 1
                    last_target = pick
                    continue
            pick = endpoints[int(rng.integers(0, len(endpoints)))]
            if pick != v and pick not in mine:
                connect(v, pick)
                added += 1
                last_target = pick
    return Graph.from_edges(edges, num_vertices=n)


def rmat(
    scale: int,
    edge_factor: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> Graph:
    """R-MAT / Kronecker-style graph with ``2**scale`` vertices.

    Generates ``edge_factor * 2**scale`` directed samples, symmetrized
    and deduplicated — the skewed, web-crawl-like family (high kmax,
    hub-dominated shells).
    """
    if scale < 1 or scale > 26:
        raise GraphBuildError("scale must be in [1, 26]")
    d = 1.0 - a - b - c
    if d < -1e-9 or min(a, b, c) < 0:
        raise GraphBuildError("R-MAT probabilities must be a valid distribution")
    rng = _rng(seed)
    n = 1 << scale
    num_samples = int(edge_factor) * n
    u = np.zeros(num_samples, dtype=np.int64)
    v = np.zeros(num_samples, dtype=np.int64)
    for level in range(scale):
        r1 = rng.random(num_samples)
        r2 = rng.random(num_samples)
        bit_u = (r1 >= a + b).astype(np.int64)
        # Quadrant-conditional second bit (noise-free variant).
        p_right = np.where(bit_u == 0, b / max(a + b, 1e-12), d / max(c + d, 1e-12))
        bit_v = (r2 < p_right).astype(np.int64)
        u = (u << 1) | bit_u
        v = (v << 1) | bit_v
    return Graph.from_edges(np.column_stack([u, v]), num_vertices=n)


def planted_partition(
    num_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> Graph:
    """Planted-partition graph: dense blocks, sparse inter-block edges."""
    if num_communities < 1 or community_size < 1:
        raise GraphBuildError("need at least one community of size >= 1")
    n = num_communities * community_size
    rng = _rng(seed)
    edges: list[tuple[int, int]] = []
    for ci in range(num_communities):
        base = ci * community_size
        block = erdos_renyi(community_size, p_in, seed=int(rng.integers(1 << 30)))
        for u, v in block.edges():
            edges.append((base + u, base + v))
    # inter-community: sample bernoulli per cross pair, vectorized per block pair
    for ci in range(num_communities):
        for cj in range(ci + 1, num_communities):
            mask = rng.random((community_size, community_size)) < p_out
            us, vs = np.nonzero(mask)
            for u, v in zip(us, vs):
                edges.append((ci * community_size + int(u), cj * community_size + int(v)))
    return Graph.from_edges(edges, num_vertices=n)


def complete_graph(n: int) -> Graph:
    """K_n — every vertex has coreness n-1; HCD is a single tree node."""
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return Graph.from_edges(edges, num_vertices=n)


def cycle_graph(n: int) -> Graph:
    """C_n — every vertex has coreness 2 (for n >= 3)."""
    if n < 3:
        raise GraphBuildError("cycle needs n >= 3")
    edges = [(v, (v + 1) % n) for v in range(n)]
    return Graph.from_edges(edges, num_vertices=n)


def star_graph(leaves: int) -> Graph:
    """K_{1,leaves} — all vertices have coreness 1."""
    edges = [(0, v) for v in range(1, leaves + 1)]
    return Graph.from_edges(edges, num_vertices=leaves + 1)


# ----------------------------------------------------------------------
# core_chain: graphs with a known, closed-form HCD
# ----------------------------------------------------------------------


@dataclass
class CoreChainSpec:
    """Specification of one branch of a :func:`core_chain` graph.

    ``corenesses`` lists the target coreness of each nested level from
    the innermost outwards; each level is realized as a clique of size
    ``coreness + 1`` whose vertices are then wired to the inner level so
    their degree stays at the clique level.
    """

    corenesses: list[int] = field(default_factory=lambda: [4, 3, 2])


@dataclass
class CoreChainResult:
    """A generated core-chain graph plus its ground-truth decomposition."""

    graph: Graph
    coreness: np.ndarray
    #: list of (k, frozenset of vertices) for every k-core tree node
    tree_nodes: list[tuple[int, frozenset[int]]]
    #: parent index into ``tree_nodes`` for every tree node (-1 for roots)
    parents: list[int]


def core_chain(
    branches: list[list[int]] | None = None,
    seed: int = 0,
) -> CoreChainResult:
    """Build a graph whose hierarchical core decomposition is known.

    Each branch is a strictly decreasing list of corenesses, e.g.
    ``[5, 3, 2]``: the innermost 5-core is a clique K_6; around it a
    ring of vertices with exactly 3 neighbors at the inner level plus
    enough peers; and so on.  Branches share the outermost level when
    their outermost coreness matches, producing genuine tree structure
    (multiple children under one node), like Figure 1 of the paper.

    The returned :class:`CoreChainResult` carries the exact expected
    coreness of every vertex and the expected tree nodes with their
    parent links, enabling oracle tests for LCPS and PHCD.
    """
    if branches is None:
        branches = [[4, 3, 2], [3, 2]]
    for branch in branches:
        if not branch:
            raise GraphBuildError("each branch needs at least one level")
        if any(k <= 0 for k in branch):
            raise GraphBuildError("corenesses must be positive")
        if any(a <= b for a, b in zip(branch, branch[1:])):
            raise GraphBuildError("branch corenesses must strictly decrease")

    edges: list[tuple[int, int]] = []
    coreness: list[int] = []
    tree_nodes: list[tuple[int, frozenset[int]]] = []
    parents: list[int] = []
    next_id = 0

    def new_vertices(count: int, k: int) -> list[int]:
        nonlocal next_id
        ids = list(range(next_id, next_id + count))
        next_id += count
        coreness.extend([k] * count)
        return ids

    def clique(vertices: list[int]) -> None:
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                edges.append((u, v))

    # Outermost level first: if several branches end with the same
    # outermost coreness, they hang off one shared outer tree node.
    outer_k = min(branch[-1] for branch in branches)
    shells_by_branch: list[list[tuple[int, list[int]]]] = []
    for branch in branches:
        shells: list[tuple[int, list[int]]] = []
        inner_vertices: list[int] = []
        for k in branch:  # innermost -> outermost within the branch
            if not inner_vertices:
                verts = new_vertices(k + 1, k)
                clique(verts)
            else:
                # A (k+1)-clique attached to the inner level by a single
                # edge: the attached vertex has degree k+1 but its k
                # clique-peers have degree exactly k, so peeling at level
                # k+1 strips the whole clique — every clique vertex has
                # coreness exactly k, and the k-core is clique + inner.
                verts = new_vertices(k + 1, k)
                clique(verts)
                edges.append((verts[0], inner_vertices[0]))
            shells.append((k, verts))
            inner_vertices = verts
        shells_by_branch.append(shells)

    # Stitch branches together at the outermost level if they share it;
    # otherwise connect the outermost shells with a path of outer_k-deg
    # filler so the whole graph is one connected component.
    outermost = [shells[-1] for shells in shells_by_branch]
    if len(outermost) > 1:
        bridge = new_vertices(max(2, outer_k + 1), outer_k)
        clique(bridge)
        for bi, (_, verts) in enumerate(outermost):
            edges.append((bridge[bi % len(bridge)], verts[0]))

    graph = Graph.from_edges(edges, num_vertices=next_id)

    # Ground truth is easiest to state via a reference decomposition of
    # the constructed graph itself (the construction keeps coreness at
    # the design values; we verify and then emit tree nodes from the
    # actual structure to avoid off-by-one wiring corner cases).
    from repro.core.decomposition import core_decomposition  # local import: avoid cycle

    actual = core_decomposition(graph)
    tree_nodes, parents = _hcd_ground_truth(graph, actual)
    return CoreChainResult(
        graph=graph,
        coreness=actual,
        tree_nodes=tree_nodes,
        parents=parents,
    )


def _hcd_ground_truth(
    graph: Graph, coreness: np.ndarray
) -> tuple[list[tuple[int, frozenset[int]]], list[int]]:
    """Direct, definitional HCD: for each k, find connected k-cores by BFS.

    Quadratic-ish and only suitable for small test graphs; serves as the
    independent oracle for LCPS and PHCD.
    """
    n = graph.num_vertices
    kmax = int(coreness.max()) if n else 0
    nodes: list[tuple[int, frozenset[int]]] = []
    node_of_core: dict[tuple[int, int], int] = {}  # (k, min vertex of k-core) -> node idx
    parents: list[int] = []
    # For parent lookup: remember for each vertex and k, which k-core contains it.
    core_id_at_level: list[dict[int, int]] = [dict() for _ in range(kmax + 2)]

    for k in range(kmax, -1, -1):
        members = np.flatnonzero(coreness >= k)
        member_set = set(int(v) for v in members)
        seen: set[int] = set()
        for start in sorted(member_set):
            if start in seen:
                continue
            # BFS over vertices with coreness >= k
            comp = [start]
            seen.add(start)
            queue = [start]
            while queue:
                u = queue.pop()
                for w in graph.neighbors(u):
                    w = int(w)
                    if w in member_set and w not in seen:
                        seen.add(w)
                        comp.append(w)
                        queue.append(w)
            rep = min(comp)
            for v in comp:
                core_id_at_level[k][v] = rep
            shell = frozenset(v for v in comp if coreness[v] == k)
            if shell:
                node_idx = len(nodes)
                nodes.append((k, shell))
                node_of_core[(k, rep)] = node_idx
                parents.append(-1)

    # Parent links: the parent of tree node (k, core rep) is the tree node of
    # the smallest k' < k whose k'-core contains the core and owns a shell.
    for idx, (k, shell) in enumerate(nodes):
        probe = next(iter(shell))
        for k2 in range(k - 1, -1, -1):
            rep2 = core_id_at_level[k2].get(probe)
            if rep2 is not None and (k2, rep2) in node_of_core:
                parents[idx] = node_of_core[(k2, rep2)]
                break
    return nodes, parents
