"""Whole-graph structural properties used by baselines and tests.

These helpers provide *independent* reference implementations of the
quantities that the paper's algorithms compute incrementally (triangle
counts, triplet counts, boundary edges, degeneracy ordering), so the
test suite can cross-check the optimized code paths against direct
definitions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "triangle_count",
    "triplet_count",
    "boundary_edge_count",
    "internal_edge_count",
    "degeneracy_ordering",
    "degeneracy",
    "subgraph_primary_values",
]


def triangle_count(graph: Graph) -> int:
    """Total number of triangles, counted once each.

    Uses the standard degree-ordered direction trick: orient each edge
    from the lower-degree endpoint to the higher (ties by id) and
    intersect out-neighborhoods — the same O(m^1.5) bound Algorithm 5
    relies on.
    """
    n = graph.num_vertices
    deg = graph.degrees()
    # out-neighbors under the (degree, id) order
    out: list[list[int]] = [[] for _ in range(n)]
    for u, v in graph.edges():
        if (deg[u], u) < (deg[v], v):
            out[u].append(v)
        else:
            out[v].append(u)
    out_sets = [set(row) for row in out]
    total = 0
    for u in range(n):
        row = out[u]
        for i, v in enumerate(row):
            sv = out_sets[v]
            for w in row[i + 1 :]:
                if w in sv or (v in out_sets[w]):
                    total += 1
    return total


def triplet_count(graph: Graph) -> int:
    """Number of connected triplets (paths of length 2), centered count.

    Each vertex with degree d contributes C(d, 2) open-or-closed
    triplets centered at it.
    """
    deg = graph.degrees().astype(np.int64)
    return int(np.sum(deg * (deg - 1) // 2))


def internal_edge_count(graph: Graph, members: Sequence[int]) -> int:
    """Number of edges with both endpoints in ``members``."""
    inside = np.zeros(graph.num_vertices, dtype=bool)
    inside[np.asarray(list(members), dtype=np.int64)] = True
    count = 0
    for v in np.flatnonzero(inside):
        row = graph.neighbors(int(v))
        count += int(np.count_nonzero(inside[row] & (row > v)))
    return count


def boundary_edge_count(graph: Graph, members: Sequence[int]) -> int:
    """Number of edges with exactly one endpoint in ``members``."""
    inside = np.zeros(graph.num_vertices, dtype=bool)
    inside[np.asarray(list(members), dtype=np.int64)] = True
    count = 0
    for v in np.flatnonzero(inside):
        row = graph.neighbors(int(v))
        count += int(np.count_nonzero(~inside[row]))
    return count


def degeneracy_ordering(graph: Graph) -> list[int]:
    """Smallest-last vertex ordering (Matula–Beck).

    Repeatedly removes a minimum-degree vertex; the reverse of the
    removal order is the degeneracy ordering.  Returned in removal
    order, which is also the order core decomposition peels vertices.
    """
    n = graph.num_vertices
    deg = graph.degrees().astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    max_deg = int(deg.max()) if n else 0
    bins: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        bins[int(deg[v])].append(v)
    order: list[int] = []
    cursor = 0
    while len(order) < n:
        while cursor <= max_deg and not bins[cursor]:
            cursor += 1
        v = bins[cursor].pop()
        if removed[v] or deg[v] != cursor:
            continue  # stale bin entry
        removed[v] = True
        order.append(v)
        for u in graph.neighbors(v):
            if not removed[u]:
                deg[u] -= 1
                bins[int(deg[u])].append(int(u))
        cursor = max(0, cursor - 1)
    return order


def degeneracy(graph: Graph) -> int:
    """Graph degeneracy = max over the smallest-last order of current degree.

    Equals ``kmax``, the largest k for which the k-core is non-empty.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    deg = graph.degrees().astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    best = 0
    for _ in range(n):
        alive = np.flatnonzero(~removed)
        v = alive[int(np.argmin(deg[alive]))]
        best = max(best, int(deg[v]))
        removed[v] = True
        for u in graph.neighbors(int(v)):
            if not removed[u]:
                deg[u] -= 1
    return best


def subgraph_primary_values(
    graph: Graph, members: Sequence[int]
) -> dict[str, int]:
    """Direct (slow, definitional) primary values of the induced subgraph.

    Returns the paper's five primary values (Section II-D): ``n``, ``m``,
    ``b`` (boundary edges), ``triangles``, ``triplets``.  Used as the
    oracle against which BKS/PBKS incremental counting is verified.
    """
    members = list(members)
    sub, _ = graph.induced_subgraph(members)
    return {
        "n": sub.num_vertices,
        "m": sub.num_edges,
        "b": boundary_edge_count(graph, members),
        "triangles": triangle_count(sub),
        "triplets": triplet_count(sub),
    }
