"""Checked CSR views for untrusted graph inputs.

:class:`~repro.graph.graph.Graph` validates its invariants with a
Python-level loop that is thorough but (a) quadratic-ish on large
inputs and (b) raises the *internal* :class:`~repro.errors.GraphBuildError`,
which callers reasonably treat as "library bug", not "bad file".
Untrusted inputs — npz files from disk, METIS/edge-list parses, any
CSR arrays that crossed a serialization boundary — deserve a
different contract: **every** structural property is verified with
vectorized numpy checks, and violations raise
:class:`~repro.errors.GraphFormatError` with a message naming the
first offending vertex/offset, so a corrupted file is a clean input
error instead of an out-of-range index detonating deep inside a
kernel (or worse, a negative index silently wrapping around).

:func:`validate_csr` is the checker; :class:`CheckedGraph` is a
:class:`Graph` subclass that runs it on construction.  The io load
paths (:func:`repro.graph.io.load_npz`) route through
:class:`CheckedGraph`, so ``Graph(..., validate=False)`` remains an
internal-only fast path for arrays built by code that proves the
invariants by construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["CheckedGraph", "validate_csr"]

#: ``indices`` may not exceed this many entries: ``2 * m`` must fit an
#: int64 and leave headroom for offset arithmetic (``indptr`` sums).
MAX_ARCS = np.iinfo(np.int64).max // 4


def validate_csr(indptr: np.ndarray, indices: np.ndarray) -> None:
    """Validate untrusted CSR arrays; raise :class:`GraphFormatError`.

    Checks, all vectorized:

    1. shape/dtype sanity — 1-D, integer-kind, castable to int64
       without overflow, arc count within :data:`MAX_ARCS`;
    2. ``indptr`` brackets ``indices`` (``indptr[0] == 0``,
       ``indptr[-1] == len(indices)``) and is non-decreasing;
    3. neighbor ids within ``[0, n)``;
    4. adjacency rows strictly sorted (sorted + duplicate-free);
    5. no self-loops;
    6. symmetry — every arc ``(u, v)`` has its reverse ``(v, u)``,
       which also forces the arc count to be even (``2 m``).
    """
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    if indptr.ndim != 1 or indices.ndim != 1:
        raise GraphFormatError("indptr and indices must be 1-D arrays")
    for label, arr in (("indptr", indptr), ("indices", indices)):
        if arr.dtype.kind not in "iu":
            raise GraphFormatError(
                f"{label} must be an integer array, got dtype {arr.dtype}"
            )
        if arr.dtype.kind == "u" and arr.size and int(arr.max()) > np.iinfo(np.int64).max:
            raise GraphFormatError(f"{label} values overflow int64")
    if indptr.size == 0:
        raise GraphFormatError("indptr must have at least one entry")
    if indices.size > MAX_ARCS:
        raise GraphFormatError(
            f"arc count {indices.size} exceeds the supported maximum {MAX_ARCS}"
        )
    indptr = indptr.astype(np.int64, copy=False)
    indices = indices.astype(np.int64, copy=False)
    n = indptr.size - 1

    if indptr[0] != 0:
        raise GraphFormatError(f"indptr[0] must be 0, got {int(indptr[0])}")
    if indptr[-1] != indices.size:
        raise GraphFormatError(
            f"indptr[-1]={int(indptr[-1])} does not match "
            f"len(indices)={indices.size}"
        )
    row_sizes = np.diff(indptr)
    bad = np.flatnonzero(row_sizes < 0)
    if bad.size:
        v = int(bad[0])
        raise GraphFormatError(
            f"indptr decreases at vertex {v}: "
            f"{int(indptr[v])} -> {int(indptr[v + 1])}"
        )
    if indices.size:
        lo, hi = int(indices.min()), int(indices.max())
        if lo < 0 or hi >= n:
            offender = lo if lo < 0 else hi
            at = int(np.flatnonzero(indices == offender)[0])
            raise GraphFormatError(
                f"neighbor id {offender} at indices[{at}] outside [0, {n})"
            )

    # Row owner of every arc: src[k] = vertex whose list holds indices[k].
    src = np.repeat(np.arange(n, dtype=np.int64), row_sizes)

    if indices.size:
        loops = np.flatnonzero(indices == src)
        if loops.size:
            raise GraphFormatError(
                f"self-loop at vertex {int(src[loops[0]])}"
            )
        # Strict per-row sortedness: within a row every consecutive
        # pair must increase; pairs straddling a row boundary are
        # exempt.  (Strict also rules out duplicate neighbors.)
        if indices.size > 1:
            same_row = src[1:] == src[:-1]
            nonincreasing = indices[1:] <= indices[:-1]
            bad = np.flatnonzero(same_row & nonincreasing)
            if bad.size:
                v = int(src[bad[0]])
                raise GraphFormatError(
                    f"adjacency list of vertex {v} is not strictly "
                    f"sorted (offset {int(bad[0])})"
                )
        # Symmetry: the multiset of (src, dst) arcs must equal the
        # multiset of (dst, src) arcs.  Sort both and compare.
        fwd = np.lexsort((indices, src))
        rev = np.lexsort((src, indices))
        if not (
            np.array_equal(src[fwd], indices[rev])
            and np.array_equal(indices[fwd], src[rev])
        ):
            mismatch = np.flatnonzero(
                (src[fwd] != indices[rev]) | (indices[fwd] != src[rev])
            )
            k = int(fwd[mismatch[0]])
            raise GraphFormatError(
                f"graph is not symmetric: arc ({int(src[k])}, "
                f"{int(indices[k])}) has no reverse arc"
            )
    if indices.size % 2 != 0:
        raise GraphFormatError(
            f"arc count {indices.size} is odd; a symmetric simple graph "
            f"stores every edge twice"
        )


class CheckedGraph(Graph):
    """A :class:`Graph` whose CSR arrays were fully validated.

    Constructing one from untrusted ``indptr``/``indices`` runs
    :func:`validate_csr` (raising :class:`GraphFormatError` on any
    structural violation) and only then builds the immutable graph —
    skipping the slower Python-loop invariant checker, which the
    vectorized pass subsumes.

    The resulting object *is* a :class:`Graph` (``isinstance`` holds),
    so it flows through every kernel unchanged; the subclass only
    exists to mark provenance and carry the checked constructor.
    """

    __slots__ = ()

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        validate_csr(indptr, indices)
        super().__init__(indptr, indices, validate=False)

    @classmethod
    def wrap(cls, graph: Graph) -> "CheckedGraph":
        """Re-validate an existing graph's arrays as untrusted input."""
        return cls(graph.indptr, graph.indices)

    def __repr__(self) -> str:
        return f"CheckedGraph(n={self.num_vertices}, m={self.num_edges})"
