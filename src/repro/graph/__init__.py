"""Graph substrate: CSR storage, builders, I/O, generators, properties."""

from repro.graph.builder import GraphBuilder
from repro.graph.checked import CheckedGraph, validate_csr
from repro.graph.graph import Graph
from repro.graph.io import (
    load_npz,
    read_edge_list,
    read_metis,
    save_npz,
    write_edge_list,
    write_metis,
)

__all__ = [
    "Graph",
    "CheckedGraph",
    "validate_csr",
    "GraphBuilder",
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "load_npz",
    "save_npz",
]
