"""Incremental construction of :class:`~repro.graph.graph.Graph` objects.

:class:`GraphBuilder` accumulates edges from any source (parsers,
generators, tests) and produces an immutable CSR graph.  It mirrors the
preprocessing the paper applies to its datasets: directed inputs are
symmetrized, parallel edges are collapsed, and self-loops are dropped.

The builder also supports *relabeling*: sparse or string vertex names
can be mapped onto the dense ``0..n-1`` id space the algorithms expect.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.errors import GraphBuildError
from repro.graph.graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulate edges and build an immutable :class:`Graph`.

    Parameters
    ----------
    relabel:
        When true, endpoints may be arbitrary hashable values (strings,
        sparse ints); they are assigned dense ids in first-seen order and
        the mapping is available as :attr:`labels` after :meth:`build`.
        When false (the default), endpoints must already be non-negative
        integers and are used as-is.
    """

    def __init__(self, relabel: bool = False) -> None:
        self._relabel = relabel
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._label_to_id: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []
        self._min_vertices = 0
        self._built = False

    # ------------------------------------------------------------------

    def _intern(self, label: Hashable) -> int:
        vid = self._label_to_id.get(label)
        if vid is None:
            vid = len(self._labels)
            self._label_to_id[label] = vid
            self._labels.append(label)
        return vid

    def add_edge(self, u: Hashable, v: Hashable) -> "GraphBuilder":
        """Record the undirected edge ``{u, v}``.  Returns ``self``."""
        if self._built:
            raise GraphBuildError("builder already consumed by build()")
        if self._relabel:
            ui, vi = self._intern(u), self._intern(v)
        else:
            ui, vi = int(u), int(v)
            if ui < 0 or vi < 0:
                raise GraphBuildError("vertex ids must be non-negative")
        self._sources.append(ui)
        self._targets.append(vi)
        return self

    def add_edges(self, edges: Iterable[tuple[Hashable, Hashable]]) -> "GraphBuilder":
        """Record every edge in ``edges``.  Returns ``self``."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def add_vertex(self, v: Hashable) -> "GraphBuilder":
        """Ensure ``v`` exists even if it ends up isolated."""
        if self._built:
            raise GraphBuildError("builder already consumed by build()")
        if self._relabel:
            self._intern(v)
        else:
            self._min_vertices = max(self._min_vertices, int(v) + 1)
        return self

    @property
    def num_recorded_edges(self) -> int:
        """Number of ``add_edge`` calls so far (before dedup)."""
        return len(self._sources)

    # ------------------------------------------------------------------

    def build(self, num_vertices: int | None = None) -> Graph:
        """Produce the immutable graph.

        ``num_vertices`` may force a larger vertex universe than the
        largest endpoint (ignored when relabeling, where the universe is
        exactly the set of seen labels).
        """
        if self._built:
            raise GraphBuildError("builder already consumed by build()")
        self._built = True
        if self._relabel:
            n: int | None = len(self._labels)
        else:
            n = num_vertices
            if n is None and self._min_vertices:
                max_seen = max(
                    max(self._sources, default=-1),
                    max(self._targets, default=-1),
                )
                n = max(self._min_vertices, max_seen + 1)
        pairs = list(zip(self._sources, self._targets))
        return Graph.from_edges(pairs, num_vertices=n)

    @property
    def labels(self) -> list[Hashable]:
        """Dense-id → original-label mapping (relabel mode only)."""
        return list(self._labels)

    @property
    def label_to_id(self) -> dict[Hashable, int]:
        """Original-label → dense-id mapping (relabel mode only)."""
        return dict(self._label_to_id)
