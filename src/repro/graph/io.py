"""Reading and writing graphs in the formats the paper's datasets use.

Three formats are supported:

* **edge list** — whitespace-separated ``u v`` pairs, one per line, with
  ``#`` / ``%`` comment lines (the SNAP and LAW distribution format);
* **METIS-style adjacency** — a header line ``n m`` followed by one
   1-indexed adjacency line per vertex;
* **npz binary** — the CSR arrays saved via :func:`numpy.savez_compressed`
  for fast reloads of generated stand-in datasets.

All readers return immutable :class:`~repro.graph.graph.Graph` objects;
directed inputs are symmetrized, matching the paper's preprocessing
("all directed datasets are symmetrized in the experiments").
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.checked import CheckedGraph
from repro.graph.graph import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "load_npz",
    "save_npz",
    "parse_edge_lines",
]

_COMMENT_PREFIXES = ("#", "%", "//")


def parse_edge_lines(lines: Iterable[str]) -> Iterator[tuple[int, int]]:
    """Yield ``(u, v)`` pairs from edge-list text lines.

    Comment lines and blank lines are skipped.  Lines with more than two
    fields (e.g. weighted edge lists) use the first two fields.
    """
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        fields = line.split()
        if len(fields) < 2:
            raise GraphFormatError(f"line {lineno}: expected 'u v', got {line!r}")
        try:
            yield int(fields[0]), int(fields[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {lineno}: non-integer endpoint in {line!r}"
            ) from exc


def read_edge_list(
    path: str | os.PathLike[str],
    relabel: bool = False,
) -> Graph:
    """Read a whitespace edge list from ``path``.

    With ``relabel=True`` sparse vertex ids are compacted to ``0..n-1``
    (first-seen order); otherwise ids are used verbatim and the vertex
    count is ``max id + 1``.
    """
    builder = GraphBuilder(relabel=relabel)
    with open(path, "r", encoding="utf-8") as handle:
        for u, v in parse_edge_lines(handle):
            builder.add_edge(u, v)
    return builder.build()


def write_edge_list(graph: Graph, path: str | os.PathLike[str]) -> None:
    """Write ``graph`` as a ``u v`` edge list (each edge once, u < v)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# undirected simple graph: n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_metis(path: str | os.PathLike[str]) -> Graph:
    """Read a METIS-style adjacency file (1-indexed).

    Comment lines are skipped, but *blank* lines are kept: a blank
    adjacency line is a degree-0 vertex (exactly what
    :func:`write_metis` emits for one), so stripping blanks would
    lose isolated vertices and shift every adjacency row after them.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [
            line.strip()
            for line in handle
            if not line.strip().startswith(_COMMENT_PREFIXES)
        ]
    # blanks before the header carry no meaning; adjacency blanks do
    while lines and not lines[0]:
        lines.pop(0)
    if not lines:
        raise GraphFormatError("empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphFormatError(f"bad METIS header: {lines[0]!r}")
    try:
        n, m = int(header[0]), int(header[1])
    except ValueError as exc:
        raise GraphFormatError(f"non-integer METIS header: {lines[0]!r}") from exc
    if n < 0 or m < 0:
        raise GraphFormatError(f"negative counts in METIS header: {lines[0]!r}")
    adjacency = lines[1:]
    # tolerate trailing blank lines beyond the declared vertex count
    while len(adjacency) > n and not adjacency[-1]:
        adjacency.pop()
    if len(adjacency) != n:
        raise GraphFormatError(
            f"METIS header declares {n} vertices, file has {len(adjacency)} adjacency lines"
        )
    builder = GraphBuilder()
    for v in range(n):
        builder.add_vertex(v)
    for v, line in enumerate(adjacency):
        for token in line.split():
            try:
                u = int(token) - 1
            except ValueError as exc:
                raise GraphFormatError(
                    f"vertex {v}: non-integer neighbor {token!r}"
                ) from exc
            if u < 0 or u >= n:
                raise GraphFormatError(f"vertex {v}: neighbor {token} out of range")
            builder.add_edge(v, u)
    graph = builder.build(num_vertices=n)
    if graph.num_edges != m:
        raise GraphFormatError(
            f"METIS header declares {m} edges, adjacency encodes {graph.num_edges}"
        )
    return graph


def write_metis(graph: Graph, path: str | os.PathLike[str]) -> None:
    """Write ``graph`` as a METIS-style adjacency file (1-indexed)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in graph.vertices():
            row = " ".join(str(int(u) + 1) for u in graph.neighbors(v))
            handle.write(row + "\n")


def save_npz(graph: Graph, path: str | os.PathLike[str]) -> None:
    """Persist the CSR arrays with :func:`numpy.savez_compressed`."""
    np.savez_compressed(
        Path(path),
        indptr=graph.indptr,
        indices=graph.indices,
    )


def load_npz(path: str | os.PathLike[str]) -> Graph:
    """Load a graph previously stored with :func:`save_npz`.

    The file is *untrusted input*: the CSR arrays are fully validated
    through :class:`~repro.graph.checked.CheckedGraph`, so a corrupted
    or hand-edited npz raises :class:`~repro.errors.GraphFormatError`
    instead of smuggling out-of-range indices into the kernels.
    """
    with np.load(Path(path)) as data:
        if "indptr" not in data or "indices" not in data:
            raise GraphFormatError("npz file missing 'indptr'/'indices' arrays")
        return CheckedGraph(data["indptr"], data["indices"])
