"""Parallel truss-hierarchy construction — the PHCD framework on edges.

Paper Section VI: "Inspired by the framework of PHCD ... we can propose
parallel hierarchy construction algorithms ... for other cohesive
subgraph models with a hierarchical decomposition, such as k-truss".
This module carries that out.

The k-trusses (for triangle connectivity, the standard community
notion of Huang et al.) nest exactly like k-cores: every triangle-
connected k-truss component is contained in one (k-1)-truss component.
:func:`truss_hierarchy` therefore reruns Algorithm 2 with edges in the
role of vertices:

* *shells* are trussness classes, added in descending ``k``;
* *adjacency* is triangle co-membership: edge ``e`` connects to the two
  companion edges of every triangle it closes whose trussness is >= k;
* a pivot union-find over edge ids groups shell edges into tree nodes
  and finds parents, exactly as in PHCD's four steps.

The result is a :class:`TrussHierarchy` — the HCD's shape with edge
sets in the nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HierarchyError
from repro.graph.graph import Graph
from repro.parallel.atomics import AtomicArray, AtomicSet
from repro.parallel.scheduler import SimulatedPool
from repro.truss.decomposition import EdgeIndex, truss_decomposition
from repro.sanitizer.memcheck import san_empty
from repro.unionfind.pivot import PivotUnionFind

__all__ = ["TrussHierarchy", "truss_hierarchy"]


@dataclass
class TrussHierarchy:
    """Forest over triangle-connected k-truss components.

    Mirrors the HCD index: ``node_trussness[i]`` is node i's k,
    ``parent[i]`` its parent (-1 for roots), ``eid_node[e]`` the node
    holding edge ``e``, and :meth:`edges_of` / :meth:`reconstruct_truss`
    recover node contents / whole components.
    """

    index: EdgeIndex
    node_trussness: np.ndarray
    parent: np.ndarray
    eid_node: np.ndarray
    _node_edges: list[list[int]]
    children: list[list[int]] = field(init=False)

    def __post_init__(self) -> None:
        self.children = [[] for _ in range(self.num_nodes)]
        for node in range(self.num_nodes):
            pa = int(self.parent[node])
            if pa >= 0:
                self.children[pa].append(node)

    @property
    def num_nodes(self) -> int:
        return int(self.node_trussness.size)

    def edges_of(self, node: int) -> np.ndarray:
        """Edge ids stored directly in ``node``."""
        return np.asarray(self._node_edges[node], dtype=np.int64)

    def subtree_nodes(self, node: int) -> list[int]:
        out = []
        stack = [node]
        while stack:
            cur = stack.pop()
            out.append(cur)
            stack.extend(self.children[cur])
        return out

    def reconstruct_truss(self, node: int) -> np.ndarray:
        """All edge ids of the node's original k-truss component."""
        parts = [self._node_edges[i] for i in self.subtree_nodes(node)]
        flat = [e for part in parts for e in part]
        return np.asarray(sorted(flat), dtype=np.int64)

    def canonical_form(self):
        """Order-independent content description (for equality tests)."""
        entries = []
        for node in range(self.num_nodes):
            edges = tuple(sorted(self._node_edges[node]))
            pa = int(self.parent[node])
            pkey = (
                (-1, ())
                if pa < 0
                else (
                    int(self.node_trussness[pa]),
                    tuple(sorted(self._node_edges[pa])),
                )
            )
            entries.append(
                (int(self.node_trussness[node]), edges, pkey[0], pkey[1])
            )
        entries.sort()
        return entries

    def validate(self, graph: Graph, trussness: np.ndarray) -> None:
        """Structural checks: partition, monotone parents, connectivity."""
        m = len(self.index)
        seen = np.zeros(m, dtype=bool)
        for node in range(self.num_nodes):
            k = int(self.node_trussness[node])
            for e in self._node_edges[node]:
                if seen[e]:
                    raise HierarchyError(f"edge {e} in two truss nodes")
                seen[e] = True
                if int(trussness[e]) != k:
                    raise HierarchyError(
                        f"edge {e} trussness {trussness[e]} in k={k} node"
                    )
                if int(self.eid_node[e]) != node:
                    raise HierarchyError(f"eid_node({e}) != {node}")
            pa = int(self.parent[node])
            if pa >= 0 and int(self.node_trussness[pa]) >= k:
                raise HierarchyError("parent trussness must be smaller")
        if m and not bool(seen.all()):
            missing = int(np.flatnonzero(~seen)[0])
            raise HierarchyError(f"edge {missing} missing from hierarchy")


def _triangle_companions(
    graph: Graph, index: EdgeIndex, eid: int
) -> list[tuple[int, int]]:
    """For edge ``eid``, the companion edge id pairs of its triangles."""
    u, v = (int(x) for x in index.edges[eid])
    out = []
    for w in np.intersect1d(
        graph.neighbors(u), graph.neighbors(v), assume_unique=True
    ):
        w = int(w)
        e1 = index.get(u, w)
        e2 = index.get(v, w)
        if e1 is not None and e2 is not None:
            out.append((e1, e2))
    return out


def truss_hierarchy(
    graph: Graph,
    trussness: np.ndarray | None = None,
    pool: SimulatedPool | None = None,
    index: EdgeIndex | None = None,
) -> TrussHierarchy:
    """Build the truss hierarchy with the PHCD paradigm on edges.

    ``trussness`` may be precomputed (else it is computed here, charged
    to the pool).  Isolated-from-triangles edges (trussness 2) form the
    outermost components by plain shared-endpoint connectivity? — no:
    triangle connectivity leaves each triangle-free edge its own
    2-truss class; following Huang et al. we keep *triangle*
    connectivity for k >= 3 and group the 2-level by the edges'
    subgraph connectivity so the forest has one root per connected
    chunk of the graph.
    """
    pool = pool or SimulatedPool(threads=1)
    index = index or EdgeIndex(graph)
    m = len(index)
    if trussness is None:
        trussness = truss_decomposition(graph, index, pool)
    trussness = np.asarray(trussness, dtype=np.int64)
    if m == 0:
        return TrussHierarchy(
            index=index,
            node_trussness=np.empty(0, dtype=np.int64),
            parent=np.empty(0, dtype=np.int64),
            eid_node=np.empty(0, dtype=np.int64),
            _node_edges=[],
        )

    tmax = int(trussness.max())
    # edge rank: (trussness, id) — Definition 4 transplanted to edges
    order = np.lexsort((np.arange(m), trussness))
    rank = san_empty(m, np.int64, name="truss_rank")
    rank[order] = np.arange(m)
    shells: list[list[int]] = [[] for _ in range(tmax + 1)]
    for eid in range(m):
        shells[int(trussness[eid])].append(eid)

    uf = PivotUnionFind(rank, name="truss_uf")
    eid_node = np.full(m, -1, dtype=np.int64)
    eid_arr = AtomicArray.from_array(eid_node, name="truss_eid")
    node_trussness: list[int] = []
    node_parent: list[int] = []
    node_edges: list[list[int]] = []

    def new_node(k: int) -> int:
        node_trussness.append(k)
        node_parent.append(-1)
        node_edges.append([])
        return len(node_trussness) - 1

    for k in range(tmax, 1, -1):
        shell = shells[k]
        if not shell:
            continue
        kpc_pivot = AtomicSet(name=f"truss_kpc_{k}")

        # Step 1: capture pivots of higher-truss components this shell
        # will absorb.  A triangle only carries k-truss connectivity
        # when all three of its edges have trussness >= k; any companion
        # strictly above k then belongs to an existing component.
        def collect(eid: int, ctx) -> None:
            ctx.charge(1)
            for e1, e2 in _triangle_companions(graph, index, eid):
                ctx.charge(1)
                if trussness[e1] >= k and trussness[e2] >= k:
                    for companion in (e1, e2):
                        if trussness[companion] > k:
                            kpc_pivot.add_if_absent(
                                ctx, uf.get_pivot(companion, ctx)
                            )

        pool.parallel_for(shell, collect, label=f"truss:step1_k{k}")

        # At the outermost level the forest switches to plain subgraph
        # connectivity, so higher components reachable through a shared
        # endpoint (no triangle) must be captured too.
        if k == 2:
            def collect_endpoints(eid: int, ctx) -> None:
                u, v = (int(x) for x in index.edges[eid])
                for x in (u, v):
                    for w in graph.neighbors(x):
                        other = index.get(x, int(w))
                        ctx.charge(1)
                        if other is not None and trussness[other] > 2:
                            kpc_pivot.add_if_absent(
                                ctx, uf.get_pivot(other, ctx)
                            )

            pool.parallel_for(
                shell, collect_endpoints, label="truss:step1b_k2"
            )

        # Step 2: union along triangles wholly inside the k-truss.
        def connect(eid: int, ctx) -> None:
            ctx.charge(1)
            for e1, e2 in _triangle_companions(graph, index, eid):
                ctx.charge(1)
                if trussness[e1] >= k and trussness[e2] >= k:
                    uf.union(eid, e1, ctx)
                    uf.union(eid, e2, ctx)

        pool.parallel_for(shell, connect, label=f"truss:step2_k{k}")

        # 2-level special case: also connect by shared endpoints so the
        # outermost components match graph connectivity.
        if k == 2:
            def connect_endpoints(eid: int, ctx) -> None:
                u, v = (int(x) for x in index.edges[eid])
                for x in (u, v):
                    for w in graph.neighbors(x):
                        other = index.get(x, int(w))
                        ctx.charge(1)
                        if other is not None:
                            uf.union(eid, other, ctx)

            pool.parallel_for(
                shell, connect_endpoints, label="truss:step2b_k2"
            )

        # Step 3: group shell edges into nodes by pivot.
        def group(eid: int, ctx) -> None:
            pvt = uf.get_pivot(eid, ctx)
            node = int(eid_arr.load(ctx, pvt))
            if node < 0:
                # create-node race between shell edges of one
                # component: allocate, publish via CAS, loser re-reads
                fresh = new_node(k)
                ctx.atomic(("truss_nodes",), contended=False)
                if eid_arr.compare_and_swap(ctx, pvt, -1, fresh):
                    node = fresh
                else:
                    node = int(eid_arr.load(ctx, pvt))
            if eid != pvt:
                # each shell edge owns its eid_node slot this round
                ctx.write(("truss_eid", int(eid)), 0.0)
                eid_node[eid] = node
            ctx.atomic(("truss_members", node), contended=False)
            node_edges[node].append(eid)  # sani: ok - tail append, charged atomic above

        pool.parallel_for(shell, group, label=f"truss:step3_k{k}")

        # Step 4: attach captured children under the new nodes.
        def attach(old_pivot: int, ctx) -> None:
            pvt = uf.get_pivot(old_pivot, ctx)
            child = int(eid_arr.load(ctx, old_pivot))
            parent = int(eid_arr.load(ctx, pvt))
            ctx.write(("truss_parent", child), 0.0)
            node_parent[child] = parent  # sani: ok - distinct old pivots, distinct children

        pool.parallel_for(list(kpc_pivot), attach, label=f"truss:step4_k{k}")

    return TrussHierarchy(
        index=index,
        node_trussness=np.asarray(node_trussness, dtype=np.int64),
        parent=np.asarray(node_parent, dtype=np.int64),
        eid_node=eid_node,
        _node_edges=node_edges,
    )
