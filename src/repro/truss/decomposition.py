"""Truss decomposition: per-edge trussness via support peeling.

The *k-truss* of a graph is the maximal subgraph in which every edge
closes at least ``k - 2`` triangles; the *trussness* ``t(e)`` of an
edge is the largest ``k`` whose k-truss contains it.  The paper's
Section VI observes that the PHCD/PBKS framework extends to cohesive
models with hierarchical decompositions, naming k-truss first — this
module provides the decomposition those extensions build on.

The algorithm is the standard bin-sort peeling over edge supports
(Wang & Cheng, PVLDB'12): repeatedly remove a minimum-support edge,
assign it trussness ``support + 2``, and decrement the support of the
two companion edges of every triangle it closed.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["EdgeIndex", "edge_supports", "truss_decomposition"]


class EdgeIndex:
    """Dense ids for a graph's undirected edges with O(1) lookup."""

    __slots__ = ("edges", "_lookup")

    def __init__(self, graph: Graph) -> None:
        self.edges = graph.edge_array()  # (m, 2) with u < v rows
        self._lookup = {
            (int(u), int(v)): i for i, (u, v) in enumerate(self.edges)
        }

    def id_of(self, u: int, v: int) -> int:
        """Edge id of ``{u, v}``; KeyError if absent."""
        return self._lookup[(u, v) if u < v else (v, u)]

    def get(self, u: int, v: int) -> int | None:
        """Edge id of ``{u, v}`` or None."""
        return self._lookup.get((u, v) if u < v else (v, u))

    def __len__(self) -> int:
        return int(self.edges.shape[0])


def _common_neighbors(graph: Graph, u: int, v: int) -> np.ndarray:
    """Sorted common neighbors of ``u`` and ``v``."""
    return np.intersect1d(
        graph.neighbors(u), graph.neighbors(v), assume_unique=True
    )


def edge_supports(graph: Graph, index: EdgeIndex | None = None) -> np.ndarray:
    """Number of triangles through every edge (by edge id)."""
    index = index or EdgeIndex(graph)
    supports = np.zeros(len(index), dtype=np.int64)
    for eid, (u, v) in enumerate(index.edges):
        supports[eid] = _common_neighbors(graph, int(u), int(v)).size
    return supports


def truss_decomposition(
    graph: Graph,
    index: EdgeIndex | None = None,
    pool: SimulatedPool | None = None,
) -> np.ndarray:
    """Trussness of every edge (by edge id of :class:`EdgeIndex`).

    Work is O(sum over edges of min-degree) for the support pass plus
    the peeling; charged to ``pool`` when given.
    """
    index = index or EdgeIndex(graph)
    m = len(index)
    trussness = np.zeros(m, dtype=np.int64)
    if m == 0:
        return trussness
    support = edge_supports(graph, index)
    charged = int(support.sum()) + m

    alive = np.ones(m, dtype=bool)
    # bucket queue over supports with lazy entries
    buckets: list[list[int]] = [[] for _ in range(int(support.max()) + 1)]
    for eid in range(m):
        buckets[int(support[eid])].append(eid)
    cursor = 0
    removed = 0
    while removed < m:
        while cursor < len(buckets) and not buckets[cursor]:
            cursor += 1
        eid = buckets[cursor].pop()
        if not alive[eid] or support[eid] != cursor:
            continue  # stale entry
        alive[eid] = False
        removed += 1
        trussness[eid] = cursor + 2
        u, v = (int(x) for x in index.edges[eid])
        for w in _common_neighbors(graph, u, v):
            w = int(w)
            e1 = index.get(u, w)
            e2 = index.get(v, w)
            charged += 2
            if e1 is None or e2 is None or not alive[e1] or not alive[e2]:
                continue
            for other in (e1, e2):
                if support[other] > cursor:
                    support[other] -= 1
                    buckets[int(support[other])].append(other)
        cursor = max(0, cursor - 1)
    if pool is not None:
        with pool.phase("truss:peel"):
            with pool.serial_region("truss_decomposition") as ctx:
                ctx.charge(charged)
    return trussness
