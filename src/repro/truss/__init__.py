"""k-truss decomposition, hierarchy, and search (Section VI extension)."""

from repro.truss.decomposition import EdgeIndex, edge_supports, truss_decomposition
from repro.truss.hierarchy import TrussHierarchy, truss_hierarchy
from repro.truss.search import TRUSS_METRICS, TrussSearchResult, best_truss

__all__ = [
    "EdgeIndex",
    "edge_supports",
    "truss_decomposition",
    "TrussHierarchy",
    "truss_hierarchy",
    "best_truss",
    "TrussSearchResult",
    "TRUSS_METRICS",
]
