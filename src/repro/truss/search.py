"""Best-truss search — the PBKS paradigm on the truss hierarchy.

Section VI of the paper: the subgraph-search framework transfers to
other hierarchical models.  On the truss hierarchy, *edges* and
*triangles* are the additive motifs — each edge belongs to exactly one
tree node, and each triangle is charged to the node of its
minimum-(trussness, id)-rank edge, so one vertex-centric counting pass
plus a bottom-up accumulation yields, for every triangle-connected
k-truss community, its edge count and triangle count, exactly as PBKS
does for k-cores.

Shipped truss metrics (over ``(m, triangles)``):

* ``average_support`` — ``3 * triangles / m``, the mean number of
  triangles per edge (the truss analogue of average degree);
* ``triangle_density`` — triangles per edge pair upper bound.

Vertex-based quantities are *not* additive over the truss forest
(communities share vertices), so they are deliberately absent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.atomics import AtomicArray
from repro.parallel.scheduler import SimulatedPool
from repro.search.result import best_finite_index
from repro.truss.decomposition import EdgeIndex
from repro.truss.hierarchy import TrussHierarchy, _triangle_companions

__all__ = ["TrussSearchResult", "best_truss", "TRUSS_METRICS"]


def _average_support(m: float, triangles: float) -> float:
    return 3.0 * triangles / m if m > 0 else 0.0


def _triangle_density(m: float, triangles: float) -> float:
    if m < 2:
        return 0.0
    return triangles / (m * (m - 1) / 2.0)


#: metric name -> score(m, triangles); higher is better
TRUSS_METRICS: dict[str, Callable[[float, float], float]] = {
    "average_support": _average_support,
    "triangle_density": _triangle_density,
}


@dataclass
class TrussSearchResult:
    """Outcome of a best-truss search."""

    metric_name: str
    best_node: int
    best_k: int
    best_score: float
    scores: np.ndarray
    values: np.ndarray  # (|T|, 2): accumulated (m, triangles) per node
    hierarchy: TrussHierarchy

    def best_edges(self) -> np.ndarray:
        """Edge ids of the winning community."""
        if self.best_node < 0:
            return np.empty(0, dtype=np.int64)
        return self.hierarchy.reconstruct_truss(self.best_node)

    def best_vertices(self) -> np.ndarray:
        """Distinct endpoints of the winning community's edges."""
        edges = self.hierarchy.index.edges[self.best_edges()]
        return np.unique(edges.reshape(-1))


def best_truss(
    graph: Graph,
    hierarchy: TrussHierarchy,
    trussness: np.ndarray,
    pool: SimulatedPool,
    metric: str = "average_support",
) -> TrussSearchResult:
    """Find the best-scoring k-truss community on ``pool``."""
    if metric not in TRUSS_METRICS:
        raise KeyError(
            f"unknown truss metric {metric!r}; known: {sorted(TRUSS_METRICS)}"
        )
    score_fn = TRUSS_METRICS[metric]
    index: EdgeIndex = hierarchy.index
    t = hierarchy.num_nodes
    trussness = np.asarray(trussness, dtype=np.int64)
    if t == 0:
        return TrussSearchResult(
            metric_name=metric,
            best_node=-1,
            best_k=-1,
            best_score=float("-inf"),
            scores=np.empty(0),
            values=np.empty((0, 2)),
            hierarchy=hierarchy,
        )

    contributions = AtomicArray(t * 2, dtype=np.float64, name="truss_vals")

    def contribute(eid: int, ctx) -> None:
        node = int(hierarchy.eid_node[eid])
        ctx.charge(1)
        contributions.add(ctx, node * 2, 1.0)  # one edge
        # triangles charged to the min-(trussness, id)-rank edge
        for e1, e2 in _triangle_companions(graph, index, eid):
            ctx.charge(1)
            rank = (int(trussness[eid]), eid)
            if rank < (int(trussness[e1]), e1) and rank < (
                int(trussness[e2]),
                e2,
            ):
                contributions.add(ctx, node * 2 + 1, 1.0)

    with pool.phase("truss-search:count"):
        pool.parallel_for(
            range(len(index)),
            contribute,
            label="truss_search:count",
            chunking="dynamic",
            grain=16,
        )

    # bottom-up accumulation over the truss forest
    values = contributions.data.reshape(t, 2).copy()
    order = sorted(
        range(t), key=lambda node: -int(hierarchy.node_trussness[node])
    )
    for node in order:
        pa = int(hierarchy.parent[node])
        if pa >= 0:
            values[pa] += values[node]
    with pool.phase("truss-search:accumulate"):
        with pool.serial_region("truss_search:accumulate") as ctx:
            ctx.charge(t)

    scores = np.array(
        [score_fn(float(m_), float(tri)) for m_, tri in values]
    )
    best = best_finite_index(scores)
    if best < 0:
        return TrussSearchResult(
            metric_name=metric,
            best_node=-1,
            best_k=-1,
            best_score=float("-inf"),
            scores=scores,
            values=values,
            hierarchy=hierarchy,
        )
    return TrussSearchResult(
        metric_name=metric,
        best_node=best,
        best_k=int(hierarchy.node_trussness[best]),
        best_score=float(scores[best]),
        scores=scores,
        values=values,
        hierarchy=hierarchy,
    )
