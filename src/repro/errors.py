"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses distinguish the
broad failure domains: malformed input graphs, malformed or inconsistent
hierarchy indexes, misuse of the simulated-parallel scheduler, and
unknown names looked up in registries (metrics, datasets).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """An input edge list or graph file is malformed or inconsistent."""


class GraphBuildError(ReproError):
    """A graph could not be assembled from the provided edges."""


class HierarchyError(ReproError):
    """An HCD index is malformed, inconsistent, or failed validation."""


class SchedulerError(ReproError):
    """The simulated-parallel scheduler was misused (e.g. nested regions)."""


class UnknownMetricError(ReproError, KeyError):
    """A community scoring metric name is not present in the registry."""


class UnknownDatasetError(ReproError, KeyError):
    """A dataset stand-in name is not present in the registry."""


class SearchError(ReproError):
    """A subgraph-search computation received invalid input."""


class ServeError(ReproError):
    """The HCDServe serving layer was misused or hit an invalid state."""


class SnapshotError(ServeError):
    """A serving snapshot bundle is missing, corrupted, or incompatible.

    Raised by the snapshot store (:mod:`repro.serve.snapshot`) whenever
    an on-disk index bundle cannot be trusted: a truncated or unreadable
    array file, a manifest/checksum mismatch, or a format-version skew.
    The message always names the offending file or manifest field so a
    corrupted bundle is a clean input error, never a bare numpy/zipfile
    exception escaping from deep inside the loader.
    """


class WorkloadError(ServeError):
    """A serving workload trace or query request is malformed.

    The message names the offending request field (kind, metric, k, r,
    weights, at) and, for trace files, the line it came from.
    """


class MemcheckError(ReproError):
    """The SimCheck memory sanitizer was misused (bad dtype, bad name)."""


class NumericSoundnessError(ReproError):
    """A narrowing cast or accumulation would overflow or lose values.

    Raised by :func:`repro.sanitizer.memcheck.checked_cast` /
    :func:`~repro.sanitizer.memcheck.checked_sum` when no
    :class:`~repro.sanitizer.memcheck.MemChecker` is active to collect
    the finding instead.
    """
