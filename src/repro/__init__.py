"""repro — parallel hierarchical core decomposition and subgraph search.

A from-scratch Python implementation of

    Chu, Zhang, Zhang, Lin, Zhang:
    "Hierarchical Core Decomposition in Parallel: From Construction to
    Subgraph Search", ICDE 2022

including the paper's contributions (PHCD, PBKS), every baseline it
compares against (Batagelj-Zaversnik, PKC, ParK, LCPS, BKS, CoreApp,
RC / divide-and-conquer), and the substrates they run on (CSR graphs,
pivot/wait-free union-find, a deterministic simulated-multicore
scheduler used to reproduce the scalability experiments).

Quick start::

    from repro import Graph, decompose, search_best_core

    graph = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
    deco = decompose(graph, threads=4)
    print(deco.hcd)                       # the hierarchy
    result, _ = search_best_core(graph, "average_degree", threads=4)
    print(result.best_k, result.best_members())
"""

from repro.core.decomposition import core_decomposition
from repro.core.hcd import HCD
from repro.core.lcps import lcps_build_hcd
from repro.core.phcd import phcd_build_hcd
from repro.core.pkc import pkc_core_decomposition
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.parallel.cost_model import CostModel
from repro.parallel.scheduler import SimulatedPool
from repro.pipeline import DecompositionResult, decompose, search_best_core
from repro.dynamic.maintenance import DynamicGraph
from repro.ecc.decomposition import ecc_decomposition, k_edge_connected_components
from repro.nucleus.decomposition import nucleus_decomposition
from repro.nucleus.hierarchy import NucleusHierarchy, nucleus_hierarchy
from repro.search.bks import bks_search
from repro.search.anchoring import anchored_k_core, greedy_anchors
from repro.search.influential import InfluentialCommunityIndex
from repro.search.metrics import get_metric, metric_names, register_metric
from repro.search.pbks import pbks_search
from repro.search.result import SearchResult
from repro.truss.decomposition import truss_decomposition
from repro.truss.hierarchy import TrussHierarchy, truss_hierarchy

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "HCD",
    "SimulatedPool",
    "CostModel",
    "core_decomposition",
    "pkc_core_decomposition",
    "lcps_build_hcd",
    "phcd_build_hcd",
    "bks_search",
    "pbks_search",
    "SearchResult",
    "register_metric",
    "get_metric",
    "metric_names",
    "decompose",
    "search_best_core",
    "DecompositionResult",
    "DynamicGraph",
    "InfluentialCommunityIndex",
    "ecc_decomposition",
    "k_edge_connected_components",
    "nucleus_decomposition",
    "nucleus_hierarchy",
    "NucleusHierarchy",
    "anchored_k_core",
    "greedy_anchors",
    "truss_decomposition",
    "truss_hierarchy",
    "TrussHierarchy",
    "__version__",
]
