"""Anchored k-core — engagement reinforcement (paper context [14]).

The engagement application the paper motivates HCD with: coreness
models user engagement, and "anchoring" a handful of users (keeping
them engaged regardless of their own degree) can retain whole cascades
of followers in the k-core (Bhawalkar et al.; Linghu et al., SIGMOD'20
— the paper's [14]).

* :func:`anchored_k_core` peels the graph at level ``k`` with the
  anchor set exempt from the degree constraint, returning the anchored
  k-core members;
* :func:`greedy_anchors` spends a budget of ``b`` anchors greedily,
  each round picking the vertex whose anchoring retains the most
  followers.  The problem is NP-hard (and hard to approximate), so the
  greedy heuristic is the standard practical algorithm; candidates are
  pruned to vertices adjacent to the current anchored core, the only
  ones that can create followers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["AnchoringResult", "anchored_k_core", "greedy_anchors"]


def anchored_k_core(
    graph: Graph,
    k: int,
    anchors: set[int] | list[int] | None = None,
    pool: SimulatedPool | None = None,
) -> np.ndarray:
    """Members of the anchored k-core (anchors are exempt from peeling).

    With no anchors this is exactly the k-core set; every anchor is
    always a member.  O(m) peeling, charged to ``pool`` when given.
    """
    anchor_set = set(int(a) for a in (anchors or ()))
    n = graph.num_vertices
    alive = np.ones(n, dtype=bool)
    degree = graph.degrees().astype(np.int64).copy()
    charged = n
    # iterative peeling with a worklist
    stack = [
        v
        for v in range(n)
        if degree[v] < k and v not in anchor_set
    ]
    for v in stack:
        alive[v] = False
    while stack:
        v = stack.pop()
        charged += 1
        for u in graph.neighbors(v):
            u = int(u)
            charged += 1
            if not alive[u]:
                continue
            degree[u] -= 1
            if degree[u] < k and u not in anchor_set:
                alive[u] = False
                stack.append(u)
    if pool is not None:
        with pool.serial_region(f"anchored_core_k{k}") as ctx:
            ctx.charge(charged)
    # anchors with no surviving connection can still be isolated members
    return np.flatnonzero(alive)


@dataclass
class AnchoringResult:
    """Outcome of the greedy anchor selection."""

    k: int
    anchors: list[int]
    members: np.ndarray
    #: followers gained by each successive anchor
    gains: list[int]

    @property
    def total_gain(self) -> int:
        """Extra members versus the plain k-core."""
        return int(sum(self.gains))


def greedy_anchors(
    graph: Graph,
    k: int,
    budget: int,
    pool: SimulatedPool | None = None,
) -> AnchoringResult:
    """Choose up to ``budget`` anchors greedily to grow the k-core.

    Each round evaluates every non-member, non-isolated candidate and
    anchors the one retaining the most followers; the loop stops early
    once no candidate yields a positive gain.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    anchors: list[int] = []
    gains: list[int] = []
    base = anchored_k_core(graph, k, anchors, pool)
    base_size = int(base.size)
    degrees = graph.degrees()
    for _ in range(budget):
        member = np.zeros(graph.num_vertices, dtype=bool)
        member[base] = True
        candidates = {
            v
            for v in range(graph.num_vertices)
            if not member[v] and degrees[v] > 0
        }
        best_gain = 0
        best_vertex = -1
        best_core = base
        for cand in sorted(candidates):
            core = anchored_k_core(graph, k, anchors + [cand], pool)
            gain = int(core.size) - base_size
            if gain > best_gain or (gain == best_gain and best_vertex < 0):
                best_gain = gain
                best_vertex = cand
                best_core = core
        if best_vertex < 0 or best_gain <= 0:
            break
        anchors.append(best_vertex)
        gains.append(best_gain)
        base = best_core
        base_size = int(base.size)
    return AnchoringResult(k=k, anchors=anchors, members=base, gains=gains)
