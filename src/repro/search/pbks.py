"""PBKS — parallel subgraph search on the HCD (paper Section IV).

PBKS finds the k-core with the highest community score in three
vertex-centric stages (Algorithm 3):

1. every vertex computes, in parallel, its *contribution* to the
   primary values of its tree node — each motif (vertex, edge,
   boundary edge, triangle, triplet) is counted exactly once, at the
   motif member with the lowest vertex rank;
2. a parallel bottom-up tree accumulation turns per-node contributions
   into the primary values of each node's original k-core;
3. every node's score is evaluated in parallel and the argmax returned.

Type-A metrics (Algorithm 4) need only the O(n) vertex/edge/boundary
contributions, answered from the shared O(m) preprocessing
(:mod:`repro.search.preprocessing`).  Type-B metrics (Algorithm 5)
additionally count triangles in O(m^1.5) via degree-ordered edge
direction and triplets in O(m) via the paper's two-case center count.
Both are work-efficient: the step counts asymptotically match the best
sequential complexity.
"""

from __future__ import annotations

import numpy as np

from repro.core.hcd import HCD
from repro.core.vertex_rank import VertexRankResult
from repro.graph.graph import Graph
from repro.parallel.accumulate import tree_accumulate
from repro.parallel.atomics import AtomicArray
from repro.parallel.scheduler import SimulatedPool
from repro.search.metrics import Metric, get_metric
from repro.search.preprocessing import (
    NeighborCorenessCounts,
    preprocess_neighbor_counts,
)
from repro.search.primary_values import GraphTotals, PrimaryValues
from repro.search.result import SearchResult, best_finite_index
from repro.sanitizer.memcheck import san_empty

__all__ = [
    "pbks_search",
    "pbks_node_values",
    "pbks_type_a_contributions",
    "pbks_type_b_contributions",
]

# column order of the values matrix
_N, _M, _B, _TRI, _TRIP = range(5)


def pbks_type_a_contributions(
    graph: Graph,
    coreness: np.ndarray,
    hcd: HCD,
    counts: NeighborCorenessCounts,
    pool: SimulatedPool,
    out: AtomicArray,
    num_nodes: int,
) -> None:
    """Algorithm 4 lines 2-9: per-vertex (n, m, b) contributions.

    Each vertex adds, to its tree node: one vertex; ``gt + eq/2`` new
    edges (equal-coreness edges are shared between both endpoints);
    and ``lt - gt`` boundary edges (``lt`` edges leave the new core,
    ``gt`` former boundary edges become internal).
    """
    tid = hcd.tid

    def contribute(v: int, ctx) -> None:
        ctx.charge(3)
        node = int(tid[v])
        gt = int(counts.gt[v])
        eq = int(counts.eq[v])
        lt = int(counts.lt[v])
        out.add(ctx, node * 5 + _N, 1.0)
        out.add(ctx, node * 5 + _M, gt + 0.5 * eq)
        out.add(ctx, node * 5 + _B, lt - gt)

    pool.parallel_for(
        range(graph.num_vertices),
        contribute,
        label="pbks:typeA",
        chunking="dynamic",
        grain=32,
    )


def pbks_type_b_contributions(
    graph: Graph,
    coreness: np.ndarray,
    hcd: HCD,
    counts: NeighborCorenessCounts,
    ranks: np.ndarray,
    pool: SimulatedPool,
    out: AtomicArray,
    num_nodes: int,
) -> None:
    """Algorithm 5 lines 2-15: triangle and triplet contributions.

    Triangles: each edge is directed from its lower-(degree, id)
    endpoint; wedges closed through the directed edge are tested for
    the third edge, and the triangle is credited to the tree node of
    its lowest-rank corner — O(m^1.5) work.

    Triplets: all triplets centered at ``v`` are credited by the level
    at which they appear; the level-``c(v)`` count is ``C(ge, 2)`` and
    each lower level ``k`` adds ``C(cnt_k, 2) + ge * cnt_k`` triplets
    to the node of any coreness-``k`` neighbor (all such neighbors
    share a tree node, because they are connected through ``v``).
    """
    tid = hcd.tid
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees()

    # --- triangles (lines 3-7) ---
    # The paper parallelizes the edge loop itself ("for each u in N(v)
    # do in parallel"), which is what balances hub vertices: iterate
    # the m directed edges (v, u) with u the lower-(degree, id)
    # endpoint, and close wedges through u.
    directed_edges: list[tuple[int, int]] = []
    for v in range(graph.num_vertices):
        dv = int(degrees[v])
        for u in indices[indptr[v] : indptr[v + 1]]:
            u = int(u)
            if (int(degrees[u]), u) < (dv, v):
                directed_edges.append((v, u))

    def close_wedges(edge: tuple[int, int], ctx) -> None:
        v, u = edge
        ctx.charge(1)
        row_v = indices[indptr[v] : indptr[v + 1]]
        for w in indices[indptr[u] : indptr[u + 1]]:
            w = int(w)
            ctx.charge(1)
            if w == v:
                continue
            # membership test w in N(v): binary search on sorted CSR
            pos = int(np.searchsorted(row_v, w))
            ctx.charge(1)
            if pos >= row_v.size or row_v[pos] != w:
                continue
            if ranks[w] < ranks[u] and ranks[w] < ranks[v]:
                out.add(ctx, int(tid[w]) * 5 + _TRI, 1.0)

    pool.parallel_for(
        directed_edges,
        close_wedges,
        label="pbks:typeB_triangles",
        chunking="dynamic",
        grain=16,
    )

    def contribute(v: int, ctx) -> None:
        row_v = indices[indptr[v] : indptr[v + 1]]
        # --- triplets (lines 8-15) ---
        ge = int(counts.gt[v] + counts.eq[v])
        ctx.charge(1)
        out.add(ctx, int(tid[v]) * 5 + _TRIP, ge * (ge - 1) / 2.0)
        # bucket v's lower-coreness neighbors by their coreness
        lower: dict[int, tuple[int, int]] = {}  # k -> (count, witness)
        cv = int(coreness[v])
        for u in row_v:
            u = int(u)
            ctx.charge(1)
            cu = int(coreness[u])
            if cu < cv:
                cnt, _ = lower.get(cu, (0, u))
                lower[cu] = (cnt + 1, u)
        gt_running = ge
        for k in sorted(lower, reverse=True):
            cnt_k, witness = lower[k]
            ctx.charge(1)
            out.add(
                ctx,
                int(tid[witness]) * 5 + _TRIP,
                cnt_k * (cnt_k - 1) / 2.0 + gt_running * cnt_k,
            )
            gt_running += cnt_k

    pool.parallel_for(
        range(graph.num_vertices),
        contribute,
        label="pbks:typeB_triplets",
        chunking="dynamic",
        grain=16,
    )


def pbks_node_values(
    graph: Graph,
    coreness: np.ndarray,
    hcd: HCD,
    pool: SimulatedPool,
    counts: NeighborCorenessCounts | None = None,
    rank_result: VertexRankResult | None = None,
    need_type_b: bool = False,
) -> np.ndarray:
    """Accumulated primary values of every tree node's original k-core.

    The shared hierarchy traversal of Algorithm 3: per-vertex
    contributions (type A, plus the type-B motifs when
    ``need_type_b``) followed by the bottom-up tree accumulation.
    Returns a ``(|T|, 5)`` array in ``(n, m, b, tri, trip)`` column
    order.  This is the pass the serving layer's batched executor runs
    *once* per snapshot and shares across every metric fold — the
    type-A columns are bit-identical whether or not the type-B pass
    runs, since the motif families write disjoint columns.
    """
    coreness = np.asarray(coreness, dtype=np.int64)
    t = hcd.num_nodes
    if t == 0:
        return np.empty((0, 5))
    if counts is None:
        counts = preprocess_neighbor_counts(graph, coreness, pool)
    contributions = AtomicArray(t * 5, dtype=np.float64, name="pbks_vals")
    with pool.phase("pbks:typeA"):
        pbks_type_a_contributions(
            graph, coreness, hcd, counts, pool, contributions, t
        )
    if need_type_b:
        if rank_result is None:
            from repro.core.vertex_rank import compute_vertex_rank

            rank_result = compute_vertex_rank(graph, coreness, pool)
        with pool.phase("pbks:typeB"):
            pbks_type_b_contributions(
                graph,
                coreness,
                hcd,
                counts,
                rank_result.rank,
                pool,
                contributions,
                t,
            )
    per_node = contributions.data.reshape(t, 5)
    with pool.phase("pbks:accumulate"):
        return tree_accumulate(
            pool, hcd.parent, per_node, label="pbks:accum"
        )


def pbks_search(
    graph: Graph,
    coreness: np.ndarray,
    hcd: HCD,
    metric: Metric | str,
    pool: SimulatedPool,
    counts: NeighborCorenessCounts | None = None,
    rank_result: VertexRankResult | None = None,
) -> SearchResult:
    """Find the best-scoring k-core on ``pool`` (Algorithm 3 framework).

    ``counts`` is the shared preprocessing — pass a precomputed value
    to amortize it across metrics, as the paper does.  ``rank_result``
    supplies vertex ranks for motif attribution (recomputed if absent;
    PBKS normally reuses PHCD's).
    """
    if isinstance(metric, str):
        metric = get_metric(metric)
    coreness = np.asarray(coreness, dtype=np.int64)
    t = hcd.num_nodes
    totals = GraphTotals.of(graph)
    if t == 0:
        return SearchResult(
            metric_name=metric.name,
            best_node=-1,
            best_score=float("-inf"),
            best_k=-1,
            scores=np.empty(0),
            values=np.empty((0, 5)),
            hcd=hcd,
        )
    accumulated = pbks_node_values(
        graph,
        coreness,
        hcd,
        pool,
        counts=counts,
        rank_result=rank_result,
        need_type_b=metric.kind == "B",
    )

    scores = san_empty(t, np.float64, name="pbks_scores")

    def score_node(i: int, ctx) -> None:
        n_, m_, b_, tri, trip = accumulated[i]
        value = metric(
            PrimaryValues(n=n_, m=m_, b=b_, triangles=tri, triplets=trip),
            totals,
        )
        # each tree node owns its score slot; the value rides along so
        # memcheck can name this kernel as a NaN origin
        ctx.write(("pbks_scores", int(i)), value=value)
        scores[i] = value

    with pool.phase("pbks:score"):
        pool.parallel_for(range(t), score_node, label="pbks:score")
    best = best_finite_index(scores)
    if best < 0:
        # every score was NaN/-inf (e.g. a metric with zero denominators
        # everywhere): report "no winner" instead of letting NaN poison
        # argmax into an arbitrary node
        return SearchResult(
            metric_name=metric.name,
            best_node=-1,
            best_score=float("-inf"),
            best_k=-1,
            scores=scores,
            values=accumulated,
            hcd=hcd,
        )
    return SearchResult(
        metric_name=metric.name,
        best_node=best,
        best_score=float(scores[best]),
        best_k=int(hcd.node_coreness[best]),
        scores=scores,
        values=accumulated,
        hcd=hcd,
    )
