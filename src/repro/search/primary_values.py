"""Primary values of subgraphs (paper Section II-D).

Community scoring metrics are all defined over five *primary values*
of a subgraph ``S``:

* ``n(S)`` — vertices,
* ``m(S)`` — internal edges,
* ``b(S)`` — boundary edges (one endpoint inside, one outside),
* ``triangles(S)`` — triangles,
* ``triplets(S)`` — connected vertex triples with >= 2 internal edges.

:class:`PrimaryValues` is the container both BKS and PBKS produce per
k-core; :class:`GraphTotals` carries the whole-graph ``n``/``m`` some
metrics (cut ratio, modularity) need as context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph

__all__ = ["PrimaryValues", "GraphTotals"]


@dataclass(frozen=True)
class PrimaryValues:
    """Primary values of one subgraph (typically one k-core)."""

    n: float = 0.0
    m: float = 0.0
    b: float = 0.0
    triangles: float = 0.0
    triplets: float = 0.0

    def __add__(self, other: "PrimaryValues") -> "PrimaryValues":
        return PrimaryValues(
            n=self.n + other.n,
            m=self.m + other.m,
            b=self.b + other.b,
            triangles=self.triangles + other.triangles,
            triplets=self.triplets + other.triplets,
        )

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        """``(n, m, b, triangles, triplets)``."""
        return (self.n, self.m, self.b, self.triangles, self.triplets)


@dataclass(frozen=True)
class GraphTotals:
    """Whole-graph context for metrics that compare S to G."""

    n: int
    m: int

    @classmethod
    def of(cls, graph: Graph) -> "GraphTotals":
        """Totals of ``graph``."""
        return cls(n=graph.num_vertices, m=graph.num_edges)
