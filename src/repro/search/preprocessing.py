"""PBKS preprocessing (paper Section IV-A).

Score computation repeatedly asks, for a vertex ``v``, how many of its
neighbors have greater / equal / lesser coreness.  The preprocessing
answers these in O(1) after one O(m) parallel pass: for every vertex we
store the counts of neighbors with strictly greater and with equal
coreness (the "lesser" count is the degree minus both).  It replaces
BKS's coreness-sorted adjacency lists — the bin-sort ordering the paper
identifies as unfriendly to parallel execution — and is run once,
shared by every subsequent metric computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["NeighborCorenessCounts", "preprocess_neighbor_counts"]


@dataclass
class NeighborCorenessCounts:
    """Per-vertex neighbor counts by coreness comparison.

    ``gt[v]`` / ``eq[v]`` / ``lt[v]`` are the numbers of ``v``'s
    neighbors with coreness greater than / equal to / less than
    ``c(v)``; ``gt[v] + eq[v] + lt[v] == d(v)``.
    """

    gt: np.ndarray
    eq: np.ndarray
    lt: np.ndarray

    def ge(self) -> np.ndarray:
        """Neighbors with coreness >= c(v), per vertex."""
        return self.gt + self.eq


def preprocess_neighbor_counts(
    graph: Graph,
    coreness: np.ndarray,
    pool: SimulatedPool,
) -> NeighborCorenessCounts:
    """One O(m) parallel pass computing the comparison counts."""
    coreness = np.asarray(coreness, dtype=np.int64)
    n = graph.num_vertices
    gt = np.zeros(n, dtype=np.int64)
    eq = np.zeros(n, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices

    def count(v: int, ctx) -> None:
        # one recorded write covers the vertex's gt/eq output pair
        ctx.write(("pre_counts", int(v)))
        cv = coreness[v]
        g = 0
        e = 0
        for u in indices[indptr[v] : indptr[v + 1]]:
            ctx.charge(1)
            cu = coreness[u]
            if cu > cv:
                g += 1
            elif cu == cv:
                e += 1
        gt[v] = g
        eq[v] = e

    with pool.phase("pbks:preprocess"):
        pool.parallel_for(
            range(n),
            count,
            label="pbks:preprocess",
            chunking="dynamic",
            grain=32,
        )
    lt = graph.degrees().astype(np.int64) - gt - eq
    return NeighborCorenessCounts(gt=gt, eq=eq, lt=lt)
