"""BKS — the serial subgraph-search baseline (Chu et al., ICDE 2020).

BKS computes the score of every k-core incrementally from
``k = kmax`` *descending* to 0, consuming the results of larger
coreness at every level (the data dependence that makes it hard to
parallelize) and relying on a bin-sort **vertex ordering**: every
adjacency list is re-ordered by neighbor coreness, descending, so that
the neighbors inside the current core form a prefix.

This implementation keeps both structural signatures:

* an O(m) ordering pass builds the coreness-sorted adjacency lists
  (charged at bin-sort rates);
* the level loop walks coreness values downward with a barrier per
  level, adding each level's tree-node contributions and folding
  finished nodes into their parents before the next level starts.

Scores are bit-identical to PBKS (asserted by the test suite); only
the cost profile differs — which is exactly what Table V and Figures
6-9 measure.
"""

from __future__ import annotations

import numpy as np

from repro.core.hcd import HCD
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.search.metrics import Metric, get_metric
from repro.search.primary_values import GraphTotals, PrimaryValues
from repro.search.result import SearchResult, best_finite_index

__all__ = ["bks_search", "build_coreness_sorted_adjacency"]

_N, _M, _B, _TRI, _TRIP = range(5)


def build_coreness_sorted_adjacency(
    graph: Graph,
    coreness: np.ndarray,
    pool: SimulatedPool | None = None,
) -> list[np.ndarray]:
    """Adjacency lists re-ordered by neighbor coreness, descending.

    The bin-sort-like ordering pass of BKS; charged at ~2 ops per edge
    endpoint plus a per-vertex bin setup, reflecting the dynamic-bin
    traffic the paper calls out as parallel-unfriendly.
    """
    coreness = np.asarray(coreness, dtype=np.int64)
    n = graph.num_vertices
    sorted_adj: list[np.ndarray] = []
    charged = 0.0
    for v in range(n):
        row = graph.neighbors(v)
        # stable bin sort: descending coreness, ascending id inside a bin
        order = np.lexsort((row, -coreness[row]))
        sorted_adj.append(row[order])
        charged += 1.2 * int(row.size) + 1
    if pool is not None:
        with pool.serial_region("bks:ordering") as ctx:
            ctx.charge(charged)
    return sorted_adj


def bks_search(
    graph: Graph,
    coreness: np.ndarray,
    hcd: HCD,
    metric: Metric | str,
    pool: SimulatedPool | None = None,
    sorted_adj: list[np.ndarray] | None = None,
) -> SearchResult:
    """Serial best-k-core search over the HCD.

    When ``pool`` is given, every operation is charged in serial
    regions (one per coreness level, mirroring BKS's barriers).
    """
    if isinstance(metric, str):
        metric = get_metric(metric)
    coreness = np.asarray(coreness, dtype=np.int64)
    t = hcd.num_nodes
    totals = GraphTotals.of(graph)
    if t == 0:
        return SearchResult(
            metric_name=metric.name,
            best_node=-1,
            best_score=float("-inf"),
            best_k=-1,
            scores=np.empty(0),
            values=np.empty((0, 5)),
            hcd=hcd,
        )
    if sorted_adj is None:
        sorted_adj = build_coreness_sorted_adjacency(graph, coreness, pool)

    tid = hcd.tid
    degrees = graph.degrees()
    values = np.zeros((t, 5), dtype=np.float64)
    scores = np.full(t, float("-inf"), dtype=np.float64)

    # group tree nodes and vertices by coreness level
    kmax = hcd.kmax
    nodes_at: list[list[int]] = [[] for _ in range(kmax + 1)]
    for node in range(t):
        nodes_at[int(hcd.node_coreness[node])].append(node)

    for k in range(kmax, -1, -1):  # barrier per level
        level_nodes = nodes_at[k]
        if not level_nodes:
            continue
        charged = 0
        for node in level_nodes:
            for v in hcd.vertices_of(node):
                v = int(v)
                row = sorted_adj[v]
                # prefix of the sorted list = neighbors inside the k-core
                ge = int(np.searchsorted(-coreness[row], -k, side="right"))
                gt = int(np.searchsorted(-coreness[row], -(k + 1), side="right"))
                eq = ge - gt
                lt = int(degrees[v]) - ge
                # two binary searches on the sorted list + bookkeeping
                charged += 2 * max(1, int(degrees[v]).bit_length()) + 4
                values[node, _N] += 1.0
                values[node, _M] += gt + 0.5 * eq
                values[node, _B] += lt - gt
                if metric.kind == "B":
                    charged += _count_motifs_at(
                        graph, coreness, hcd, sorted_adj, v, values
                    )
        for node in level_nodes:
            # children (all at higher levels) are already folded in
            n_, m_, b_, tri, trip = values[node]
            scores[node] = metric(
                PrimaryValues(n=n_, m=m_, b=b_, triangles=tri, triplets=trip),
                totals,
            )
            pa = int(hcd.parent[node])
            if pa >= 0:
                values[pa] += values[node]
            charged += 6
        if pool is not None:
            with pool.serial_region(f"bks:level_{k}") as ctx:
                ctx.charge(charged)

    best = best_finite_index(scores)
    if best < 0:
        return SearchResult(
            metric_name=metric.name,
            best_node=-1,
            best_score=float("-inf"),
            best_k=-1,
            scores=scores,
            values=values,
            hcd=hcd,
        )
    # rebuild the accumulated per-core values for reporting (the folding
    # above reused the rows; recompute totals per node bottom-up)
    return SearchResult(
        metric_name=metric.name,
        best_node=best,
        best_score=float(scores[best]),
        best_k=int(hcd.node_coreness[best]),
        scores=scores,
        values=values,
        hcd=hcd,
    )


def _count_motifs_at(
    graph: Graph,
    coreness: np.ndarray,
    hcd: HCD,
    sorted_adj: list[np.ndarray],
    v: int,
    values: np.ndarray,
) -> int:
    """Triangle / triplet contributions of vertex ``v`` (serial BKS).

    Counts the same motifs as PBKS with the same lowest-rank
    attribution, but walks the coreness-sorted adjacency lists and
    returns the number of charged operations.
    """
    tid = hcd.tid
    degrees = graph.degrees()
    indptr, indices = graph.indptr, graph.indices
    cv = int(coreness[v])
    dv = int(degrees[v])
    charged = 0
    row_v_sorted = graph.neighbors(v)  # id-sorted, for membership tests

    def rank_lt(a: int, b: int) -> bool:
        return (int(coreness[a]), a) < (int(coreness[b]), b)

    # triangles: direct the edge to the lower-(degree, id) endpoint
    for u in row_v_sorted:
        u = int(u)
        charged += 1
        du = int(degrees[u])
        if (du, u) >= (dv, v):
            continue
        for w in indices[indptr[u] : indptr[u + 1]]:
            w = int(w)
            charged += 2
            if w == v:
                continue
            pos = int(np.searchsorted(row_v_sorted, w))
            if pos >= row_v_sorted.size or row_v_sorted[pos] != w:
                continue
            if rank_lt(w, u) and rank_lt(w, v):
                values[int(tid[w]), _TRI] += 1.0
    # triplets centered at v, by descending neighbor coreness level
    row = sorted_adj[v]
    ge = int(np.searchsorted(-coreness[row], -cv, side="right"))
    values[int(tid[v]), _TRIP] += ge * (ge - 1) / 2.0
    charged += 2
    idx = ge
    gt_running = ge
    while idx < row.size:
        k = int(coreness[row[idx]])
        end = int(np.searchsorted(-coreness[row], -k, side="right"))
        cnt_k = end - idx
        witness = int(row[idx])
        values[int(tid[witness]), _TRIP] += (
            cnt_k * (cnt_k - 1) / 2.0 + gt_running * cnt_k
        )
        gt_running += cnt_k
        idx = end
        charged += 2
    return charged
