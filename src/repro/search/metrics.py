"""Community scoring metrics (paper Section II-D) and their registry.

Each :class:`Metric` maps a subgraph's :class:`PrimaryValues` (plus the
whole-graph :class:`GraphTotals`) to a score, normalized so that higher
is better.  Metrics declare their *type*:

* **type A** — functions of ``n(S)``, ``m(S)``, ``b(S)`` only
  (computable in O(n) from the HCD after O(m) preprocessing);
* **type B** — functions that additionally need triangle / triplet
  counts (O(m^1.5) counting).

The six metrics of the paper are pre-registered; users can add any new
metric over the same primary values with :func:`register_metric`, and
both BKS and PBKS will evaluate it unchanged — the property the paper
highlights ("they can handle any (new) metric that is defined upon the
primary values").

Degenerate inputs (singleton subgraphs, triangle-free subgraphs, the
whole graph for cut ratio) are given the standard conventional values
so every k-core always has a well-defined score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import UnknownMetricError
from repro.search.primary_values import GraphTotals, PrimaryValues

__all__ = [
    "Metric",
    "register_metric",
    "get_metric",
    "metric_names",
    "type_a_metrics",
    "type_b_metrics",
    "average_degree",
    "internal_density",
    "cut_ratio",
    "conductance",
    "modularity",
    "clustering_coefficient",
]


@dataclass(frozen=True)
class Metric:
    """A community scoring metric over primary values.

    Attributes
    ----------
    name:
        Registry key.
    kind:
        ``"A"`` or ``"B"`` (Section II-D's type-A / type-B split).
    score:
        Callable ``(values, totals) -> float``; higher is better.
    """

    name: str
    kind: str
    score: Callable[[PrimaryValues, GraphTotals], float]

    def __call__(self, values: PrimaryValues, totals: GraphTotals) -> float:
        return self.score(values, totals)


_REGISTRY: dict[str, Metric] = {}


def register_metric(
    name: str,
    kind: str,
    score: Callable[[PrimaryValues, GraphTotals], float],
) -> Metric:
    """Register a (possibly user-defined) metric; returns it.

    Re-registering a name replaces the previous definition.
    """
    if kind not in ("A", "B"):
        raise ValueError(f"metric kind must be 'A' or 'B', got {kind!r}")
    metric = Metric(name=name, kind=kind, score=score)
    _REGISTRY[name] = metric
    return metric


def get_metric(name: str) -> Metric:
    """Look up a registered metric by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownMetricError(
            f"unknown metric {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def metric_names() -> list[str]:
    """All registered metric names, sorted."""
    return sorted(_REGISTRY)


def type_a_metrics() -> list[Metric]:
    """All registered type-A metrics."""
    return [m for _, m in sorted(_REGISTRY.items()) if m.kind == "A"]


def type_b_metrics() -> list[Metric]:
    """All registered type-B metrics."""
    return [m for _, m in sorted(_REGISTRY.items()) if m.kind == "B"]


# ----------------------------------------------------------------------
# the paper's six metrics
# ----------------------------------------------------------------------


def _average_degree(v: PrimaryValues, _: GraphTotals) -> float:
    """f(S) = 2 m(S) / n(S)."""
    return 2.0 * v.m / v.n if v.n > 0 else 0.0


def _internal_density(v: PrimaryValues, _: GraphTotals) -> float:
    """f(S) = 2 m(S) / (n(S) (n(S) - 1))."""
    if v.n <= 1:
        return 0.0
    return 2.0 * v.m / (v.n * (v.n - 1.0))


def _cut_ratio(v: PrimaryValues, totals: GraphTotals) -> float:
    """f(S) = 1 - b(S) / (n(S) (n - n(S)))."""
    outside = totals.n - v.n
    if v.n <= 0 or outside <= 0:
        return 1.0  # no possible boundary edge
    return 1.0 - v.b / (v.n * outside)


def _conductance(v: PrimaryValues, _: GraphTotals) -> float:
    """f(S) = 1 - b(S) / (2 m(S) + b(S))."""
    volume = 2.0 * v.m + v.b
    if volume <= 0:
        return 1.0
    return 1.0 - v.b / volume


def _modularity(v: PrimaryValues, totals: GraphTotals) -> float:
    """Single-community modularity: m(S)/m - ((2 m(S) + b(S)) / 2m)^2."""
    if totals.m <= 0:
        return 0.0
    frac_inside = v.m / totals.m
    frac_degree = (2.0 * v.m + v.b) / (2.0 * totals.m)
    return frac_inside - frac_degree * frac_degree


def _clustering_coefficient(v: PrimaryValues, _: GraphTotals) -> float:
    """f(S) = 3 triangles(S) / triplets(S)."""
    if v.triplets <= 0:
        return 0.0
    return 3.0 * v.triangles / v.triplets


average_degree = register_metric("average_degree", "A", _average_degree)
internal_density = register_metric("internal_density", "A", _internal_density)
cut_ratio = register_metric("cut_ratio", "A", _cut_ratio)
conductance = register_metric("conductance", "A", _conductance)
modularity = register_metric("modularity", "A", _modularity)
clustering_coefficient = register_metric(
    "clustering_coefficient", "B", _clustering_coefficient
)


# ----------------------------------------------------------------------
# further metrics from the surveys the paper covers ([32], [33])
# ----------------------------------------------------------------------


def _separability(v: PrimaryValues, _: GraphTotals) -> float:
    """Yang-Leskovec separability: internal over boundary edges.

    A boundary-free subgraph (a whole component) is perfectly
    separable; by convention it scores infinity when non-trivial.
    """
    if v.b <= 0:
        return float("inf") if v.m > 0 else 0.0
    return v.m / v.b


def _expansion(v: PrimaryValues, _: GraphTotals) -> float:
    """1 minus boundary edges per member (normalized higher-is-better)."""
    if v.n <= 0:
        return 0.0
    return 1.0 - v.b / v.n


def _triangle_participation(v: PrimaryValues, _: GraphTotals) -> float:
    """Triangles per internal edge — a motif-cohesion measure."""
    if v.m <= 0:
        return 0.0
    return v.triangles / v.m


separability = register_metric("separability", "A", _separability)
expansion = register_metric("expansion", "A", _expansion)
triangle_participation = register_metric(
    "triangle_participation", "B", _triangle_participation
)


def combine_metrics(
    name: str, weights: dict[str, float], register: bool = True
) -> Metric:
    """Assemble a weighted combination of registered metrics.

    Section VI's "new or assembled community scoring metrics": the
    returned metric scores ``sum(w * component(S))`` and is type-B iff
    any component is.  With ``register=True`` (default) it joins the
    registry so both BKS and PBKS can evaluate it by name.
    """
    if not weights:
        raise ValueError("need at least one component metric")
    components = [(get_metric(key), w) for key, w in sorted(weights.items())]
    kind = "B" if any(m.kind == "B" for m, _ in components) else "A"

    def score(values: PrimaryValues, totals: GraphTotals) -> float:
        return sum(w * m(values, totals) for m, w in components)

    metric = Metric(name=name, kind=kind, score=score)
    if register:
        _REGISTRY[name] = metric
    return metric
