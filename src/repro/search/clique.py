"""Exact maximum clique (Tomita-style branch & bound with coloring).

Table IV tests whether the maximum clique is contained in PBKS-D's
output subgraph ``S*`` — the paper's argument that PBKS-D is a strong
pruning step for clique search.  This module provides the exact solver
used for that check:

* vertices are pre-ordered by degeneracy (the classic reduction: the
  maximum clique has at most ``kmax + 1`` vertices, and each vertex
  only needs to be tried against its later neighbors);
* the branch and bound prunes with greedy-coloring upper bounds
  (Tomita's MCS-style bound);
* k-core pruning discards vertices whose coreness is below the best
  clique found so far, exactly the coupling with core decomposition
  the paper exploits.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.sanitizer.memcheck import san_empty

__all__ = ["maximum_clique", "is_clique"]


def is_clique(graph: Graph, members: np.ndarray | list[int]) -> bool:
    """Whether ``members`` induces a complete subgraph."""
    members = [int(v) for v in members]
    member_set = set(members)
    for v in members:
        row = set(int(u) for u in graph.neighbors(v))
        if len(member_set & row) != len(members) - 1:
            return False
    return True


def _greedy_coloring_order(
    candidates: list[int], adj: list[set[int]]
) -> tuple[list[int], list[int]]:
    """Color candidates greedily; return (vertices, colors) sorted by color.

    The color of a vertex is an upper bound on the clique size
    achievable from it and earlier candidates, enabling Tomita pruning.
    """
    color_classes: list[list[int]] = []
    for v in candidates:
        placed = False
        for cls in color_classes:
            if all(u not in adj[v] for u in cls):
                cls.append(v)
                placed = True
                break
        if not placed:
            color_classes.append([v])
    ordered: list[int] = []
    colors: list[int] = []
    for color, cls in enumerate(color_classes, start=1):
        for v in cls:
            ordered.append(v)
            colors.append(color)
    return ordered, colors


def maximum_clique(graph: Graph, initial_bound: int = 0) -> np.ndarray:
    """Vertices of a maximum clique (sorted ascending).

    ``initial_bound`` seeds the incumbent size (e.g. from a heuristic)
    to tighten pruning; the returned clique always has at least
    ``max(initial_bound, 1)`` vertices if the graph is non-empty only
    when such a clique exists — otherwise the true maximum is returned.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    from repro.core.decomposition import core_decomposition

    coreness = core_decomposition(graph)
    adj: list[set[int]] = [
        set(int(u) for u in graph.neighbors(v)) for v in range(n)
    ]

    best: list[int] = []
    best_size = max(int(initial_bound), 0)

    # Degeneracy order: process vertices by ascending coreness so each
    # root call only explores later, higher-core candidates.
    order = np.lexsort((np.arange(n), coreness))
    position = san_empty(n, np.int64, name="clique_pos")
    position[order] = np.arange(n)

    def expand(clique: list[int], candidates: list[int]) -> None:
        nonlocal best, best_size
        ordered, colors = _greedy_coloring_order(candidates, adj)
        # iterate highest color first
        for idx in range(len(ordered) - 1, -1, -1):
            if len(clique) + colors[idx] <= best_size:
                return  # color bound prunes the rest
            v = ordered[idx]
            clique.append(v)
            next_candidates = [u for u in ordered[:idx] if u in adj[v]]
            if not next_candidates:
                if len(clique) > best_size:
                    best = list(clique)
                    best_size = len(best)
            else:
                expand(clique, next_candidates)
            clique.pop()

    for v in order[::-1]:
        v = int(v)
        if int(coreness[v]) + 1 <= best_size:
            continue  # k-core prune: c(v)+1 caps any clique through v
        later = [
            int(u)
            for u in graph.neighbors(v)
            if position[u] > position[v] and int(coreness[u]) + 1 > best_size
        ]
        expand([v], later)
    return np.asarray(sorted(best), dtype=np.int64)
