"""Influential community search on the HCD (paper Section VI).

Li et al. (PVLDB'15) define the *influence* of a community as the
minimum weight of its members, and ask for the top-r most influential
k-cores.  The paper's "Efficient Subgraph Index" extension notes that
the HCD is exactly the O(n)-space structure such indexes build on: the
candidate communities for any ``k`` are the maximal k-cores, i.e. the
original cores of the HCD nodes whose parent falls below ``k``.

:class:`InfluentialCommunityIndex` materializes, in one bottom-up pass
(a *min* tree accumulation — the same primitive PBKS uses with sums),
the influence of every tree node's original core; afterwards any
``(k, r)`` query is answered from the index alone, in time linear in
the number of candidate cores — no graph access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hcd import HCD
from repro.parallel.atomics import AtomicArray
from repro.parallel.scheduler import SimulatedPool

__all__ = ["InfluentialCommunity", "InfluentialCommunityIndex"]


@dataclass(frozen=True)
class InfluentialCommunity:
    """One answer: a k-core and its influence (minimum member weight)."""

    node: int
    k: int
    influence: float
    size: int


class InfluentialCommunityIndex:
    """Index answering top-r influential k-core queries from the HCD.

    Parameters
    ----------
    hcd:
        The hierarchy of the graph.
    weights:
        Per-vertex influence weights (e.g. PageRank, activity counts).
    pool:
        Simulated pool charging the one-off index construction; the
        construction is one parallel pass over vertices plus one
        bottom-up accumulation over tree nodes.
    """

    def __init__(
        self,
        hcd: HCD,
        weights: np.ndarray,
        pool: SimulatedPool | None = None,
    ) -> None:
        self._hcd = hcd
        weights = np.asarray(weights, dtype=np.float64)
        if weights.size != hcd.num_vertices:
            raise ValueError(
                f"{weights.size} weights for {hcd.num_vertices} vertices"
            )
        pool = pool or SimulatedPool(threads=1)
        t = hcd.num_nodes
        # Vertices of one tree node are spread across threads, so the
        # per-node fold must be atomic: a plain `if w < min: min = w`
        # loses updates under concurrent writers (a real race the
        # sanitizer flags).  fetch_min / fetch_add are the lock-free
        # equivalents.
        node_min = AtomicArray(t, dtype=np.float64, name="inf_min")
        node_min.data[:] = np.inf
        sizes = AtomicArray(t, dtype=np.int64, name="inf_size")

        # per-node minima over the node's own vertices
        def fold_vertex(v: int, ctx) -> None:
            ctx.charge(1)
            node = int(hcd.tid[v])
            node_min.fetch_min(ctx, node, weights[v])
            sizes.add(ctx, node, 1)

        if hcd.num_vertices:
            pool.parallel_for(
                range(hcd.num_vertices), fold_vertex, label="influence:fold"
            )
        node_min = node_min.data
        sizes = sizes.data

        # bottom-up min accumulation: influence of a core is the min
        # over its subtree (children processed before parents)
        for node in hcd.nodes_bottom_up():
            pa = int(hcd.parent[node])
            if pa >= 0:
                if node_min[node] < node_min[pa]:
                    node_min[pa] = node_min[node]
                sizes[pa] += sizes[node]
        with pool.serial_region("influence:accumulate") as ctx:
            ctx.charge(t)

        self._influence = node_min
        self._core_sizes = sizes

    # ------------------------------------------------------------------

    def influence_of(self, node: int) -> float:
        """Influence (min member weight) of the node's original core."""
        return float(self._influence[node])

    def core_size(self, node: int) -> int:
        """Number of vertices in the node's original core."""
        return int(self._core_sizes[node])

    def top_r(self, k: int, r: int) -> list[InfluentialCommunity]:
        """The ``r`` most influential maximal k-cores, best first.

        Ties break toward smaller communities (more cohesive), then by
        node id for determinism.
        """
        if r < 1:
            return []
        candidates = self._hcd.maximal_core_nodes(k)

        def sort_key(node: int):
            influence = float(self._influence[node])
            # NaN weights (and the +inf sentinel of an all-NaN node)
            # must not outrank real communities: treat non-finite
            # influence as -inf so such nodes sort last, and NaN never
            # poisons the comparison chain
            if not np.isfinite(influence):
                influence = float("-inf")
            return (-influence, self._core_sizes[node], node)

        ranked = sorted(candidates, key=sort_key)
        out = []
        for node in ranked[:r]:
            out.append(
                InfluentialCommunity(
                    node=node,
                    k=k,
                    influence=float(self._influence[node]),
                    size=int(self._core_sizes[node]),
                )
            )
        return out

    def members(self, community: InfluentialCommunity) -> np.ndarray:
        """Vertex set of a returned community."""
        return self._hcd.reconstruct_core(community.node)
