"""Finding the best k (paper Section VI, "Finding the Best k").

Instead of scoring individual k-cores, this extension scores every
*k-core set* ``K_k`` (the union of all k-cores for a given k) and
returns the ``k`` whose set scores highest — the parameter-selection
problem of Chu et al. (ICDE 2020).  It reuses the PBKS paradigm:
per-vertex contributions are indexed by coreness level instead of tree
node, and the level totals are suffix-accumulated from ``kmax`` down
(``K_k`` contains every shell with coreness >= k).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.vertex_rank import VertexRankResult, compute_vertex_rank
from repro.graph.graph import Graph
from repro.parallel.atomics import AtomicArray
from repro.parallel.scheduler import SimulatedPool
from repro.search.metrics import Metric, get_metric
from repro.search.preprocessing import (
    NeighborCorenessCounts,
    preprocess_neighbor_counts,
)
from repro.search.primary_values import GraphTotals, PrimaryValues
from repro.search.result import best_finite_index
from repro.sanitizer.memcheck import san_empty

__all__ = ["BestKResult", "compute_level_values", "find_best_k"]

_N, _M, _B, _TRI, _TRIP = range(5)


@dataclass
class BestKResult:
    """Scores of every k-core set and the winning k."""

    metric_name: str
    best_k: int
    best_score: float
    scores: np.ndarray  # score of K_k for every k in 0..kmax
    values: np.ndarray  # (kmax+1, 5) primary values of every K_k


def compute_level_values(
    graph: Graph,
    coreness: np.ndarray,
    pool: SimulatedPool,
    counts: NeighborCorenessCounts | None = None,
    rank_result: VertexRankResult | None = None,
    need_type_b: bool = False,
) -> np.ndarray:
    """Primary values of every k-core set ``K_k``, as a ``(kmax+1, 5)`` array.

    The shared per-level pass of the best-k extension: per-vertex
    contributions credited to coreness levels (type A always, type-B
    motifs when ``need_type_b``) followed by the suffix accumulation
    from ``kmax`` down.  Like :func:`~repro.search.pbks.pbks_node_values`
    this is the pass the serving layer computes once per snapshot and
    shares across metric folds; the type-A columns are bit-identical
    with or without the type-B pass (disjoint columns).
    """
    coreness = np.asarray(coreness, dtype=np.int64)
    n = graph.num_vertices
    kmax = int(coreness.max()) if n else 0
    if counts is None:
        counts = preprocess_neighbor_counts(graph, coreness, pool)
    levels = AtomicArray((kmax + 1) * 5, dtype=np.float64, name="bestk_vals")
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees()

    def contribute_a(v: int, ctx) -> None:
        ctx.charge(3)
        k = int(coreness[v])
        gt = int(counts.gt[v])
        eq = int(counts.eq[v])
        lt = int(counts.lt[v])
        levels.add(ctx, k * 5 + _N, 1.0)
        levels.add(ctx, k * 5 + _M, gt + 0.5 * eq)
        levels.add(ctx, k * 5 + _B, lt - gt)

    pool.parallel_for(
        range(n), contribute_a, label="bestk:typeA", chunking="dynamic", grain=32
    )

    if need_type_b:
        if rank_result is None:
            rank_result = compute_vertex_rank(graph, coreness, pool)
        ranks = rank_result.rank

        def contribute_b(v: int, ctx) -> None:
            dv = int(degrees[v])
            cv = int(coreness[v])
            row_v = indices[indptr[v] : indptr[v + 1]]
            for u in row_v:
                u = int(u)
                ctx.charge(1)
                du = int(degrees[u])
                if (du, u) >= (dv, v):
                    continue
                for w in indices[indptr[u] : indptr[u + 1]]:
                    w = int(w)
                    ctx.charge(2)
                    if w == v:
                        continue
                    pos = int(np.searchsorted(row_v, w))
                    if pos >= row_v.size or row_v[pos] != w:
                        continue
                    if ranks[w] < ranks[u] and ranks[w] < ranks[v]:
                        levels.add(ctx, int(coreness[w]) * 5 + _TRI, 1.0)
            ge = int(counts.gt[v] + counts.eq[v])
            ctx.charge(1)
            levels.add(ctx, cv * 5 + _TRIP, ge * (ge - 1) / 2.0)
            lower: dict[int, int] = {}
            for u in row_v:
                u = int(u)
                ctx.charge(1)
                cu = int(coreness[u])
                if cu < cv:
                    lower[cu] = lower.get(cu, 0) + 1
            gt_running = ge
            for k in sorted(lower, reverse=True):
                cnt_k = lower[k]
                ctx.charge(1)
                levels.add(
                    ctx,
                    k * 5 + _TRIP,
                    cnt_k * (cnt_k - 1) / 2.0 + gt_running * cnt_k,
                )
                gt_running += cnt_k

        pool.parallel_for(
            range(n), contribute_b, label="bestk:typeB", chunking="dynamic", grain=4
        )

    per_level = levels.data.reshape(kmax + 1, 5)
    # Suffix accumulation: K_k = union of shells >= k.
    values = np.cumsum(per_level[::-1], axis=0)[::-1].copy()
    with pool.serial_region("bestk:suffix") as ctx:
        ctx.charge(kmax + 1)
    return values


def find_best_k(
    graph: Graph,
    coreness: np.ndarray,
    metric: Metric | str,
    pool: SimulatedPool,
    counts: NeighborCorenessCounts | None = None,
    rank_result: VertexRankResult | None = None,
) -> BestKResult:
    """Score every k-core set and return the best ``k``.

    Contributions are exactly PBKS's, but credited to the coreness
    level at which the motif appears; a suffix sum over levels then
    yields every ``K_k``'s primary values in one pass.
    """
    if isinstance(metric, str):
        metric = get_metric(metric)
    coreness = np.asarray(coreness, dtype=np.int64)
    n = graph.num_vertices
    totals = GraphTotals.of(graph)
    kmax = int(coreness.max()) if n else 0
    values = compute_level_values(
        graph,
        coreness,
        pool,
        counts=counts,
        rank_result=rank_result,
        need_type_b=metric.kind == "B",
    )

    scores = san_empty(kmax + 1, np.float64, name="bks_scores")

    def score_level(k: int, ctx) -> None:
        n_, m_, b_, tri, trip = values[k]
        value = metric(
            PrimaryValues(n=n_, m=m_, b=b_, triangles=tri, triplets=trip),
            totals,
        )
        # each level owns its score slot; the value rides along so
        # memcheck can name this kernel as a NaN origin
        ctx.write(("bks_scores", int(k)), value=value)
        scores[k] = value

    pool.parallel_for(range(kmax + 1), score_level, label="bestk:score")
    best = best_finite_index(scores)
    if best < 0:
        return BestKResult(
            metric_name=metric.name,
            best_k=-1,
            best_score=float("-inf"),
            scores=scores,
            values=values,
        )
    return BestKResult(
        metric_name=metric.name,
        best_k=best,
        best_score=float(scores[best]),
        scores=scores,
        values=values,
    )
