"""Subgraph search on the HCD: metrics, BKS baseline, parallel PBKS."""

from repro.search.best_k import BestKResult, find_best_k
from repro.search.bks import bks_search, build_coreness_sorted_adjacency
from repro.search.clique import is_clique, maximum_clique
from repro.search.coreapp import coreapp_densest
from repro.search.densest import (
    DensestResult,
    exact_densest,
    optd_densest,
    pbks_densest,
)
from repro.search.metrics import (
    Metric,
    combine_metrics,
    get_metric,
    metric_names,
    register_metric,
    type_a_metrics,
    type_b_metrics,
)
from repro.search.pbks import pbks_search
from repro.search.preprocessing import (
    NeighborCorenessCounts,
    preprocess_neighbor_counts,
)
from repro.search.primary_values import GraphTotals, PrimaryValues
from repro.search.result import SearchResult

__all__ = [
    "Metric",
    "combine_metrics",
    "register_metric",
    "get_metric",
    "metric_names",
    "type_a_metrics",
    "type_b_metrics",
    "PrimaryValues",
    "GraphTotals",
    "NeighborCorenessCounts",
    "preprocess_neighbor_counts",
    "SearchResult",
    "bks_search",
    "build_coreness_sorted_adjacency",
    "pbks_search",
    "pbks_densest",
    "optd_densest",
    "exact_densest",
    "coreapp_densest",
    "DensestResult",
    "maximum_clique",
    "is_clique",
    "find_best_k",
    "BestKResult",
]
