"""CoreApp — core-based approximate densest subgraph (Fang et al., 2019).

The baseline of Table IV.  CoreApp locates the densest region through
core decomposition alone: it peels the graph, takes the ``kmax``-core,
and returns the connected component of it with the highest average
degree.  The result is a 0.5-approximation (``davg/2 >= kmax/2 >=
rho*/2``), but unlike PBKS-D it never examines k-cores of smaller k —
which is why its output quality trails PBKS-D on most datasets in the
paper's Table IV while its runtime (a full, serially-charged peel plus
component scan) exceeds PBKS-D's.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import core_decomposition
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.search.densest import DensestResult

__all__ = ["coreapp_densest"]


def coreapp_densest(
    graph: Graph,
    pool: SimulatedPool | None = None,
    coreness: np.ndarray | None = None,
) -> DensestResult:
    """Best-average-degree connected component of the kmax-core.

    ``coreness`` may be supplied to skip the peeling pass (its cost is
    then not charged; the paper's CoreApp timings include peeling, and
    the benchmark passes ``coreness=None`` accordingly).
    """
    if coreness is None:
        coreness = core_decomposition(graph, pool)
    coreness = np.asarray(coreness, dtype=np.int64)
    if graph.num_vertices == 0:
        return DensestResult(
            members=np.empty(0, dtype=np.int64), average_degree=0.0
        )
    kmax = int(coreness.max())
    members = np.flatnonzero(coreness >= kmax)
    sub, originals = graph.induced_subgraph(members)
    labels = sub.connected_components()
    charged = int(members.size + sub.num_edges)

    best_avg = -1.0
    best: np.ndarray = originals
    for comp in np.unique(labels):
        comp_local = np.flatnonzero(labels == comp)
        comp_sub, _ = sub.induced_subgraph(comp_local)
        charged += comp_local.size
        avg = comp_sub.average_degree()
        if avg > best_avg:
            best_avg = avg
            best = originals[comp_local]
    if pool is not None:
        with pool.serial_region("coreapp") as ctx:
            ctx.charge(charged)
    return DensestResult(members=np.sort(best), average_degree=best_avg)
