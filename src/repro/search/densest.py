"""Densest-subgraph search: PBKS-D, and an exact flow-based reference.

``PBKS-D`` (paper Section V-C) is PBKS instantiated with the average-
degree metric: the returned k-core is a 0.5-approximation of the
densest subgraph, and in practice matches ``Opt-D`` (the BKS-based
optimal-best-core search) exactly — both optimize the same objective
over the same candidate set, so their outputs coincide by construction.

For small graphs an exact densest subgraph (max average degree over
*all* subgraphs, not only k-cores) is provided via Goldberg's binary
search on min-cuts, using :mod:`scipy`'s max-flow when available; the
test suite uses it to verify the 0.5-approximation guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.core.hcd import HCD
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.search.bks import bks_search
from repro.search.pbks import pbks_search
from repro.search.preprocessing import NeighborCorenessCounts
from repro.search.result import SearchResult

__all__ = ["DensestResult", "pbks_densest", "optd_densest", "exact_densest"]


@dataclass
class DensestResult:
    """A densest-subgraph answer."""

    members: np.ndarray
    average_degree: float
    search: SearchResult | None = None

    @property
    def size(self) -> int:
        """Number of vertices in the reported subgraph."""
        return int(self.members.size)


def pbks_densest(
    graph: Graph,
    coreness: np.ndarray,
    hcd: HCD,
    pool: SimulatedPool,
    counts: NeighborCorenessCounts | None = None,
) -> DensestResult:
    """PBKS-D: the k-core with the highest average degree (parallel)."""
    result = pbks_search(
        graph, coreness, hcd, "average_degree", pool, counts=counts
    )
    return DensestResult(
        members=result.best_members(),
        average_degree=result.best_score,
        search=result,
    )


def optd_densest(
    graph: Graph,
    coreness: np.ndarray,
    hcd: HCD,
    pool: SimulatedPool | None = None,
) -> DensestResult:
    """Opt-D: the same objective computed with the serial BKS engine."""
    result = bks_search(graph, coreness, hcd, "average_degree", pool)
    return DensestResult(
        members=result.best_members(),
        average_degree=result.best_score,
        search=result,
    )


def exact_densest(graph: Graph) -> DensestResult:
    """Exact densest subgraph via Goldberg's min-cut construction.

    Maximizes density ``rho(S) = m(S) / n(S)`` (half the average
    degree) over all non-empty subgraphs.  Density is rational with
    denominator <= n, so a Dinkelbach iteration over exact fractions
    terminates at the true optimum with small integral capacities.

    Requires :mod:`scipy`; intended for small graphs (tests, Table IV
    quality checks), not the benchmark path.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import maximum_flow

    n = graph.num_vertices
    m = graph.num_edges
    if n == 0 or m == 0:
        return DensestResult(
            members=np.arange(min(n, 1), dtype=np.int64), average_degree=0.0
        )
    degrees = graph.degrees().astype(np.int64)
    edge_list = graph.edge_array()

    def cut_keeps_vertices(g_num: int, g_den: int) -> np.ndarray:
        """Vertices on the source side for density guess g = g_num/g_den.

        Goldberg's network, scaled by 2*g_den to keep capacities
        integral: source->v with m' = 2*den*m... uses the standard
        construction s -> v (cap m_scaled), v -> t (cap
        m_scaled + 2*g*den - deg*den), u <-> v (cap den) per edge.
        """
        scale = g_den
        source, sink = n, n + 1
        rows: list[int] = []
        cols: list[int] = []
        caps: list[int] = []
        big = m * scale  # >= any useful capacity
        for v in range(n):
            rows.append(source)
            cols.append(v)
            caps.append(big)
            cap_t = big + 2 * g_num - int(degrees[v]) * scale
            rows.append(v)
            cols.append(sink)
            caps.append(max(cap_t, 0))
        for u, v in edge_list:
            rows.extend((int(u), int(v)))
            cols.extend((int(v), int(u)))
            caps.extend((scale, scale))
        mat = csr_matrix(
            (np.asarray(caps, dtype=np.int64), (rows, cols)),
            shape=(n + 2, n + 2),
        )
        flow = maximum_flow(mat, source, sink)
        residual = mat - flow.flow
        # BFS on positive-residual arcs from the source
        keep = np.zeros(n + 2, dtype=bool)
        keep[source] = True
        stack = [source]
        res = residual.tolil()
        while stack:
            x = stack.pop()
            row = res.rows[x]
            data = res.data[x]
            for y, c in zip(row, data):
                if c > 0 and not keep[y]:
                    keep[y] = True
                    stack.append(y)
        return np.flatnonzero(keep[:n])

    # Dinkelbach iteration: probe at the current best density rho (an
    # exact fraction with denominator <= n, so capacities stay small).
    # The min cut at guess g maximizes |S| (rho(S) - g); when a denser
    # subgraph exists its source side has density strictly above g, so
    # each round makes strict progress and the loop ends at the exact
    # optimum.  (A plain binary search on Fractions would square the
    # denominators every step and overflow the flow capacities.)
    best_members = np.arange(n, dtype=np.int64)
    rho = Fraction(m, n)
    while True:
        side = cut_keeps_vertices(rho.numerator, rho.denominator)
        if side.size == 0:
            break
        inside = np.zeros(n, dtype=bool)
        inside[side] = True
        side_edges = int(
            sum(1 for u, v in edge_list if inside[u] and inside[v])
        )
        density = Fraction(side_edges, int(side.size))
        if density <= rho:
            break
        best_members = side
        rho = density
    sub, _ = graph.induced_subgraph(best_members)
    return DensestResult(
        members=best_members,
        average_degree=sub.average_degree(),
    )
