"""Result container for subgraph search over the HCD."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hcd import HCD
from repro.search.primary_values import PrimaryValues

__all__ = ["SearchResult", "best_finite_index"]


def best_finite_index(scores: np.ndarray) -> int:
    """Index of the best meaningfully-comparable score, or ``-1``.

    ``np.argmax`` propagates NaN: a single NaN score (a metric hitting
    a zero denominator, say) would be reported as the "best" subgraph.
    Every search path (PBKS, BKS, best-k, truss) selects through this
    guard instead: NaN is sanitized to ``-inf`` so it can never win,
    while ``+inf`` remains a legitimate winner (e.g. the separability
    of a boundary-free component).  When every score is NaN or
    ``-inf`` there is nothing to rank, and ``-1`` lets callers return
    a well-defined empty result.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        return -1
    sanitized = np.where(np.isnan(scores), -np.inf, scores)
    best = int(np.argmax(sanitized))
    if sanitized[best] == -np.inf:
        return -1
    return best


@dataclass
class SearchResult:
    """Outcome of a best-k-core search (BKS or PBKS).

    Attributes
    ----------
    metric_name:
        Name of the community scoring metric optimized.
    best_node:
        Tree node id of the winning k-core (-1 when the HCD is empty).
    best_score:
        Its score.
    best_k:
        Coreness of the winning k-core.
    scores:
        Score of every tree node's original k-core.
    values:
        Accumulated primary values of every tree node's original
        k-core, as an ``(|T|, 5)`` array in ``(n, m, b, tri, trip)``
        column order.
    hcd:
        The hierarchy searched (for reconstructing members).
    """

    metric_name: str
    best_node: int
    best_score: float
    best_k: int
    scores: np.ndarray
    values: np.ndarray
    hcd: HCD

    def best_members(self) -> np.ndarray:
        """Vertex set of the winning k-core."""
        if self.best_node < 0:
            return np.empty(0, dtype=np.int64)
        return self.hcd.reconstruct_core(self.best_node)

    def node_values(self, node: int) -> PrimaryValues:
        """Primary values of ``node``'s original k-core."""
        n, m, b, tri, trip = self.values[node]
        return PrimaryValues(n=n, m=m, b=b, triangles=tri, triplets=trip)

    def __repr__(self) -> str:
        return (
            f"SearchResult({self.metric_name}, best_k={self.best_k}, "
            f"score={self.best_score:.4f})"
        )
