"""Snapshot catalog: versioned, atomically-published bundle store.

A catalog is a directory tree mapping snapshot *names* to monotonically
increasing integer *versions*::

    <root>/<name>/v00000001/{manifest.json, arrays.npz}
    <root>/<name>/v00000002/{...}

Publication is **atomic write-rename**: the bundle is first written
whole into a hidden stage directory (``.stage-v...``) under the same
name, then :func:`os.replace`-renamed into its final ``v%08d`` slot.
Readers either see a complete bundle or none at all; a crash mid-write
leaves only a stage directory, which the next publish sweeps away.
Versions are never mutated in place — an incremental refresh (e.g. the
dynamic-graph feed) publishes a *new* version, and result-cache entries
keyed on the old ``(name, version)`` pair can simply never be returned
for the new one.

Staleness detection is a directory scan: a service holding version
``v`` asks :meth:`SnapshotCatalog.is_stale` whether some ``v' > v``
has been published and reopens if so.
"""

from __future__ import annotations

import os
import re
import shutil
from pathlib import Path

from repro.errors import SnapshotError
from repro.serve.snapshot import MANIFEST_FILE, Snapshot

__all__ = ["SnapshotCatalog"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v(\d{8})$")
_STAGE_PREFIX = ".stage-"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise SnapshotError(
            f"invalid snapshot name {name!r}: use letters, digits, "
            f"'.', '_', '-' (must not start with '.')"
        )
    return name


class SnapshotCatalog:
    """Open-by-name access to a directory of versioned snapshot bundles."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        """Snapshot names with at least one published version, sorted."""
        out = []
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and _NAME_RE.match(entry.name):
                if self.versions(entry.name):
                    out.append(entry.name)
        return out

    def versions(self, name: str) -> list[int]:
        """Published versions of ``name``, ascending (empty if none)."""
        _check_name(name)
        base = self.root / name
        if not base.is_dir():
            return []
        found = []
        for entry in base.iterdir():
            match = _VERSION_RE.match(entry.name)
            if match and entry.is_dir() and (entry / MANIFEST_FILE).exists():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, name: str) -> int | None:
        """Newest published version of ``name``, or ``None``."""
        versions = self.versions(name)
        return versions[-1] if versions else None

    def is_stale(self, name: str, version: int) -> bool:
        """Whether a newer version than ``version`` has been published."""
        latest = self.latest_version(name)
        return latest is not None and latest > int(version)

    def path(self, name: str, version: int) -> Path:
        """Bundle directory of ``name`` at ``version``."""
        _check_name(name)
        return self.root / name / f"v{int(version):08d}"

    # ------------------------------------------------------------------
    # publish / open
    # ------------------------------------------------------------------

    def publish(self, snapshot: Snapshot, name: str | None = None) -> int:
        """Write ``snapshot`` as the next version of ``name``; return it.

        The bundle is staged under a hidden directory and renamed into
        place, so concurrent readers never observe a half-written
        version.  Stale stage directories from crashed publishes are
        removed first.
        """
        name = _check_name(name or snapshot.name)
        base = self.root / name
        base.mkdir(parents=True, exist_ok=True)
        for entry in base.iterdir():
            if entry.name.startswith(_STAGE_PREFIX) and entry.is_dir():
                shutil.rmtree(entry)
        version = (self.latest_version(name) or 0) + 1
        snapshot.name = name
        snapshot.version = version
        stage = base / f"{_STAGE_PREFIX}v{version:08d}"
        snapshot.save(stage)
        final = self.path(name, version)
        while True:
            try:
                os.replace(stage, final)
                break
            except OSError:
                if not final.exists():
                    raise
                # another publisher claimed the slot; take the next one
                version += 1
                snapshot.version = version
                next_stage = base / f"{_STAGE_PREFIX}v{version:08d}"
                snapshot.save(next_stage)
                shutil.rmtree(stage)
                stage = next_stage
                final = self.path(name, version)
        return version

    def open(self, name: str, version: int | None = None) -> Snapshot:
        """Load ``name`` at ``version`` (default: the latest).

        Raises :class:`SnapshotError` when the name or version does not
        exist, or when the bundle fails validation.
        """
        _check_name(name)
        if version is None:
            version = self.latest_version(name)
            if version is None:
                known = ", ".join(self.names()) or "<none>"
                raise SnapshotError(
                    f"no published snapshot named {name!r} in {self.root} "
                    f"(known: {known})"
                )
        bundle = self.path(name, version)
        if not bundle.is_dir():
            raise SnapshotError(
                f"snapshot {name!r} has no version {int(version)} in {self.root}"
            )
        snapshot = Snapshot.load(bundle)
        if snapshot.name != name or snapshot.version != int(version):
            raise SnapshotError(
                f"manifest identity ({snapshot.name!r} v{snapshot.version}) "
                f"does not match catalog slot ({name!r} v{int(version)})"
            )
        return snapshot

    def __repr__(self) -> str:
        return f"SnapshotCatalog({str(self.root)!r}, names={self.names()})"
