"""HCDServe: a build-once, query-many serving layer over the HCD.

The paper's index is built once and queried many times; this package
is the "many times" half.  A :class:`~repro.serve.snapshot.Snapshot`
is one immutable, checksummed build of the index (graph CSR, coreness,
HCD forest, PBKS preprocessing); a
:class:`~repro.serve.catalog.SnapshotCatalog` versions and atomically
publishes snapshots; an :class:`~repro.serve.service.HCDService`
replays request traces through admission control, query planning with
in-flight dedup, an LRU result cache, and batched execution that
shares one hierarchy traversal across many queries.  See DESIGN.md
section 10.
"""

from repro.serve.cache import CacheStats, ResultCache
from repro.serve.catalog import SnapshotCatalog
from repro.serve.executor import QueryResult, SnapshotExecutor
from repro.serve.planner import BatchPlan, Query, QueryPlanner, normalize_request
from repro.serve.service import (
    DynamicServingFeed,
    HCDService,
    RequestRecord,
    ServiceConfig,
    ServiceReport,
    load_trace,
    save_trace,
    synthetic_trace,
)
from repro.serve.snapshot import (
    FORMAT_VERSION,
    Snapshot,
    build_snapshot,
    snapshot_from_dynamic,
)

__all__ = [
    "BatchPlan",
    "CacheStats",
    "DynamicServingFeed",
    "FORMAT_VERSION",
    "HCDService",
    "Query",
    "QueryPlanner",
    "QueryResult",
    "RequestRecord",
    "ResultCache",
    "ServiceConfig",
    "ServiceReport",
    "Snapshot",
    "SnapshotCatalog",
    "SnapshotExecutor",
    "build_snapshot",
    "load_trace",
    "normalize_request",
    "save_trace",
    "snapshot_from_dynamic",
    "synthetic_trace",
]
