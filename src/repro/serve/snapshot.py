"""Versioned on-disk index bundles for the HCDServe serving layer.

The paper's premise is build-once/query-many: PHCD constructs the HCD
index so that many PBKS queries can be answered against it.  A
:class:`Snapshot` is the unit of "build once": one immutable bundle
holding everything the query engine needs —

* the graph CSR (``indptr``/``indices``),
* the coreness array,
* the HCD forest (flat arrays, :meth:`repro.core.hcd.HCD.to_arrays`),
* precomputed search state: the neighbor-coreness counts
  (:class:`~repro.search.preprocessing.NeighborCorenessCounts`) and
  the vertex rank / shell ordering of Algorithm 1,

plus a JSON **manifest** recording the format version, per-array
SHA-256 checksums, build parameters, and basic shape statistics.

On disk a snapshot is a directory with exactly two files::

    <dir>/manifest.json   format, build info, array checksums
    <dir>/arrays.npz      the numpy arrays, compressed

Loading treats the bundle as *untrusted input*: the manifest is parsed
and version-checked first, every array is checksum-verified against
it, the graph CSR goes through :func:`repro.graph.checked.validate_csr`
(via :class:`~repro.graph.checked.CheckedGraph`), and the HCD arrays
through :meth:`HCD.from_arrays`.  Every failure raises a typed
:class:`~repro.errors.SnapshotError` naming the offending file or
field — a truncated npz or a flipped bit is a clean input error, never
a bare ``zipfile``/``numpy`` exception detonating inside a kernel.

Versioning, atomic publication, and staleness detection live in
:mod:`repro.serve.catalog`.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.core.hcd import HCD
from repro.core.vertex_rank import VertexRankResult
from repro.errors import HierarchyError, SnapshotError
from repro.graph.checked import CheckedGraph
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.search.preprocessing import (
    NeighborCorenessCounts,
    preprocess_neighbor_counts,
)

__all__ = [
    "FORMAT_VERSION",
    "Snapshot",
    "build_snapshot",
    "snapshot_from_dynamic",
]

#: on-disk format identifier; loaders reject anything else
FORMAT_VERSION = "hcdserve/v1"

MANIFEST_FILE = "manifest.json"
ARRAYS_FILE = "arrays.npz"

#: every array a bundle must carry, in manifest order
ARRAY_KEYS = (
    "indptr",
    "indices",
    "coreness",
    "node_coreness",
    "parent",
    "tid",
    "member_offsets",
    "members",
    "counts_gt",
    "counts_eq",
    "rank",
    "vsort",
)


def _sha256(arr: np.ndarray) -> str:
    """Checksum of an array's raw bytes (C-order, dtype included)."""
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def _shells_from_coreness(coreness: np.ndarray) -> list[np.ndarray]:
    """Rebuild the k-shells ``H_k`` (ascending-id) from coreness.

    The shell arrays are derivable state — ``H_k`` is just the sorted
    set ``{v : c(v) = k}`` — so the bundle stores only ``rank`` and
    ``vsort`` and regenerates shells on load, vectorized.
    """
    kmax = int(coreness.max()) if coreness.size else 0
    order = np.lexsort((np.arange(coreness.size), coreness))
    sizes = np.bincount(coreness, minlength=kmax + 1)
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    return [
        order[bounds[k] : bounds[k + 1]].astype(np.int64)
        for k in range(kmax + 1)
    ]


class Snapshot:
    """One immutable build of the serving index (graph + HCD + search state).

    Construct via :func:`build_snapshot` (from a raw graph),
    :func:`snapshot_from_dynamic` (from a maintained
    :class:`~repro.dynamic.DynamicGraph`), or
    :meth:`Snapshot.load` (from a bundle directory).  ``name`` and
    ``version`` identify the snapshot inside a catalog; ``version`` is
    ``0`` until the catalog publishes it.
    """

    def __init__(
        self,
        graph: Graph,
        coreness: np.ndarray,
        hcd: HCD,
        counts: NeighborCorenessCounts,
        rank_result: VertexRankResult,
        name: str = "snapshot",
        version: int = 0,
        build_info: dict | None = None,
    ) -> None:
        self.graph = graph
        self.coreness = np.asarray(coreness, dtype=np.int64)
        self.hcd = hcd
        self.counts = counts
        self.rank_result = rank_result
        self.name = str(name)
        self.version = int(version)
        self.build_info = dict(build_info or {})

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def version_id(self) -> tuple[str, int]:
        """``(name, version)`` — the cache-key component identifying
        this build; result-cache entries of older versions can never
        collide with a refreshed snapshot's."""
        return (self.name, self.version)

    def decomposition(self, pool: SimulatedPool):
        """The snapshot's single shared decomposition, on ``pool``.

        Returns a :class:`~repro.pipeline.DecompositionResult` wired to
        the given pool *without recomputing anything* — this is how the
        serving executor reuses one decomposition per snapshot instead
        of re-deriving coreness per query, and it plugs straight into
        :func:`repro.pipeline.search_best_core` via its ``deco``
        parameter.
        """
        from repro.pipeline import DecompositionResult

        return DecompositionResult(
            graph=self.graph,
            coreness=self.coreness,
            hcd=self.hcd,
            rank_result=self.rank_result,
            pool=pool,
            phase_times={},
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def arrays(self) -> dict[str, np.ndarray]:
        """Every persisted array, keyed as in :data:`ARRAY_KEYS`."""
        out = {
            "indptr": self.graph.indptr,
            "indices": self.graph.indices,
            "coreness": self.coreness,
            "counts_gt": np.asarray(self.counts.gt, dtype=np.int64),
            "counts_eq": np.asarray(self.counts.eq, dtype=np.int64),
            "rank": np.asarray(self.rank_result.rank, dtype=np.int64),
            "vsort": np.asarray(self.rank_result.vsort, dtype=np.int64),
        }
        out.update(self.hcd.to_arrays())
        return out

    def manifest(self) -> dict:
        """The JSON manifest describing this snapshot."""
        arrays = self.arrays()
        return {
            "format": FORMAT_VERSION,
            "name": self.name,
            "version": self.version,
            "build": dict(self.build_info),
            "stats": {
                "n": self.graph.num_vertices,
                "m": self.graph.num_edges,
                "kmax": int(self.coreness.max()) if self.coreness.size else 0,
                "hcd_nodes": self.hcd.num_nodes,
            },
            "arrays": {
                key: {
                    "sha256": _sha256(arr),
                    "dtype": str(arr.dtype),
                    "shape": list(arr.shape),
                }
                for key, arr in arrays.items()
            },
        }

    def save(self, directory: str | os.PathLike[str]) -> None:
        """Write the bundle (``manifest.json`` + ``arrays.npz``) to ``directory``.

        The directory is created if needed.  Atomicity across the two
        files is the catalog's job (stage + rename); this method only
        guarantees each file is written whole.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(directory / ARRAYS_FILE, **self.arrays())
        manifest = self.manifest()
        with open(directory / MANIFEST_FILE, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, directory: str | os.PathLike[str]) -> "Snapshot":
        """Load and fully validate a bundle directory.

        Raises :class:`SnapshotError` naming the offending file or
        manifest field on any corruption: unreadable/ill-formed
        manifest, format-version skew, truncated or unreadable npz,
        missing/extra arrays, checksum / dtype / shape mismatches, and
        structurally invalid graph or HCD arrays.
        """
        directory = Path(directory)
        manifest = cls._load_manifest(directory)
        raw = cls._load_arrays(directory, manifest)
        return cls._assemble(manifest, raw)

    # -- loader internals ------------------------------------------------

    @staticmethod
    def _load_manifest(directory: Path) -> dict:
        path = directory / MANIFEST_FILE
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise SnapshotError(f"snapshot bundle missing {MANIFEST_FILE} in {directory}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"unreadable {MANIFEST_FILE} in {directory}: {exc}") from exc
        if not isinstance(manifest, dict):
            raise SnapshotError(f"{MANIFEST_FILE}: top-level value must be an object")
        fmt = manifest.get("format")
        if fmt != FORMAT_VERSION:
            raise SnapshotError(
                f"{MANIFEST_FILE}: field 'format' is {fmt!r}, this build "
                f"reads {FORMAT_VERSION!r} (format-version skew)"
            )
        for field in ("name", "version", "arrays"):
            if field not in manifest:
                raise SnapshotError(f"{MANIFEST_FILE}: missing field {field!r}")
        if not isinstance(manifest["arrays"], dict):
            raise SnapshotError(f"{MANIFEST_FILE}: field 'arrays' must be an object")
        missing = [key for key in ARRAY_KEYS if key not in manifest["arrays"]]
        if missing:
            raise SnapshotError(
                f"{MANIFEST_FILE}: field 'arrays' missing entries for {missing}"
            )
        return manifest

    @staticmethod
    def _load_arrays(directory: Path, manifest: dict) -> dict[str, np.ndarray]:
        path = directory / ARRAYS_FILE
        try:
            with np.load(path) as data:
                raw = {key: data[key] for key in data.files}
        except FileNotFoundError:
            raise SnapshotError(f"snapshot bundle missing {ARRAYS_FILE} in {directory}") from None
        except (zipfile.BadZipFile, OSError, ValueError, EOFError, KeyError) as exc:
            raise SnapshotError(
                f"{ARRAYS_FILE} is truncated or unreadable: {exc}"
            ) from exc
        declared = manifest["arrays"]
        for key in ARRAY_KEYS:
            if key not in raw:
                raise SnapshotError(f"{ARRAYS_FILE}: missing array {key!r}")
        extra = sorted(set(raw) - set(declared))
        if extra:
            raise SnapshotError(
                f"{ARRAYS_FILE}: arrays {extra} not declared in the manifest"
            )
        for key, spec in declared.items():
            if key not in raw:
                raise SnapshotError(f"{ARRAYS_FILE}: missing array {key!r}")
            arr = raw[key]
            if str(arr.dtype) != spec.get("dtype"):
                raise SnapshotError(
                    f"array {key!r}: dtype {arr.dtype} does not match "
                    f"manifest dtype {spec.get('dtype')!r}"
                )
            if list(arr.shape) != list(spec.get("shape", [])):
                raise SnapshotError(
                    f"array {key!r}: shape {list(arr.shape)} does not match "
                    f"manifest shape {spec.get('shape')}"
                )
            if _sha256(arr) != spec.get("sha256"):
                raise SnapshotError(
                    f"array {key!r}: checksum mismatch against the manifest "
                    f"(bundle corrupted?)"
                )
        return raw

    @classmethod
    def _assemble(cls, manifest: dict, raw: dict[str, np.ndarray]) -> "Snapshot":
        from repro.errors import GraphFormatError

        try:
            graph = CheckedGraph(raw["indptr"], raw["indices"])
        except GraphFormatError as exc:
            raise SnapshotError(f"array 'indptr'/'indices': invalid graph CSR: {exc}") from exc
        n = graph.num_vertices
        coreness = np.asarray(raw["coreness"], dtype=np.int64)
        for key in ("coreness", "tid", "counts_gt", "counts_eq", "rank", "vsort"):
            if raw[key].size != n:
                raise SnapshotError(
                    f"array {key!r}: {raw[key].size} entries for {n} vertices"
                )
        if coreness.size and int(coreness.min()) < 0:
            raise SnapshotError("array 'coreness': negative coreness value")
        try:
            hcd = HCD.from_arrays(raw)
        except HierarchyError as exc:
            raise SnapshotError(f"HCD arrays invalid: {exc}") from exc
        if hcd.num_vertices != n:
            raise SnapshotError(
                f"array 'tid': HCD indexes {hcd.num_vertices} vertices, graph has {n}"
            )
        degrees = graph.degrees()
        gt = np.asarray(raw["counts_gt"], dtype=np.int64)
        eq = np.asarray(raw["counts_eq"], dtype=np.int64)
        lt = degrees - gt - eq
        if lt.size and int(lt.min()) < 0:
            v = int(np.flatnonzero(lt < 0)[0])
            raise SnapshotError(
                f"array 'counts_gt'/'counts_eq': counts at vertex {v} "
                f"exceed its degree"
            )
        counts = NeighborCorenessCounts(gt=gt, eq=eq, lt=lt)
        rank = np.asarray(raw["rank"], dtype=np.int64)
        vsort = np.asarray(raw["vsort"], dtype=np.int64)
        rank_result = VertexRankResult(
            rank=rank,
            shells=_shells_from_coreness(coreness),
            vsort=vsort,
        )
        return cls(
            graph=graph,
            coreness=coreness,
            hcd=hcd,
            counts=counts,
            rank_result=rank_result,
            name=str(manifest["name"]),
            version=int(manifest["version"]),
            build_info=dict(manifest.get("build", {})),
        )

    def __repr__(self) -> str:
        return (
            f"Snapshot({self.name!r} v{self.version}, "
            f"n={self.graph.num_vertices}, m={self.graph.num_edges}, "
            f"|T|={self.hcd.num_nodes})"
        )


def build_snapshot(
    graph: Graph,
    threads: int = 4,
    pool: SimulatedPool | None = None,
    name: str = "snapshot",
    source: str = "",
) -> Snapshot:
    """Build a snapshot from a raw graph: one decomposition, shared forever.

    Runs :func:`repro.pipeline.decompose` (the parallel PKC + PHCD
    stack) plus the PBKS preprocessing pass exactly once; every query
    served against the snapshot reuses this state.
    """
    from repro.pipeline import decompose

    if pool is None:
        pool = SimulatedPool(threads=threads)
    deco = decompose(graph, parallel=True, pool=pool)
    with pool.phase("preprocessing"):
        counts = preprocess_neighbor_counts(graph, deco.coreness, pool)
    return Snapshot(
        graph=graph,
        coreness=deco.coreness,
        hcd=deco.hcd,
        counts=counts,
        rank_result=deco.rank_result,
        name=name,
        build_info={
            "threads": pool.threads,
            "algorithm": "pkc+phcd",
            "source": source,
        },
    )


def _delta_neighbor_counts(
    graph: Graph,
    coreness: np.ndarray,
    base: NeighborCorenessCounts,
    rows: list[int],
    pool: SimulatedPool,
) -> NeighborCorenessCounts:
    """Recompute the neighbor-coreness counts of ``rows`` only.

    Clean rows keep the previous snapshot's values; each dirty row is
    recounted against the *current* graph and coreness in one
    ``parallel_for`` (disjoint per-row writes).
    """
    indptr = graph.indptr
    indices = graph.indices
    gt = np.array(base.gt, dtype=np.int64)
    eq = np.array(base.eq, dtype=np.int64)

    def recount(v, ctx) -> None:
        vi = int(v)
        start = int(indptr[vi])
        end = int(indptr[vi + 1])
        cv = int(coreness[vi])
        above = 0
        equal = 0
        for j in range(start, end):
            y = int(indices[j])
            ctx.read(("coreness", y))
            cy = int(coreness[y])
            if cy > cv:
                above += 1
            elif cy == cv:
                equal += 1
        ctx.write(("counts_gt", vi))
        gt[vi] = above
        ctx.write(("counts_eq", vi))
        eq[vi] = equal

    pool.parallel_for(rows, recount, label="serve_delta_counts")
    lt = graph.degrees() - gt - eq
    return NeighborCorenessCounts(gt=gt, eq=eq, lt=lt)


def snapshot_from_dynamic(
    dyn,
    threads: int = 4,
    pool: SimulatedPool | None = None,
    name: str = "snapshot",
    previous: "Snapshot | None" = None,
) -> Snapshot:
    """Snapshot the current state of a :class:`~repro.dynamic.DynamicGraph`.

    The incremental-refresh path: the maintained coreness array is
    *reused* (the whole point of traversal maintenance — no fresh core
    decomposition), so only the HCD rebuild, the vertex rank, and the
    preprocessing pass are paid per refresh.

    With ``previous`` (the snapshot published from this same ``dyn``
    when its dirty tracking was last cleared), the refresh is a
    **delta publish**:

    * the vertex rank is reused outright when the coreness array is
      unchanged (rank depends only on coreness);
    * the neighbor-coreness counts are recomputed only for *dirty*
      rows — endpoints of mutated edges, coreness-changed vertices,
      and their current neighbors — under the SimProf phase
      ``dynamic.delta-counts``; clean rows are copied from
      ``previous``.

    Each call **consumes** the graph's dirty tracking
    (:meth:`~repro.dynamic.DynamicGraph.clear_dirty`), establishing the
    new snapshot as the baseline for the next delta.  The HCD forest is
    always rebuilt: an edge mutation can merge or split k-core
    components even when no coreness value moves.
    """
    from repro.core.phcd import phcd_build_hcd
    from repro.core.vertex_rank import compute_vertex_rank

    if pool is None:
        pool = SimulatedPool(threads=threads)
    graph = dyn.to_graph()
    coreness = np.array(dyn.coreness, dtype=np.int64)
    n = graph.num_vertices
    dirty_adj = set(getattr(dyn, "dirty_adjacency", frozenset()))
    dirty_core = set(getattr(dyn, "dirty_coreness", frozenset()))
    delta = previous is not None and previous.graph.num_vertices == n
    reused: list[str] = []

    rank_result = None
    if delta and np.array_equal(coreness, previous.coreness):
        rank_result = previous.rank_result
        reused.append("rank")
    with pool.phase("dynamic.hcd" if delta else "hcd"):
        if rank_result is None:
            rank_result = compute_vertex_rank(graph, coreness, pool)
        hcd = phcd_build_hcd(graph, coreness, pool, rank_result=rank_result)
    if delta:
        rows = dirty_adj | dirty_core
        for v in dirty_core:
            rows.update(int(y) for y in graph.neighbors(int(v)))
        with pool.phase("dynamic.delta-counts"):
            counts = _delta_neighbor_counts(
                graph, coreness, previous.counts, sorted(rows), pool
            )
        reused.append(f"counts(clean={n - len(rows)})")
    else:
        with pool.phase("preprocessing"):
            counts = preprocess_neighbor_counts(graph, coreness, pool)
    clear = getattr(dyn, "clear_dirty", None)
    if clear is not None:
        clear()
    return Snapshot(
        graph=graph,
        coreness=coreness,
        hcd=hcd,
        counts=counts,
        rank_result=rank_result,
        name=name,
        build_info={
            "threads": pool.threads,
            "algorithm": "dynamic+phcd",
            "source": f"dynamic(mutations={getattr(dyn, 'mutation_count', 0)})",
            "delta": ",".join(reused) if reused else ("full" if delta else ""),
        },
    )
