"""LRU result cache for the serving layer.

Entries are keyed on ``(snapshot version id, query fingerprint)`` —
the version id being the catalog's ``(name, version)`` pair — so a
refreshed snapshot *implicitly* invalidates every cached result of the
old build: the new version's keys can never collide with them, and the
stale entries age out of the LRU order naturally.  Hit / miss /
eviction counters feed the service report and the serving benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "ResultCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of a :class:`ResultCache`."""

    hits: int
    misses: int
    evictions: int
    puts: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Hits over probes (0.0 when never probed)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """A bounded LRU mapping of query keys to query results.

    ``capacity=0`` disables caching entirely (every probe misses, puts
    are dropped) — the per-query baseline mode of the serving bench.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[object, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._puts = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def get(self, key: object):
        """Return the cached value or ``None``; counts the probe."""
        if key in self._entries:
            self._hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self._misses += 1
        return None

    def put(self, key: object, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        if self.capacity == 0:
            return
        self._puts += 1
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
        self._entries[key] = value

    def stats(self) -> CacheStats:
        """Current counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            puts=self._puts,
            size=len(self._entries),
            capacity=self.capacity,
        )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ResultCache(size={s.size}/{s.capacity}, hits={s.hits}, "
            f"misses={s.misses}, evictions={s.evictions})"
        )
