"""Query normalization, fingerprinting, dedup, and batch planning.

Requests arrive as loose dictionaries (a workload trace line, a CLI
flag set).  The planner turns each into a canonical immutable
:class:`Query`, derives its **fingerprint** (the cache-key component),
coalesces identical in-flight queries, and groups the distinct ones by
the *shared pass* they can ride on:

* ``node_scores`` — PBKS-style best-core queries.  All of them share
  one hierarchy traversal (contributions + bottom-up accumulation,
  :func:`repro.search.pbks.pbks_node_values`); each metric then costs
  only a per-node score fold.  ``densest`` is normalized into this
  group (PBKS-D *is* PBKS with the average-degree metric), so a
  densest request and an equivalent pbks request dedupe.
* ``level_scores`` — best-k queries over k-core sets, sharing the
  per-level pass (:func:`repro.search.best_k.compute_level_values`).
* ``influential`` — top-r influential-community queries, grouped by
  weight specification; each group shares one
  :class:`~repro.search.influential.InfluentialCommunityIndex` build,
  after which every ``(k, r)`` pair is an index-only fold.

A group needs the type-B motif pass only if some member metric is
type B; type-A columns are bit-identical either way, so batching can
never change an answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import UnknownMetricError, WorkloadError
from repro.search.metrics import get_metric

__all__ = [
    "Query",
    "BatchPlan",
    "QueryPlanner",
    "WEIGHT_SPECS",
    "normalize_request",
]

#: deterministic per-vertex weight specifications for influential queries
WEIGHT_SPECS = ("degree", "coreness", "uniform")

_KIND_ALIASES = {
    "pbks": "pbks",
    "search": "pbks",
    "best_core": "pbks",
    "densest": "densest",
    "best_k": "best_k",
    "bestk": "best_k",
    "influential": "influential",
}


@dataclass(frozen=True)
class Query:
    """One normalized query; hashable, orderable, fingerprintable."""

    kind: str                 # "pbks" | "best_k" | "influential"
    metric: str = ""          # pbks / best_k
    k: int = 0                # influential
    r: int = 0                # influential
    weights: str = ""         # influential

    @property
    def fingerprint(self) -> str:
        """Canonical identity string — the cache-key component."""
        if self.kind == "influential":
            return f"influential k={self.k} r={self.r} weights={self.weights}"
        return f"{self.kind} metric={self.metric}"

    @property
    def needs_type_b(self) -> bool:
        """Whether this query requires the type-B motif pass."""
        if self.kind in ("pbks", "best_k"):
            return get_metric(self.metric).kind == "B"
        return False


def normalize_request(request: Mapping, where: str = "request") -> Query:
    """Canonicalize a raw request mapping into a :class:`Query`.

    Raises :class:`~repro.errors.WorkloadError` naming the offending
    field (and ``where``, e.g. a trace line) on anything malformed.
    """
    if not isinstance(request, Mapping):
        raise WorkloadError(f"{where}: request must be an object, got {type(request).__name__}")
    raw_kind = request.get("kind")
    if not isinstance(raw_kind, str) or raw_kind not in _KIND_ALIASES:
        raise WorkloadError(
            f"{where}: field 'kind' must be one of "
            f"{sorted(set(_KIND_ALIASES))}, got {raw_kind!r}"
        )
    kind = _KIND_ALIASES[raw_kind]
    if kind == "densest":
        # PBKS-D is PBKS under average_degree; normalizing here makes a
        # densest request and the equivalent pbks request coalesce.
        if "metric" in request and request["metric"] != "average_degree":
            raise WorkloadError(
                f"{where}: field 'metric' is not accepted for kind 'densest'"
            )
        return Query(kind="pbks", metric="average_degree")
    if kind in ("pbks", "best_k"):
        metric = request.get("metric", "average_degree")
        try:
            metric = get_metric(metric).name
        except (UnknownMetricError, TypeError):
            # TypeError: an unhashable JSON value (list/dict) as the
            # name; anything else escaping get_metric is a real bug
            # and must not be masked as a workload error
            raise WorkloadError(
                f"{where}: field 'metric' names no registered metric: {metric!r}"
            ) from None
        return Query(kind=kind, metric=metric)
    # influential
    k = request.get("k", 1)
    r = request.get("r", 1)
    weights = request.get("weights", "degree")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise WorkloadError(f"{where}: field 'k' must be an integer >= 1, got {k!r}")
    if not isinstance(r, int) or isinstance(r, bool) or r < 1:
        raise WorkloadError(f"{where}: field 'r' must be an integer >= 1, got {r!r}")
    if weights not in WEIGHT_SPECS:
        raise WorkloadError(
            f"{where}: field 'weights' must be one of {list(WEIGHT_SPECS)}, "
            f"got {weights!r}"
        )
    return Query(kind="influential", k=int(k), r=int(r), weights=str(weights))


@dataclass
class BatchPlan:
    """Execution plan for one batch of coalesced queries.

    ``queries`` maps fingerprint to the distinct :class:`Query`;
    ``requesters`` maps fingerprint to the request ids riding on it
    (length > 1 means in-flight dedup coalesced identical queries).
    The group fields are the executor's work list.
    """

    queries: dict[str, Query] = field(default_factory=dict)
    requesters: dict[str, list[int]] = field(default_factory=dict)
    node_metrics: list[str] = field(default_factory=list)
    level_metrics: list[str] = field(default_factory=list)
    influential: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    node_need_b: bool = False
    level_need_b: bool = False

    @property
    def distinct(self) -> int:
        """Number of distinct queries after coalescing."""
        return len(self.queries)

    @property
    def coalesced(self) -> int:
        """Requests answered by another identical in-flight query."""
        return sum(len(rids) - 1 for rids in self.requesters.values())

    def is_empty(self) -> bool:
        return not self.queries


class QueryPlanner:
    """Stateless planner: normalized queries in, batch plan out."""

    def plan(self, batch: list[tuple[int, Query]]) -> BatchPlan:
        """Coalesce and group a batch of ``(request id, query)`` pairs.

        Order within each group follows first appearance in the batch,
        so planning is deterministic for a deterministic workload.
        """
        plan = BatchPlan()
        for rid, query in batch:
            fp = query.fingerprint
            if fp in plan.queries:
                plan.requesters[fp].append(rid)
                continue
            plan.queries[fp] = query
            plan.requesters[fp] = [rid]
            if query.kind == "pbks":
                plan.node_metrics.append(query.metric)
                plan.node_need_b = plan.node_need_b or query.needs_type_b
            elif query.kind == "best_k":
                plan.level_metrics.append(query.metric)
                plan.level_need_b = plan.level_need_b or query.needs_type_b
            else:
                plan.influential.setdefault(query.weights, []).append(
                    (query.k, query.r)
                )
        return plan
