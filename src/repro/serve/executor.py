"""Batched query execution against one snapshot.

The executor is where build-once/query-many pays off.  It holds a
single shared :class:`~repro.pipeline.DecompositionResult` per snapshot
(never re-deriving coreness or the HCD per query) and memoizes the
three *shared passes* the planner groups queries by:

* the PBKS node-values traversal
  (:func:`~repro.search.pbks.pbks_node_values`),
* the best-k level-values pass
  (:func:`~repro.search.best_k.compute_level_values`),
* the influential-community index per weight specification
  (:class:`~repro.search.influential.InfluentialCommunityIndex`).

Each individual query then costs only a per-node (or per-level) metric
fold over the memoized matrix — the batching win the serving benchmark
measures.  Because the type-A and type-B motif passes write disjoint
columns, a matrix computed with the type-B pass serves type-A-only
queries with bit-identical answers, so at most one node-values variant
is ever materialized per snapshot in steady state.

``share_passes=False`` disables all memoization — every query repays
its shared pass.  That is the per-query baseline the serving benchmark
compares against; answers are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.scheduler import SimulatedPool
from repro.sanitizer.memcheck import san_empty
from repro.search.best_k import compute_level_values
from repro.search.influential import InfluentialCommunityIndex
from repro.search.metrics import get_metric
from repro.search.pbks import pbks_node_values
from repro.search.primary_values import GraphTotals, PrimaryValues
from repro.search.result import best_finite_index
from repro.serve.planner import BatchPlan, Query
from repro.serve.snapshot import Snapshot

__all__ = ["QueryResult", "SnapshotExecutor"]

# column order of the values matrices (matches pbks/best_k)
_N = 0


@dataclass(frozen=True)
class QueryResult:
    """Answer to one distinct query, ready for the result cache.

    ``detail`` depends on the kind: for ``pbks`` the winning tree node
    id (``(node,)``); for ``best_k`` empty; for ``influential`` the
    ranked ``(node, influence, size)`` triples.
    """

    fingerprint: str
    kind: str
    best_k: int
    best_score: float
    size: int
    detail: tuple = ()

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "best_k": self.best_k,
            "best_score": self.best_score,
            "size": self.size,
            "detail": [list(entry) if isinstance(entry, tuple) else entry
                       for entry in self.detail],
        }


class SnapshotExecutor:
    """Execute batch plans against one snapshot on one pool."""

    def __init__(
        self,
        snapshot: Snapshot,
        pool: SimulatedPool,
        share_passes: bool = True,
    ) -> None:
        self.snapshot = snapshot
        self.pool = pool
        self.share_passes = bool(share_passes)
        # the snapshot's one decomposition, reused by every query
        self.deco = snapshot.decomposition(pool)
        self._totals = GraphTotals.of(snapshot.graph)
        self._node_values: dict[bool, np.ndarray] = {}
        self._level_values: dict[bool, np.ndarray] = {}
        self._influence: dict[str, InfluentialCommunityIndex] = {}

    # ------------------------------------------------------------------
    # shared passes (memoized)
    # ------------------------------------------------------------------

    def _ensure_node_values(self, need_b: bool) -> np.ndarray:
        if need_b in self._node_values:
            return self._node_values[need_b]
        if not need_b and True in self._node_values:
            # type-A columns are bit-identical in the type-B variant
            return self._node_values[True]
        values = pbks_node_values(
            self.deco.graph,
            self.deco.coreness,
            self.deco.hcd,
            self.pool,
            counts=self.snapshot.counts,
            rank_result=self.deco.rank_result,
            need_type_b=need_b,
        )
        if self.share_passes:
            self._node_values[need_b] = values
        return values

    def _ensure_level_values(self, need_b: bool) -> np.ndarray:
        if need_b in self._level_values:
            return self._level_values[need_b]
        if not need_b and True in self._level_values:
            return self._level_values[True]
        values = compute_level_values(
            self.deco.graph,
            self.deco.coreness,
            self.pool,
            counts=self.snapshot.counts,
            rank_result=self.deco.rank_result,
            need_type_b=need_b,
        )
        if self.share_passes:
            self._level_values[need_b] = values
        return values

    def _influence_weights(self, spec: str) -> np.ndarray:
        graph = self.deco.graph
        if spec == "degree":
            return np.asarray(graph.degrees(), dtype=np.float64)
        if spec == "coreness":
            return np.asarray(self.deco.coreness, dtype=np.float64)
        if spec == "uniform":
            return np.ones(graph.num_vertices, dtype=np.float64)
        raise ValueError(f"unknown weight spec {spec!r}")

    def _influence_index(self, spec: str) -> InfluentialCommunityIndex:
        if spec in self._influence:
            return self._influence[spec]
        index = InfluentialCommunityIndex(
            self.deco.hcd, self._influence_weights(spec), self.pool
        )
        if self.share_passes:
            self._influence[spec] = index
        return index

    # ------------------------------------------------------------------
    # per-query folds
    # ------------------------------------------------------------------

    def _score_fold(
        self, values: np.ndarray, metric_name: str, label: str
    ) -> tuple[np.ndarray, int]:
        """Score every row of a values matrix; return (scores, argmax)."""
        metric = get_metric(metric_name)
        totals = self._totals
        rows = values.shape[0]
        scores = san_empty(rows, np.float64, name="serve_scores")

        def score_row(i: int, ctx) -> None:
            n_, m_, b_, tri, trip = values[i]
            value = metric(
                PrimaryValues(n=n_, m=m_, b=b_, triangles=tri, triplets=trip),
                totals,
            )
            # each row owns its score slot; the value rides along so
            # memcheck can name this kernel as a NaN origin
            ctx.write(("serve_scores", int(i)), value=value)
            scores[i] = value

        if rows:
            self.pool.parallel_for(range(rows), score_row, label=label)
        return scores, best_finite_index(scores)

    def _run_pbks(self, query: Query) -> QueryResult:
        values = self._ensure_node_values(query.needs_type_b)
        scores, best = self._score_fold(
            values, query.metric, label=f"serve:score:{query.metric}"
        )
        if best < 0:
            return QueryResult(
                fingerprint=query.fingerprint,
                kind="pbks",
                best_k=-1,
                best_score=float("-inf"),
                size=0,
            )
        hcd = self.deco.hcd
        return QueryResult(
            fingerprint=query.fingerprint,
            kind="pbks",
            best_k=int(hcd.node_coreness[best]),
            best_score=float(scores[best]),
            size=int(values[best][_N]),
            detail=(int(best),),
        )

    def _run_best_k(self, query: Query) -> QueryResult:
        values = self._ensure_level_values(query.needs_type_b)
        scores, best = self._score_fold(
            values, query.metric, label=f"serve:score:{query.metric}"
        )
        if best < 0:
            return QueryResult(
                fingerprint=query.fingerprint,
                kind="best_k",
                best_k=-1,
                best_score=float("-inf"),
                size=0,
            )
        return QueryResult(
            fingerprint=query.fingerprint,
            kind="best_k",
            best_k=int(best),
            best_score=float(scores[best]),
            size=int(values[best][_N]),
        )

    def _run_influential(self, query: Query) -> QueryResult:
        index = self._influence_index(query.weights)
        communities = index.top_r(query.k, query.r)
        with self.pool.serial_region("serve:topr") as ctx:
            ctx.charge(max(1, len(communities)))
        if not communities:
            return QueryResult(
                fingerprint=query.fingerprint,
                kind="influential",
                best_k=query.k,
                best_score=float("-inf"),
                size=0,
            )
        top = communities[0]
        return QueryResult(
            fingerprint=query.fingerprint,
            kind="influential",
            best_k=query.k,
            best_score=float(top.influence),
            size=int(top.size),
            detail=tuple(
                (c.node, float(c.influence), int(c.size)) for c in communities
            ),
        )

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------

    def run_query(self, query: Query) -> QueryResult:
        """Answer one query (shared passes still memoized)."""
        if query.kind == "pbks":
            return self._run_pbks(query)
        if query.kind == "best_k":
            return self._run_best_k(query)
        return self._run_influential(query)

    def execute(self, plan: BatchPlan) -> dict[str, QueryResult]:
        """Answer every distinct query of a plan, keyed by fingerprint.

        Shared passes run (at most) once up front — triggering them for
        the whole plan before folding keeps the per-metric folds cheap
        and the work sequence deterministic regardless of which query
        happened to arrive first.
        """
        if self.share_passes:
            if plan.node_metrics:
                self._ensure_node_values(plan.node_need_b)
            if plan.level_metrics:
                self._ensure_level_values(plan.level_need_b)
            for spec in plan.influential:
                self._influence_index(spec)
        results: dict[str, QueryResult] = {}
        for fingerprint, query in plan.queries.items():
            results[fingerprint] = self.run_query(query)
        return results
