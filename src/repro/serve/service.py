"""The HCDServe service loop: trace in, latency report out.

The service replays a *request trace* — a list of query requests with
simulated arrival times — through the full serving path::

    admit (bounded queue, load shedding)
      -> plan (normalize, dedup, batch)
        -> cache probe (LRU, keyed on snapshot version + fingerprint)
          -> execute (batched shared passes on the snapshot)

and reports per-request latency percentiles, a latency histogram,
throughput, and cache statistics.

Two clocks
----------
The pool's simulated clock (``pool.clock``) includes spawn, barrier,
and contention costs and therefore **depends on the thread count** —
it is the right clock for speedup questions (batched vs per-query,
1 vs 8 threads) and is reported as ``sim_clock``.  Request latencies,
however, must make the replay *reproducible across thread counts*
(the determinism acceptance bar), so the service timeline advances in
**work units**: the sum of per-item charges plus atomic operations of
every region executed on the service's behalf.  Work units are
partition-independent — every item runs exactly once with identical
charges no matter how the pool slices it — so the latency histogram
and cache stats are bit-identical at ``-p 1/2/4/8``.

All four stages run under SimProf-visible phases ``serve.admit``,
``serve.plan``, ``serve.cache``, ``serve.execute``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.parallel.scheduler import SimulatedPool
from repro.serve.cache import ResultCache
from repro.serve.catalog import SnapshotCatalog
from repro.serve.executor import QueryResult, SnapshotExecutor
from repro.serve.planner import QueryPlanner, normalize_request
from repro.serve.snapshot import snapshot_from_dynamic

__all__ = [
    "ServiceConfig",
    "RequestRecord",
    "ServiceReport",
    "HCDService",
    "DynamicServingFeed",
    "synthetic_trace",
    "load_trace",
    "save_trace",
]


# ----------------------------------------------------------------------
# configuration and records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable knobs of the serving loop.

    The ``*_cost`` fields are per-item work-unit charges for the
    bookkeeping stages, so admission control and cache probes show up
    in latencies (and in SimProf) instead of being free.
    """

    queue_capacity: int = 64
    max_batch: int = 16
    cache_capacity: int = 256
    share_passes: bool = True
    admit_cost: int = 1
    plan_cost: int = 2
    probe_cost: int = 1

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")


@dataclass(frozen=True)
class RequestRecord:
    """Outcome of one trace request."""

    rid: int
    fingerprint: str   # "" for shed/invalid requests
    status: str        # "ok" | "hit" | "shared" | "shed" | "invalid"
    arrival: float     # work-unit timestamp from the trace
    latency: float     # completion - arrival, in work units (0 if shed)
    batch: int         # batch index that answered it (-1 if never batched)

    def as_dict(self) -> dict:
        return {
            "rid": self.rid,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "arrival": self.arrival,
            "latency": self.latency,
            "batch": self.batch,
        }


def _percentile(latencies: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def _histogram(latencies: list[float]) -> dict[str, int]:
    """Power-of-two latency histogram, bucket label -> count."""
    buckets: dict[str, int] = {}
    for latency in latencies:
        if latency <= 1.0:
            label = "<=1"
        else:
            label = f"<=2^{int(math.ceil(math.log2(latency)))}"
        buckets[label] = buckets.get(label, 0) + 1

    def order(item: tuple[str, int]) -> int:
        return 0 if item[0] == "<=1" else int(item[0][4:])

    return dict(sorted(buckets.items(), key=order))


@dataclass
class ServiceReport:
    """Everything one trace replay produced."""

    snapshot: tuple[str, int]
    threads: int
    records: list[RequestRecord] = field(default_factory=list)
    admitted: int = 0
    shed: int = 0
    invalid: int = 0
    hits: int = 0
    computed: int = 0
    shared: int = 0
    coalesced: int = 0
    batches: int = 0
    work_units: float = 0.0    # thread-count-independent service clock
    sim_clock: float = 0.0     # pool clock consumed (p-dependent)
    cache: dict = field(default_factory=dict)
    #: rid -> the answer it received (answered requests only)
    results: dict[int, QueryResult] = field(default_factory=dict)

    @property
    def latencies(self) -> list[float]:
        """Latencies of every answered request, in trace order."""
        return [
            r.latency
            for r in self.records
            if r.status in ("ok", "hit", "shared")
        ]

    @property
    def p50(self) -> float:
        return _percentile(self.latencies, 50)

    @property
    def p95(self) -> float:
        return _percentile(self.latencies, 95)

    @property
    def p99(self) -> float:
        return _percentile(self.latencies, 99)

    @property
    def throughput(self) -> float:
        """Answered requests per 1000 simulated work units."""
        if self.work_units <= 0:
            return 0.0
        return 1000.0 * (self.admitted - self.invalid) / self.work_units

    def histogram(self) -> dict[str, int]:
        return _histogram(self.latencies)

    def answers(self) -> dict[int, dict]:
        """Per-request answer payloads, keyed on rid (JSON-ready)."""
        return {
            rid: result.as_dict()
            for rid, result in sorted(self.results.items())
        }

    def answers_digest(self) -> str:
        """SHA-256 over the canonical answer payloads.

        This is the byte-identity signature the cluster router is held
        to: a sharded, replicated, fault-injected replay must produce
        exactly this digest.
        """
        payload = json.dumps(
            {str(rid): answer for rid, answer in self.answers().items()},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def as_dict(self) -> dict:
        """JSON-ready summary (the deterministic replay signature)."""
        return {
            "snapshot": {"name": self.snapshot[0], "version": self.snapshot[1]},
            "threads": self.threads,
            "requests": len(self.records),
            "admitted": self.admitted,
            "shed": self.shed,
            "invalid": self.invalid,
            "hits": self.hits,
            "computed": self.computed,
            "shared": self.shared,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "latency": {
                "p50": self.p50,
                "p95": self.p95,
                "p99": self.p99,
                "histogram": self.histogram(),
            },
            "throughput": self.throughput,
            "work_units": self.work_units,
            "sim_clock": self.sim_clock,
            "cache": dict(self.cache),
            "answers_digest": self.answers_digest(),
        }


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------


class HCDService:
    """Build-once/query-many serving of one named snapshot.

    Opens the latest published version of ``name`` from the catalog;
    :meth:`refresh` reopens when the catalog has a newer version (the
    result cache needs no flush — its keys embed the version).
    """

    def __init__(
        self,
        catalog: SnapshotCatalog,
        name: str,
        threads: int = 4,
        config: ServiceConfig | None = None,
        pool: SimulatedPool | None = None,
    ) -> None:
        self.catalog = catalog
        self.name = name
        self.config = config or ServiceConfig()
        self.pool = pool or SimulatedPool(threads=threads)
        self.planner = QueryPlanner()
        self.cache = ResultCache(self.config.cache_capacity)
        self.snapshot = catalog.open(name)
        self.executor = SnapshotExecutor(
            self.snapshot, self.pool, share_passes=self.config.share_passes
        )

    # ------------------------------------------------------------------

    def refresh(self) -> bool:
        """Reopen the snapshot if the catalog has a newer version.

        Returns whether a newer version was loaded.  Cached results of
        the old version stay in the LRU but can never be returned —
        their keys carry the old ``(name, version)`` pair.
        """
        if not self.catalog.is_stale(self.name, self.snapshot.version):
            return False
        self.snapshot = self.catalog.open(self.name)
        self.executor = SnapshotExecutor(
            self.snapshot, self.pool, share_passes=self.config.share_passes
        )
        return True

    def _cache_key(self, fingerprint: str) -> tuple:
        return (self.snapshot.version_id, fingerprint)

    # ------------------------------------------------------------------

    def answer(self, plan) -> tuple[dict[str, QueryResult], dict[str, str]]:
        """Answer one planned batch: cache probe, then execute misses.

        This is the replica-side path — the cluster router plans and
        routes, each replica answers its shard's sub-plan through this
        method.  Returns ``(results, statuses)`` keyed on fingerprint;
        a status is ``"hit"`` (result cache) or ``"ok"`` (executed).
        Answers depend only on the snapshot and the queries, never on
        batch composition, which is what makes sharded serving
        byte-identical to a single service.
        """
        pool = self.pool
        results: dict[str, QueryResult] = {}
        statuses: dict[str, str] = {}
        if plan.is_empty():
            return results, statuses
        with pool.phase("serve.cache"):
            with pool.serial_region("serve:cache") as ctx:
                ctx.charge(self.config.probe_cost * plan.distinct)
        for fingerprint in list(plan.queries):
            cached = self.cache.get(self._cache_key(fingerprint))
            if cached is not None:
                results[fingerprint] = cached
                statuses[fingerprint] = "hit"
        misses = {
            fp: q for fp, q in plan.queries.items() if fp not in results
        }
        if misses:
            miss_plan = self.planner.plan(
                [(rid, q) for fp, q in misses.items()
                 for rid in plan.requesters[fp][:1]]
            )
            with pool.phase("serve.execute"):
                computed = self.executor.execute(miss_plan)
            for fingerprint, result in computed.items():
                self.cache.put(self._cache_key(fingerprint), result)
                results[fingerprint] = result
                statuses[fingerprint] = "ok"
        return results, statuses

    # ------------------------------------------------------------------

    def serve(self, trace: list[dict], refresh: bool = True) -> ServiceReport:
        """Replay a request trace and report latencies and cache stats.

        ``trace`` entries are mappings with an ``arrival`` work-unit
        timestamp plus the query fields of
        :func:`~repro.serve.planner.normalize_request`.  Arrivals must
        be non-decreasing (:class:`WorkloadError` otherwise).
        """
        if refresh:
            self.refresh()
        config = self.config
        pool = self.pool
        pending: deque[tuple[int, float, dict]] = deque()
        last_arrival = float("-inf")
        for rid, entry in enumerate(trace):
            if not isinstance(entry, dict):
                raise WorkloadError(
                    f"trace[{rid}]: entry must be an object, "
                    f"got {type(entry).__name__}"
                )
            arrival = entry.get("arrival", 0)
            if not isinstance(arrival, (int, float)) or isinstance(arrival, bool):
                raise WorkloadError(
                    f"trace[{rid}]: field 'arrival' must be a number, "
                    f"got {arrival!r}"
                )
            arrival = float(arrival)
            if arrival < last_arrival:
                raise WorkloadError(
                    f"trace[{rid}]: field 'arrival' decreased "
                    f"({arrival} after {last_arrival})"
                )
            last_arrival = arrival
            pending.append((rid, arrival, entry))

        report = ServiceReport(
            snapshot=self.snapshot.version_id, threads=pool.threads
        )
        queue: deque[tuple[int, float, dict]] = deque()
        clock_mark = pool.mark()
        region_cursor = len(pool.regions)
        now = 0.0

        def drain() -> None:
            """Advance the work-unit clock by regions run since last call."""
            nonlocal now, region_cursor
            regions = pool.regions
            while region_cursor < len(regions):
                stats = regions[region_cursor]
                now += stats.work_total + stats.atomic_ops
                region_cursor += 1

        while pending or queue:
            # ---- admit ------------------------------------------------
            if not queue and pending and pending[0][1] > now:
                # idle service: jump to the next arrival
                now = pending[0][1]
            arrivals = []
            while pending and pending[0][1] <= now:
                arrivals.append(pending.popleft())
            if arrivals:
                with pool.phase("serve.admit"):
                    with pool.serial_region("serve:admit") as ctx:
                        ctx.charge(config.admit_cost * len(arrivals))
                for rid, arrival, entry in arrivals:
                    if len(queue) >= config.queue_capacity:
                        report.shed += 1
                        report.records.append(
                            RequestRecord(
                                rid=rid,
                                fingerprint="",
                                status="shed",
                                arrival=arrival,
                                latency=0.0,
                                batch=-1,
                            )
                        )
                    else:
                        queue.append((rid, arrival, entry))
                drain()
            if not queue:
                continue

            # ---- plan -------------------------------------------------
            batch_id = report.batches
            report.batches += 1
            taken = [queue.popleft() for _ in range(min(config.max_batch, len(queue)))]
            report.admitted += len(taken)
            normalized = []
            with pool.phase("serve.plan"):
                with pool.serial_region("serve:plan") as ctx:
                    ctx.charge(config.plan_cost * len(taken))
            for rid, arrival, entry in taken:
                try:
                    query = normalize_request(entry, where=f"trace[{rid}]")
                except WorkloadError:
                    report.invalid += 1
                    report.records.append(
                        RequestRecord(
                            rid=rid,
                            fingerprint="",
                            status="invalid",
                            arrival=arrival,
                            latency=0.0,
                            batch=batch_id,
                        )
                    )
                    continue
                normalized.append((rid, arrival, query))
            plan = self.planner.plan([(rid, q) for rid, _, q in normalized])
            report.coalesced += plan.coalesced
            drain()

            # ---- cache probe + execute -------------------------------
            answers, statuses = self.answer(plan)
            drain()

            # ---- complete --------------------------------------------
            # The leader (first requester) of each fingerprint is the
            # request whose outcome reflects real work: a cache probe
            # ("hit") or an executor computation ("ok").  Coalesced
            # followers ride on the leader's result and are recorded as
            # "shared" — counting them as computed would overstate
            # executor work against BatchPlan.coalesced and the
            # ResultCache counters (hits + computed + shared reconciles
            # with both).
            completion = now
            leaders = {fp: rids[0] for fp, rids in plan.requesters.items()}
            for rid, arrival, query in normalized:
                fingerprint = query.fingerprint
                if leaders.get(fingerprint) != rid:
                    status = "shared"
                    report.shared += 1
                elif statuses.get(fingerprint) == "hit":
                    status = "hit"
                    report.hits += 1
                else:
                    status = "ok"
                    report.computed += 1
                if fingerprint in answers:
                    report.results[rid] = answers[fingerprint]
                report.records.append(
                    RequestRecord(
                        rid=rid,
                        fingerprint=fingerprint,
                        status=status,
                        arrival=arrival,
                        latency=completion - arrival,
                        batch=batch_id,
                    )
                )

        report.records.sort(key=lambda r: r.rid)
        report.work_units = now
        report.sim_clock = pool.elapsed_since(clock_mark)
        report.cache = self.cache.stats().as_dict()
        return report


# ----------------------------------------------------------------------
# incremental refresh from a dynamic graph
# ----------------------------------------------------------------------


class DynamicServingFeed:
    """Bridge a maintained :class:`~repro.dynamic.DynamicGraph` into a catalog.

    Edge mutations apply the traversal-maintenance update (the coreness
    array is adjusted, never recomputed) and the refreshed state is
    published as a **new snapshot version** under the feed's name.  A
    service polling :meth:`HCDService.refresh` picks the new version up
    on its next replay; result-cache entries of the old version are
    implicitly dead because cache keys embed the version.

    Publishing is **debounced**: with ``publish_every=N`` the feed
    coalesces N mutations into one published version (mutation methods
    return the new version number, or ``None`` while buffered);
    :meth:`flush` forces out whatever is pending.  The default
    ``publish_every=1`` preserves publish-per-mutation behavior.

    Every publish after the first is a **delta publish**: the previous
    snapshot is handed to :func:`~repro.serve.snapshot.snapshot_from_dynamic`
    so unchanged arrays (vertex rank when coreness is untouched, the
    neighbor-coreness counts of clean rows) are reused instead of
    recomputed.
    """

    def __init__(
        self,
        dyn,
        catalog: SnapshotCatalog,
        name: str,
        threads: int = 4,
        publish_every: int = 1,
        pool: SimulatedPool | None = None,
    ) -> None:
        if publish_every < 1:
            raise ValueError("publish_every must be >= 1")
        self.dyn = dyn
        self.catalog = catalog
        self.name = name
        self.threads = int(threads)
        self.publish_every = int(publish_every)
        self.pool = pool
        self._pending = 0
        self._last_snapshot = None

    @property
    def pending_mutations(self) -> int:
        """Mutations applied since the last publish."""
        return self._pending

    def publish(self) -> int:
        """Snapshot the dynamic graph's current state; return the version."""
        snapshot = snapshot_from_dynamic(
            self.dyn,
            threads=self.threads,
            pool=self.pool,
            name=self.name,
            previous=self._last_snapshot,
        )
        version = self.catalog.publish(snapshot)
        self._last_snapshot = snapshot
        self._pending = 0
        return version

    def flush(self) -> int | None:
        """Publish buffered mutations, if any; return the new version."""
        if self._pending == 0:
            return None
        return self.publish()

    def _after_mutations(self, count: int) -> int | None:
        self._pending += count
        if self._pending >= self.publish_every:
            return self.publish()
        return None

    def insert_edge(self, u: int, v: int) -> int | None:
        """Apply an edge insertion; publish once the debounce window fills."""
        self.dyn.insert_edge(u, v)
        return self._after_mutations(1)

    def delete_edge(self, u: int, v: int) -> int | None:
        """Apply an edge deletion; publish once the debounce window fills."""
        self.dyn.delete_edge(u, v)
        return self._after_mutations(1)

    def apply_batch(self, insertions=(), deletions=()) -> int | None:
        """Apply a batched update via the parallel maintenance kernels.

        Runs :meth:`DynamicGraph.apply_batch` (one level-grouped repair
        for the whole batch) and counts every applied mutation against
        the debounce window.  Returns the published version, or
        ``None`` while buffered.
        """
        if self.pool is not None:
            report = self.dyn.apply_batch(
                insertions=insertions, deletions=deletions, pool=self.pool
            )
        else:
            report = self.dyn.apply_batch(
                insertions=insertions, deletions=deletions, threads=self.threads
            )
        if report.applied == 0:
            return None
        return self._after_mutations(report.applied)


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------


def synthetic_trace(
    num_requests: int,
    seed: int = 0,
    mean_gap: float = 50.0,
    distinct_metrics: int = 4,
    burst: int = 4,
) -> list[dict]:
    """A deterministic mixed workload trace.

    Arrivals are bursty (geometric gaps between bursts of up to
    ``burst`` simultaneous requests) and the query mix cycles through
    PBKS metrics, best-k, densest, and influential queries with enough
    repetition to exercise the result cache.  Same ``seed`` — same
    trace, bit for bit.
    """
    from repro.search.metrics import metric_names

    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    rng = np.random.default_rng(seed)
    metrics = metric_names()[: max(1, distinct_metrics)]
    trace: list[dict] = []
    arrival = 0.0
    remaining_in_burst = 0
    for i in range(num_requests):
        if remaining_in_burst == 0:
            arrival += float(rng.geometric(1.0 / mean_gap))
            remaining_in_burst = int(rng.integers(1, burst + 1))
        remaining_in_burst -= 1
        roll = int(rng.integers(0, 10))
        if roll < 5:
            entry = {"kind": "pbks", "metric": metrics[int(rng.integers(0, len(metrics)))]}
        elif roll < 7:
            entry = {"kind": "best_k", "metric": metrics[int(rng.integers(0, len(metrics)))]}
        elif roll < 8:
            entry = {"kind": "densest"}
        else:
            entry = {
                "kind": "influential",
                "k": int(rng.integers(1, 4)),
                "r": int(rng.integers(1, 4)),
                "weights": ("degree", "coreness", "uniform")[int(rng.integers(0, 3))],
            }
        entry["arrival"] = arrival
        trace.append(entry)
    return trace


def save_trace(trace: list[dict], path: str | os.PathLike[str]) -> None:
    """Write a trace as JSON lines."""
    with open(path, "w", encoding="utf-8") as handle:
        for entry in trace:
            handle.write(json.dumps(entry, sort_keys=True))
            handle.write("\n")


def load_trace(path: str | os.PathLike[str]) -> list[dict]:
    """Read a JSON-lines trace; :class:`WorkloadError` on malformed input."""
    trace: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        raise WorkloadError(f"trace file not found: {path}") from None
    except OSError as exc:
        raise WorkloadError(f"unreadable trace file {path}: {exc}") from exc
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WorkloadError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(entry, dict):
            raise WorkloadError(
                f"{path}:{lineno}: trace entry must be an object, "
                f"got {type(entry).__name__}"
            )
        trace.append(entry)
    return trace
