"""Seeded-bug fixture proving the detector actually detects.

A race detector that reports nothing is indistinguishable from one
that checks nothing, so the sanitizer gate runs this intentionally
racy kernel and *requires* it to be flagged.  The kernel performs the
canonical bug the substrate can never surface at runtime: every
virtual thread read-modify-writes the same plain (non-``Atomic*``)
cell.

Region labels here carry the ``selftest:`` prefix — the pytest
``--sanitize`` guard and CLI gate skip races in such regions when
deciding pass/fail, so intentional races never fail an honest build.
"""

from __future__ import annotations

from repro.parallel.scheduler import SimulatedPool
from repro.sanitizer.detector import RaceDetector, RaceReport

__all__ = [
    "SELFTEST_PREFIX",
    "run_racy_kernel",
    "selftest",
    "family_selftests",
]

#: Region labels starting with this prefix are expected to race.
SELFTEST_PREFIX = "selftest:"

_RACY_LOCATION = ("racy_total", 0)


def run_racy_kernel(threads: int = 4) -> RaceDetector:
    """Run the intentionally racy sum; returns the watching detector."""
    pool = SimulatedPool(threads=threads)
    detector = RaceDetector()
    total = [0]

    def worker(i: int, ctx) -> None:
        # the bug: a plain read-modify-write of one shared cell from
        # every virtual thread, with no Atomic* mediation
        ctx.read(_RACY_LOCATION)
        value = total[0]
        ctx.write(_RACY_LOCATION)
        total[0] = value + i  # sani: ok - seeded bug, the detector must flag it

    with detector.watch(pool):
        pool.parallel_for(
            list(range(threads * 8)), worker, label="selftest:racy_sum"
        )
    return detector


def selftest(threads: int = 4) -> tuple[bool, str]:
    """Check the detector flags the seeded bug; returns (ok, message).

    The acceptance bar: the report must carry the location key, the
    region label, and both thread ids.
    """
    if threads < 2:
        return False, "selftest needs >= 2 virtual threads"
    detector = run_racy_kernel(threads=threads)
    matching = [
        r
        for r in detector.races
        if r.location == _RACY_LOCATION and r.region == "selftest:racy_sum"
    ]
    if not matching:
        return (
            False,
            "seeded race NOT detected: the detector is not seeing plain "
            f"cross-thread writes ({detector.summary()})",
        )
    report: RaceReport = matching[0]
    if report.thread_a == report.thread_b:
        return False, f"degenerate thread pair in report: {report}"
    return True, f"seeded race detected: {report}"


def family_selftests() -> dict:
    """Seeded selftests of every analysis family, by family name.

    Each value is a zero-argument callable returning ``(ok, message)``.
    Imports are lazy so asking for the registry never pulls in a
    family's whole analysis stack.
    """

    def _race() -> tuple[bool, str]:
        return selftest()

    def _flow() -> tuple[bool, str]:
        from repro.sanitizer.flow import flow_selftest

        return flow_selftest()

    def _prove() -> tuple[bool, str]:
        from repro.sanitizer.prove import prove_selftest

        return prove_selftest()

    def _dist() -> tuple[bool, str]:
        from repro.sanitizer.dist import dist_selftest

        return dist_selftest()

    return {
        "race": _race,
        "flow": _flow,
        "prove": _prove,
        "dist": _dist,
    }
