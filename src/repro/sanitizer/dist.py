"""SimDist — SAN6xx static verification of the distributed protocol.

The cluster layer (:mod:`repro.cluster`) rests on three load-bearing
invariants that no SAN1xx-5xx pass can see, because they all stop at
single-pool kernels:

* **monotonicity** — ``distributed_core_decomposition`` converges to
  the unique greatest fixpoint *because* boundary-estimate updates
  never increase (chaotic relaxation);
* **BSP phase discipline** — shards communicate only in the exchange
  phase and compute against a frozen snapshot of the last exchange;
* **replay safety** — ``ClusterService`` failover is byte-identical
  *because* every handler reachable from a failover path is
  idempotent (last-writer-wins or min-combining writes only).

SimDist certifies these statically.  Each cluster module declares its
protocol facts as plain literals (``DIST_PROTOCOL``, ``WIRE_COUNTERS``,
``LWW_FIELDS`` ...) and the analyzer proves the obligations against
the AST, reusing SimFlow's module index/CFG and SimProve's affine
forms.  Like SAN5xx, results are proof certificates: suppression
markers are **not** honored — a failed obligation must be fixed or the
declaration amended.

Rules
=====

=======  ========  =====================================================
code     severity  meaning
=======  ========  =====================================================
SAN601   error     estimate store on a cross-shard path is not provably
                   monotone non-increasing (or is an order-sensitive
                   float fold)
SAN602   error     BSP phase violation: send outside the exchange
                   phase, compute-phase read of live (unfrozen) state,
                   missing pre-superstep freeze, or a recovery hook
                   that skips the snapshot rebuild step
SAN603   error     shard-ownership violation: parallel repair write not
                   provably confined to the owned item, or a frontier
                   insert not keyed by the inserted vertex's owner
SAN604   error     wire effect of a ``Network.send`` site is undeclared
                   in ``MESSAGE_SCHEMAS``, contradicts its declaration,
                   is not statically derivable, or a non-counter field
                   is written on the wire-accounting path
SAN605   warning   stale ``MESSAGE_SCHEMAS`` declaration: no send site
                   derives to this key any more
SAN606   error     message handler reachable from a failover path has a
                   write that is neither last-writer-wins on owned
                   state, min-combining, nor a declared metric —
                   replaying it would double-apply
=======  ========  =====================================================

The certified result ships as ``dist_manifest.json`` next to this
file; :func:`verify_dist_manifest` detects drift exactly like the
SAN5xx proof manifest.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.sanitizer.cfg import guarding_tests
from repro.sanitizer.flow import ModuleIndex, ModuleInfo, default_index
from repro.sanitizer.intervals import aff_add, aff_const, aff_split, aff_sub
from repro.sanitizer.lint import LintFinding

__all__ = [
    "DistFinding",
    "ProtocolCertificate",
    "DistReport",
    "DistAnalyzer",
    "analyze_dist",
    "analyze_protocol_source",
    "DIST_MANIFEST_SCHEMA",
    "DEFAULT_DIST_MANIFEST_PATH",
    "dist_manifest_payload",
    "load_dist_manifest",
    "write_dist_manifest",
    "diff_dist_manifest",
    "verify_dist_manifest",
    "dist_selftest",
]

#: Package whose modules carry ``DIST_PROTOCOL`` declarations.
CLUSTER_PACKAGE = "repro.cluster"

#: Module holding the ``KERNELS`` registry and ``MESSAGE_SCHEMAS``.
KERNELS_MODULE = "repro.sanitizer.kernels"

#: ``min``-flavored callables accepted as min-combining folds.
_MIN_ATTRS = ("minimum", "fmin", "min")

#: Container mutators checked for locality in handlers (SAN606) and
#: counter-confinement on the wire path (SAN604).
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "setdefault",
    }
)


@dataclass(frozen=True)
class DistFinding(LintFinding):
    """A SAN6xx finding plus its protocol-stable key."""

    key: str = ""


@dataclass(frozen=True)
class ProtocolSpec:
    """One module's declared distributed-protocol facts."""

    name: str
    module: str
    kernels: tuple[str, ...] = ()
    estimates: tuple[str, ...] = ()
    live: tuple[str, ...] = ()
    compute_roots: tuple[str, ...] = ()
    send_scopes: tuple[str, ...] = ()
    recovery_roots: tuple[str, ...] = ()
    rebuild_calls: tuple[str, ...] = ()
    handler_roots: tuple[str, ...] = ()
    metrics: tuple[str, ...] = ()
    lww: tuple[str, ...] = ()


@dataclass
class ProtocolCertificate:
    """Proof outcome for one declared protocol."""

    name: str
    module: str
    kernels: tuple[str, ...] = ()
    status: str = "certified"  # certified | violations
    #: obligation key -> human-readable proven fact (or VIOLATED: ...)
    obligations: dict[str, str] = field(default_factory=dict)
    #: send-site key -> derived wire descriptor
    sends: dict[str, dict] = field(default_factory=dict)
    #: handler qualpath -> write-classification summary
    handlers: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "module": self.module,
            "kernels": sorted(self.kernels),
            "status": self.status,
            "obligations": dict(sorted(self.obligations.items())),
            "sends": {k: self.sends[k] for k in sorted(self.sends)},
            "handlers": dict(sorted(self.handlers.items())),
        }


@dataclass
class DistReport:
    """Outcome of one SimDist run over the cluster layer."""

    certificates: dict[str, ProtocolCertificate] = field(default_factory=dict)
    findings: list[DistFinding] = field(default_factory=list)
    #: kernel name -> owning protocol (or "unclassified")
    kernels: dict[str, str] = field(default_factory=dict)
    #: declared MESSAGE_SCHEMAS, verbatim
    schemas: dict = field(default_factory=dict)
    modules: int = 0

    @property
    def errors(self) -> list[DistFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[DistFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def certified(self) -> list[str]:
        return sorted(
            name
            for name, cert in self.certificates.items()
            if cert.status == "certified"
        )


# ======================================================================
# AST helpers
# ======================================================================


def _module_literal(info: ModuleInfo, name: str):
    """Value of a module-level literal assignment, or None."""
    for stmt in info.tree.body:
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
        if isinstance(target, ast.Name) and target.id == name:
            try:
                return ast.literal_eval(stmt.value)
            except (ValueError, TypeError, SyntaxError):
                return None
    return None


def _literal_line(info: ModuleInfo, name: str) -> int:
    for stmt in info.tree.body:
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
        if isinstance(target, ast.Name) and target.id == name:
            return stmt.lineno
    return 1


def _assign_owners(tree: ast.Module) -> dict[int, str]:
    """id(node) -> qualpath of the enclosing function (``<module>``
    at top level; ClassDef names become qualpath prefixes so owners
    align with :attr:`ModuleInfo.functions` keys)."""
    owners: dict[int, str] = {id(tree): "<module>"}

    def visit(node: ast.AST, prefix: str, owner: str) -> None:
        for child in ast.iter_child_nodes(node):
            owners[id(child)] = owner
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                visit(child, qual + ".", qual)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.", owner)
            else:
                visit(child, prefix, owner)

    visit(tree, "", "<module>")
    return owners


def _walk_local(fn: ast.AST):
    """Every node under ``fn`` excluding nested function subtrees."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameters plus every locally-bound name (incl. loop targets)."""
    names: set[str] = set()
    args = fn.args
    for a in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(a.arg)
    for node in _walk_local(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _base_name_of(expr: ast.AST) -> str | None:
    """Strip Subscript layers down to a Name id."""
    while isinstance(expr, ast.Subscript):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _attr_chain(expr: ast.AST) -> list[str]:
    """Attribute names plus the terminal Name id of a dotted chain."""
    chain: list[str] = []
    while isinstance(expr, (ast.Attribute, ast.Subscript, ast.Call)):
        if isinstance(expr, ast.Attribute):
            chain.append(expr.attr)
            expr = expr.value
        elif isinstance(expr, ast.Subscript):
            expr = expr.value
        else:
            expr = expr.func
    if isinstance(expr, ast.Name):
        chain.append(expr.id)
    return chain


def _strip_value(expr: ast.AST) -> ast.AST:
    """Peel ``int(x)`` / ``x.copy()`` / subscript layers off a load."""
    while True:
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "int"
            and len(expr.args) == 1
        ):
            expr = expr.args[0]
        elif (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "copy"
            and not expr.args
        ):
            expr = expr.func.value
        elif isinstance(expr, ast.Subscript):
            expr = expr.value
        else:
            return expr


def _module_int_literals(info: ModuleInfo) -> dict[str, int]:
    """Module-level ``NAME = <int>`` constants (wire-format sizes)."""
    out: dict[str, int] = {}
    for stmt in info.tree.body:
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
        if not isinstance(target, ast.Name):
            continue
        value = stmt.value
        if (
            isinstance(value, ast.Constant)
            and isinstance(value.value, int)
            and not isinstance(value.value, bool)
        ):
            out[target.id] = value.value
    return out


def _byte_affine(expr: ast.AST, literals: dict[str, int]):
    """Affine form of a byte-count expression over module constants."""
    if (
        isinstance(expr, ast.Constant)
        and isinstance(expr.value, int)
        and not isinstance(expr.value, bool)
    ):
        return aff_const(expr.value)
    if isinstance(expr, ast.Name):
        value = literals.get(expr.id)
        if value is not None:
            return aff_const(value)
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.Sub)):
        left = _byte_affine(expr.left, literals)
        right = _byte_affine(expr.right, literals)
        if left is None or right is None:
            return None
        if isinstance(expr.op, ast.Add):
            return aff_add(left, right)
        return aff_sub(left, right)
    return None


def _const_bytes(expr: ast.AST, literals: dict[str, int]) -> int | None:
    aff = _byte_affine(expr, literals)
    if aff is None:
        return None
    const, syms = aff_split(aff)
    return const if not syms else None


def _looks_like_count(expr: ast.AST) -> bool:
    """Heuristic: the non-constant factor of a payload expression."""
    return any(
        isinstance(n, (ast.Subscript, ast.Call, ast.Name))
        for n in ast.walk(expr)
    )


# ======================================================================
# the analyzer
# ======================================================================


class DistAnalyzer:
    """SAN6xx interprocedural verifier over the cluster layer."""

    def __init__(self, index: ModuleIndex | None = None) -> None:
        self._index = index if index is not None else default_index()
        self._bindings_cache: dict[int, dict[str, list]] = {}
        self._owners_cache: dict[int, dict[int, str]] = {}

    # -- scope machinery -----------------------------------------------

    def _owners(self, info: ModuleInfo) -> dict[int, str]:
        cached = self._owners_cache.get(id(info))
        if cached is None:
            cached = _assign_owners(info.tree)
            self._owners_cache[id(info)] = cached
        return cached

    def _bindings(self, fn: ast.AST) -> dict[str, list]:
        """name -> [("expr", value, 0) | ("unpack", value, idx)] in
        source order, from the function's own (non-nested) body."""
        cached = self._bindings_cache.get(id(fn))
        if cached is not None:
            return cached
        out: dict[str, list] = {}
        for node in _walk_local(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.setdefault(target.id, []).append(
                            ("expr", node.value, 0)
                        )
                    elif isinstance(target, ast.Tuple):
                        for idx, elt in enumerate(target.elts):
                            if isinstance(elt, ast.Name):
                                out.setdefault(elt.id, []).append(
                                    ("unpack", node.value, idx)
                                )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    out.setdefault(node.target.id, []).append(
                        ("expr", node.value, 0)
                    )
        self._bindings_cache[id(fn)] = out
        return out

    def _lookup(
        self, info: ModuleInfo, owner: str, name: str
    ) -> tuple[list, str]:
        """Bindings of ``name`` visible from ``owner``, innermost-out."""
        parts = owner.split(".") if owner != "<module>" else []
        for depth in range(len(parts), 0, -1):
            qual = ".".join(parts[:depth])
            fn = info.functions.get(qual)
            if fn is None:
                continue
            entries = self._bindings(fn)
            if name in entries:
                return entries[name], qual
        return [], owner

    def _resolve_tail(self, info: ModuleInfo, name: str) -> list[tuple]:
        """All module functions whose qualpath is ``name`` or ends in
        ``.name`` (declared roots name the tail, not the full path)."""
        out = []
        for qual, fn in info.functions.items():
            if qual == name or qual.endswith("." + name):
                out.append((qual, fn))
        return out

    def _closure_qual(self, info: ModuleInfo, owner: str, name: str) -> str | None:
        """Resolve a bare Name used at ``owner`` to a function qualpath."""
        parts = owner.split(".") if owner != "<module>" else []
        for depth in range(len(parts), -1, -1):
            prefix = ".".join(parts[:depth])
            qual = f"{prefix}.{name}" if prefix else name
            if qual in info.functions:
                return qual
        return None

    # -- estimate dataflow (SAN601) ------------------------------------

    def _unpack_candidates(
        self, info: ModuleInfo, owner: str, value: ast.AST, idx: int
    ) -> list[tuple[ast.AST, str]] | None:
        """Expressions a tuple-unpack slot may hold, with owner context.

        ``x, y, _ = D[k]`` chases every module-wide ``D[...] = f(...)``
        store to ``f``'s returned tuple element.  ``None`` = unknown
        (classification then fails closed).
        """
        if isinstance(value, ast.Tuple):
            if idx < len(value.elts):
                return [(value.elts[idx], owner)]
            return None
        if isinstance(value, ast.Subscript):
            base = _base_name_of(value)
            if base is None:
                return None
            owners = self._owners(info)
            candidates: list[tuple[ast.AST, str]] = []
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and _base_name_of(target) == base
                    ):
                        call = node.value
                        if not (
                            isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Name)
                        ):
                            return None
                        resolved = self._resolve_tail(info, call.func.id)
                        if not resolved:
                            return None
                        for qual, fn in resolved:
                            ret = self._return_tuple_elt(fn, idx)
                            if ret is None:
                                return None
                            candidates.append((ret, qual))
            return candidates or None
        return None

    @staticmethod
    def _return_tuple_elt(fn: ast.AST, idx: int) -> ast.AST | None:
        for node in _walk_local(fn):
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Tuple
            ):
                if idx < len(node.value.elts):
                    return node.value.elts[idx]
        return None

    def _is_estimate_load(
        self,
        info: ModuleInfo,
        owner: str,
        expr: ast.AST,
        est_names: frozenset[str],
        depth: int = 3,
    ) -> bool:
        """Is ``expr`` (after int()/copy()/[] strips) a value taken
        from declared estimate state?  Fails closed: every binding a
        name may take must itself be an estimate load."""
        if depth <= 0:
            return False
        expr = _strip_value(expr)
        if not isinstance(expr, ast.Name):
            return False
        if expr.id in est_names:
            return True
        entries, bind_owner = self._lookup(info, owner, expr.id)
        if not entries:
            return False
        for kind, value, idx in entries:
            if kind == "expr":
                if not self._is_estimate_load(
                    info, bind_owner, value, est_names, depth - 1
                ):
                    return False
            else:
                candidates = self._unpack_candidates(
                    info, bind_owner, value, idx
                )
                if not candidates:
                    return False
                for cand, cand_owner in candidates:
                    if not self._is_estimate_load(
                        info, cand_owner, cand, est_names, depth - 1
                    ):
                        return False
        return True

    def _reads_estimate(
        self,
        info: ModuleInfo,
        owner: str,
        expr: ast.AST,
        est_names: frozenset[str],
    ) -> bool:
        """Any Name in ``expr`` that loads (directly or through
        bindings) declared estimate state."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in est_names:
                    return True
                if self._is_estimate_load(info, owner, node, est_names):
                    return True
        return False

    def _is_cap_hindex(
        self,
        info: ModuleInfo,
        owner: str,
        value: ast.AST,
        est_names: frozenset[str],
    ) -> bool:
        """``int(ok[-1]) if ok.size else 0`` with
        ``ok = flatnonzero(suffix >= arange(cap + 1))`` and
        ``cap = int(<estimate>[v])`` — the h-index recompute is bounded
        by the current estimate, hence non-increasing."""
        if not isinstance(value, ast.IfExp):
            return False
        orelse = value.orelse
        if not (isinstance(orelse, ast.Constant) and orelse.value == 0):
            return False
        for node in ast.walk(value.body):
            if not isinstance(node, ast.Subscript):
                continue
            base = _base_name_of(node)
            if base is None:
                continue
            entries, bind_owner = self._lookup(info, owner, base)
            for kind, bexpr, _ in entries:
                if kind != "expr":
                    continue
                if not (
                    isinstance(bexpr, ast.Call)
                    and isinstance(bexpr.func, ast.Attribute)
                    and bexpr.func.attr == "flatnonzero"
                    and len(bexpr.args) == 1
                    and isinstance(bexpr.args[0], ast.Compare)
                ):
                    continue
                cmp_ = bexpr.args[0]
                if not all(
                    isinstance(op, (ast.GtE, ast.Gt)) for op in cmp_.ops
                ):
                    continue
                for sub in ast.walk(cmp_):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "arange"
                    ):
                        if self._reads_estimate(
                            info, bind_owner, sub, est_names
                        ):
                            return True
        return False

    def _classify_estimate_store(
        self,
        info: ModuleInfo,
        owner: str,
        store: ast.Assign,
        est_names: frozenset[str],
    ) -> str | None:
        """Monotone-store class of ``<est>[idx] = value``, or None."""
        value = store.value
        # (a) explicit fetch_min combine
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "fetch_min"
        ):
            return "fetch_min"
        # (b) min-combining fold against the current estimate
        if isinstance(value, ast.Call):
            func = value.func
            is_min = (isinstance(func, ast.Name) and func.id == "min") or (
                isinstance(func, ast.Attribute) and func.attr in _MIN_ATTRS
            )
            if is_min and any(
                self._reads_estimate(info, owner, arg, est_names)
                for arg in value.args
            ):
                return "min-combining"
        # (c) cap-bounded h-index recompute
        if self._is_cap_hindex(info, owner, value, est_names):
            return "cap-bounded"
        # (d) pure transport of an estimate already proven monotone
        if self._is_estimate_load(info, owner, value, est_names):
            return "transport"
        # (e) store guarded by a strict decrease test
        fn = info.functions.get(owner)
        if fn is not None:
            for test in guarding_tests(fn, store):
                for node in ast.walk(test):
                    if (
                        isinstance(node, ast.Compare)
                        and len(node.ops) == 1
                        and isinstance(node.ops[0], (ast.Lt, ast.LtE))
                        and self._reads_estimate(
                            info, owner, node.comparators[0], est_names
                        )
                    ):
                        return "guarded-decrease"
        return None

    def _monotone_diagnosis(self, value: ast.AST) -> str:
        for node in ast.walk(value):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Mult)
            ):
                return "may raise the estimate"
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                return "order-sensitive float fold"
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id == "float":
                    return "order-sensitive float fold"
                if node.func.id == "max":
                    return "may raise the estimate"
        return "not classified as monotone (fail closed)"

    def _check_monotone(
        self,
        spec: ProtocolSpec,
        info: ModuleInfo,
        cert: ProtocolCertificate,
        report: DistReport,
    ) -> None:
        if not spec.estimates and not spec.live:
            cert.obligations["monotone:updates"] = (
                "vacuous: no estimate state declared"
            )
            return
        est_names = frozenset(spec.estimates) | frozenset(spec.live)
        owners = self._owners(info)
        counts: dict[str, int] = {}
        ordinal: dict[str, int] = {}
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    base = _base_name_of(target)
                    if base is None or base not in est_names:
                        continue
                    owner = owners.get(id(node), "<module>")
                    ordinal[owner] = ordinal.get(owner, 0) + 1
                    key = f"monotone:{owner}:{base}#{ordinal[owner]}"
                    if isinstance(node, ast.AugAssign):
                        self._emit(
                            report,
                            cert,
                            info,
                            node,
                            "SAN601",
                            "error",
                            f"augmented store into estimate {base!r} in "
                            f"{owner} may raise the estimate — only "
                            "fetch_min / guarded-decrease stores may "
                            "cross a shard boundary",
                            key,
                        )
                        continue
                    cls = self._classify_estimate_store(
                        info, owner, node, est_names
                    )
                    if cls is None:
                        why = self._monotone_diagnosis(node.value)
                        self._emit(
                            report,
                            cert,
                            info,
                            node,
                            "SAN601",
                            "error",
                            f"store into estimate {base!r} in {owner} "
                            f"{why} — only fetch_min / min-combining / "
                            "cap-bounded / guarded-decrease stores may "
                            "flow into shipped boundary estimates",
                            key,
                        )
                    else:
                        counts[cls] = counts.get(cls, 0) + 1
        total = sum(counts.values())
        summary = " ".join(
            f"{k}={counts[k]}" for k in sorted(counts)
        ) or "no estimate stores"
        cert.obligations["monotone:updates"] = (
            f"{total} estimate store(s) proven non-increasing: {summary}"
        )

    # -- BSP phase discipline (SAN602) ---------------------------------

    def _send_sites(self, info: ModuleInfo) -> list[tuple[ast.Call, str]]:
        """Every ``*.send(...)`` call whose receiver chain mentions the
        network, with its owning function qualpath, in source order."""
        owners = self._owners(info)
        sites = []
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
                and "network" in _attr_chain(node.func.value)
            ):
                sites.append((node, owners.get(id(node), "<module>")))
        sites.sort(key=lambda s: (s[0].lineno, s[0].col_offset))
        return sites

    def _superstep_calls(
        self, info: ModuleInfo, barrier: str
    ) -> list[tuple[ast.Call, str]]:
        owners = self._owners(info)
        out = []
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == barrier
            ):
                out.append((node, owners.get(id(node), "<module>")))
        return out

    def _compute_roots(
        self, spec: ProtocolSpec, info: ModuleInfo, steps: list
    ) -> set[str]:
        """Node-fn closures passed to supersteps, plus declared compute
        roots, closed under module-local bare-name calls."""
        roots: set[str] = set()
        for call, owner in steps:
            arg = None
            if len(call.args) >= 2:
                arg = call.args[1]
            for kw in call.keywords:
                if kw.arg == "node_fns":
                    arg = kw.value
            if arg is None:
                continue
            for value, value_owner in self._dict_values(info, owner, arg):
                if isinstance(value, ast.Name):
                    qual = self._closure_qual(info, value_owner, value.id)
                    if qual:
                        roots.add(qual)
                elif isinstance(value, ast.Call) and isinstance(
                    value.func, ast.Name
                ):
                    factory = self._closure_qual(
                        info, value_owner, value.func.id
                    )
                    if factory:
                        fn = info.functions[factory]
                        for node in _walk_local(fn):
                            if isinstance(node, ast.Return) and isinstance(
                                node.value, ast.Name
                            ):
                                roots.add(f"{factory}.{node.value.id}")
        for name in spec.compute_roots:
            for qual, _fn in self._resolve_tail(info, name):
                roots.add(qual)
        # transitive closure over module-local bare-name calls
        frontier = list(roots)
        while frontier:
            qual = frontier.pop()
            fn = info.functions.get(qual)
            if fn is None:
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name
                ):
                    callee = self._closure_qual(info, qual, node.func.id)
                    if callee and callee not in roots:
                        roots.add(callee)
                        frontier.append(callee)
        return roots

    def _dict_values(self, info: ModuleInfo, owner: str, arg: ast.AST):
        """(value-expr, owner) pairs of a node_fns dict argument,
        chasing a Name through its local binding."""
        if isinstance(arg, ast.Name):
            entries, bind_owner = self._lookup(info, owner, arg.id)
            for kind, value, _ in entries:
                if kind == "expr":
                    yield from self._dict_values(info, bind_owner, value)
            return
        if isinstance(arg, ast.Dict):
            for value in arg.values:
                yield value, owner
        elif isinstance(arg, ast.DictComp):
            yield arg.value, owner

    def _check_phase(
        self,
        spec: ProtocolSpec,
        info: ModuleInfo,
        cert: ProtocolCertificate,
        report: DistReport,
        barrier: str,
    ) -> set[str]:
        steps = self._superstep_calls(info, barrier)
        allowed: set[str] = set()
        for call, owner in steps:
            arg = None
            if len(call.args) >= 3:
                arg = call.args[2]
            for kw in call.keywords:
                if kw.arg == "exchange":
                    arg = kw.value
            if isinstance(arg, ast.Name):
                qual = self._closure_qual(info, owner, arg.id)
                if qual:
                    allowed.add(qual)
        for name in spec.send_scopes:
            for qual, _fn in self._resolve_tail(info, name):
                allowed.add(qual)
        sites = self._send_sites(info)
        for node, owner in sites:
            ok = any(
                owner == a or owner.endswith("." + a) for a in allowed
            )
            if not ok:
                self._emit(
                    report,
                    cert,
                    info,
                    node,
                    "SAN602",
                    "error",
                    f"Network.send outside the exchange phase (in "
                    f"{owner}; sends are confined to "
                    f"{sorted(allowed) or spec.send_scopes or 'the exchange closure'})",
                    f"phase:{owner}:send@{node.lineno}",
                )
        cert.obligations["phase:sends"] = (
            f"{len(sites)} send site(s) confined to "
            f"{sorted(allowed) if allowed else 'none declared'}"
        )
        roots = self._compute_roots(spec, info, steps)
        live = frozenset(spec.live)
        if live and roots:
            for qual in sorted(roots):
                fn = info.functions.get(qual)
                if fn is None:
                    continue
                for node in ast.walk(fn):
                    if (
                        isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in live
                    ):
                        self._emit(
                            report,
                            cert,
                            info,
                            node,
                            "SAN602",
                            "error",
                            f"compute phase {qual} reads live state "
                            f"{node.id!r} without an intervening "
                            "superstep barrier — freeze it into a "
                            "snapshot before the superstep",
                            f"phase:{qual}:read:{node.id}",
                        )
        if live and steps:
            for call, owner in steps:
                caller = info.functions.get(owner)
                if caller is None:
                    continue
                frozen = False
                for node in _walk_local(caller):
                    if isinstance(node, ast.Assign) and isinstance(
                        node.value, ast.Call
                    ):
                        func = node.value.func
                        if (
                            isinstance(func, ast.Attribute)
                            and func.attr == "copy"
                            and isinstance(func.value, ast.Name)
                            and func.value.id in live
                        ):
                            frozen = True
                if frozen:
                    cert.obligations["phase:freeze"] = (
                        "live state snapshotted (.copy()) before each "
                        "superstep"
                    )
                else:
                    self._emit(
                        report,
                        cert,
                        info,
                        call,
                        "SAN602",
                        "error",
                        f"superstep driver {owner} never freezes live "
                        f"state {sorted(live)} into a snapshot",
                        f"phase:{owner}:freeze",
                    )
                    cert.obligations["phase:freeze"] = (
                        "VIOLATED: missing pre-superstep freeze"
                    )
        elif not live:
            cert.obligations["phase:freeze"] = (
                "not-applicable: no live state declared"
            )
        if spec.recovery_roots:
            rebuilds = frozenset(spec.rebuild_calls)
            for name in spec.recovery_roots:
                resolved = self._resolve_tail(info, name)
                if not resolved:
                    self._emit(
                        report,
                        cert,
                        info,
                        info.tree,
                        "SAN602",
                        "error",
                        f"declared recovery root {name!r} not found in "
                        f"{info.name}",
                        f"phase:recovery:{name}",
                    )
                    continue
                for qual, fn in resolved:
                    called = False
                    for node in ast.walk(fn):
                        if isinstance(node, ast.Call):
                            func = node.func
                            callee = (
                                func.id
                                if isinstance(func, ast.Name)
                                else func.attr
                                if isinstance(func, ast.Attribute)
                                else None
                            )
                            if callee in rebuilds:
                                called = True
                    if not called:
                        self._emit(
                            report,
                            cert,
                            info,
                            fn,
                            "SAN602",
                            "error",
                            f"recovery hook {qual} skips the snapshot "
                            f"rebuild (freeze) step — expected a call "
                            f"to one of {sorted(rebuilds)}",
                            f"phase:recovery:{qual}",
                        )
                        cert.obligations["phase:recovery-rebuild"] = (
                            "VIOLATED: rebuild call missing"
                        )
            cert.obligations.setdefault(
                "phase:recovery-rebuild",
                f"recovery hooks rebuild state via {sorted(rebuilds)}",
            )
        else:
            cert.obligations["phase:recovery-rebuild"] = (
                "not-applicable: no recovery hooks declared"
            )
        return roots

    # -- shard-ownership disjointness (SAN603) -------------------------

    def _check_ownership(
        self,
        spec: ProtocolSpec,
        info: ModuleInfo,
        cert: ProtocolCertificate,
        report: DistReport,
        roots: set[str],
        partition: dict | None,
        shard_info: ModuleInfo | None,
    ) -> None:
        if not roots:
            cert.obligations["ownership:parallel-writes"] = (
                "not-applicable: no shard-parallel compute phase"
            )
            return
        owner_name = (partition or {}).get("owner", "owner")
        if shard_info is not None and partition is not None:
            builder = partition.get("builder", "shard_graph")
            proven = False
            for qual, fn in self._resolve_tail(shard_info, builder):
                for node in ast.walk(fn):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "flatnonzero"
                        and len(node.args) == 1
                        and isinstance(node.args[0], ast.Compare)
                        and len(node.args[0].ops) == 1
                        and isinstance(node.args[0].ops[0], ast.Eq)
                    ):
                        proven = True
            if proven:
                cert.obligations["ownership:partition"] = (
                    f"{builder} derives owned rows by owner-equality "
                    "flatnonzero — shards partition the vertex set"
                )
            else:
                self._emit(
                    report,
                    cert,
                    shard_info,
                    shard_info.tree,
                    "SAN603",
                    "error",
                    f"partition builder {builder!r} has no owner-"
                    "equality row selection — owned sets not provably "
                    "disjoint",
                    "ownership:partition",
                )
                cert.obligations["ownership:partition"] = (
                    "VIOLATED: no disjoint owned-row derivation"
                )
        checked = 0
        violated = False
        for qual in sorted(roots):
            fn = info.functions.get(qual)
            if fn is None:
                continue
            for node in ast.walk(fn):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "parallel_for"
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Name)
                ):
                    continue
                worker_qual = self._closure_qual(
                    info, qual, node.args[1].id
                )
                worker = (
                    info.functions.get(worker_qual) if worker_qual else None
                )
                if worker is None:
                    continue
                checked += 1
                if not self._worker_writes_owned(
                    worker, info, report, cert
                ):
                    violated = True
        if violated:
            cert.obligations["ownership:parallel-writes"] = (
                "VIOLATED: a shard-parallel write escapes the owned item"
            )
        else:
            cert.obligations["ownership:parallel-writes"] = (
                f"{checked} parallel_for worker(s): every store indexed "
                "by the owned item — write-disjoint across shards"
            )
        frontier_ok = True
        inserts = 0
        for node in ast.walk(info.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("add", "update")
                and isinstance(node.func.value, ast.Subscript)
            ):
                continue
            key = node.func.value.slice
            owner_sub = None
            for sub in ast.walk(key):
                if (
                    isinstance(sub, ast.Subscript)
                    and _base_name_of(sub) == owner_name
                ):
                    owner_sub = sub
            if owner_sub is None:
                continue
            inserts += 1
            keyed = _strip_value(owner_sub.slice)
            ok = False
            for arg in node.args:
                inserted = _strip_value(arg)
                if (
                    isinstance(inserted, ast.Name)
                    and isinstance(keyed, ast.Name)
                    and inserted.id == keyed.id
                ):
                    ok = True
            if not ok:
                frontier_ok = False
                self._emit(
                    report,
                    cert,
                    info,
                    node,
                    "SAN603",
                    "error",
                    "frontier insert is not keyed by the inserted "
                    f"vertex's owner ({owner_name}[v] must index the "
                    "slot that receives v)",
                    f"ownership:frontier@{node.lineno}",
                )
        if inserts:
            cert.obligations["ownership:frontier"] = (
                "VIOLATED: mis-keyed frontier insert"
                if not frontier_ok
                else f"{inserts} frontier insert(s) keyed by the "
                "inserted vertex's owner"
            )

    def _worker_writes_owned(
        self,
        worker: ast.FunctionDef,
        info: ModuleInfo,
        report: DistReport,
        cert: ProtocolCertificate,
    ) -> bool:
        args = worker.args
        params = list(args.posonlyargs) + list(args.args)
        if not params:
            return True
        item = params[0].arg
        ok = True
        for node in _walk_local(worker):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                idx = _strip_value(target.slice)
                if isinstance(idx, ast.Name) and idx.id == item:
                    continue
                ok = False
                self._emit(
                    report,
                    cert,
                    info,
                    node,
                    "SAN603",
                    "error",
                    f"shard-parallel worker {worker.name!r} writes a "
                    "slot not indexed by its owned item "
                    f"{item!r} — not provably write-disjoint across "
                    "shards",
                    f"ownership:{worker.name}@{node.lineno}",
                )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "write"
                and node.args
                and isinstance(node.args[0], ast.Tuple)
                and len(node.args[0].elts) >= 2
            ):
                declared = _strip_value(node.args[0].elts[1])
                if not (
                    isinstance(declared, ast.Name) and declared.id == item
                ):
                    ok = False
                    self._emit(
                        report,
                        cert,
                        info,
                        node,
                        "SAN603",
                        "error",
                        f"worker {worker.name!r} declares a write slot "
                        f"other than its owned item {item!r}",
                        f"ownership:{worker.name}:decl@{node.lineno}",
                    )
        return ok

    # -- replay safety of failover handlers (SAN606) -------------------

    def _check_replay(
        self,
        spec: ProtocolSpec,
        info: ModuleInfo,
        cert: ProtocolCertificate,
        report: DistReport,
        lww: frozenset[str],
        metrics: frozenset[str],
    ) -> None:
        est_names = frozenset(spec.estimates) | frozenset(spec.live)
        for name in spec.handler_roots:
            resolved = self._resolve_tail(info, name)
            if not resolved:
                self._emit(
                    report,
                    cert,
                    info,
                    info.tree,
                    "SAN606",
                    "error",
                    f"declared handler root {name!r} not found in "
                    f"{info.name}",
                    f"replay:{name}",
                )
                continue
            for qual, fn in resolved:
                summary = self._judge_handler(
                    qual, fn, info, cert, report, est_names, lww, metrics
                )
                cert.handlers[qual] = summary
                cert.obligations[f"replay:{qual}"] = summary

    def _judge_handler(
        self,
        qual: str,
        fn: ast.FunctionDef,
        info: ModuleInfo,
        cert: ProtocolCertificate,
        report: DistReport,
        est_names: frozenset[str],
        lww: frozenset[str],
        metrics: frozenset[str],
    ) -> str:
        locals_ = _local_names(fn)
        counts = {"lww": 0, "metric": 0, "local": 0}
        violated = False

        def judge_target(node: ast.AST, target: ast.AST, aug: bool) -> None:
            nonlocal violated
            if isinstance(target, ast.Tuple):
                for elt in target.elts:
                    judge_target(node, elt, aug)
                return
            if isinstance(target, ast.Name):
                counts["local"] += 1
                return
            if isinstance(target, ast.Attribute):
                if target.attr in metrics:
                    counts["metric"] += 1
                    return
                if target.attr in lww and not aug:
                    counts["lww"] += 1
                    return
            if isinstance(target, ast.Subscript):
                base = _base_name_of(target)
                if base in locals_:
                    counts["local"] += 1
                    return
                if not aug and base in est_names:
                    counts["lww"] += 1
                    return
                if not aug and base is not None:
                    free = {
                        n.id
                        for n in ast.walk(getattr(node, "value", node))
                        if isinstance(n, ast.Name)
                    }
                    if base not in free:
                        counts["lww"] += 1
                        return
            violated = True
            self._emit(
                report,
                cert,
                info,
                node,
                "SAN606",
                "error",
                f"handler {qual} write is neither last-writer-wins on "
                "owned state, min-combining, nor a declared metric — "
                "replaying this handler double-applies it",
                f"replay:{qual}@{node.lineno}",
            )

        for node in _walk_local(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    judge_target(node, target, aug=False)
            elif isinstance(node, ast.AnnAssign):
                judge_target(node, node.target, aug=False)
            elif isinstance(node, ast.AugAssign):
                judge_target(node, node.target, aug=True)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                base = _base_name_of(_strip_value(node.func.value))
                if base in locals_:
                    counts["local"] += 1
                else:
                    violated = True
                    self._emit(
                        report,
                        cert,
                        info,
                        node,
                        "SAN606",
                        "error",
                        f"handler {qual} mutates non-local container "
                        f"via .{node.func.attr}() — not replay-safe",
                        f"replay:{qual}:mut@{node.lineno}",
                    )
        if violated:
            return "VIOLATED: non-idempotent write"
        return (
            f"lww={counts['lww']} metric={counts['metric']} "
            f"local={counts['local']}"
        )

    # -- finding plumbing ----------------------------------------------

    def _emit(
        self,
        report: DistReport,
        cert: ProtocolCertificate | None,
        info: ModuleInfo,
        node: ast.AST,
        code: str,
        severity: str,
        message: str,
        key: str = "",
    ) -> None:
        report.findings.append(
            DistFinding(
                path=info.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                severity=severity,
                message=message,
                key=key,
            )
        )
        if cert is not None and severity == "error":
            cert.status = "violations"

    # -- wire effects vs MESSAGE_SCHEMAS (SAN604/605) ------------------

    def _wire_descriptor(
        self, expr: ast.AST, literals: dict[str, int]
    ) -> dict | None:
        """Statically-derived ``{header_bytes, per_item_bytes, count}``
        of a send's byte-count expression, or None."""
        const = _const_bytes(expr, literals)
        if const is not None:
            return {"header_bytes": const, "per_item_bytes": 0, "count": ""}
        header = 0
        payload = expr
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            left = _const_bytes(expr.left, literals)
            right = _const_bytes(expr.right, literals)
            if left is not None:
                header, payload = left, expr.right
            elif right is not None:
                header, payload = right, expr.left
            else:
                return None
        if not (
            isinstance(payload, ast.BinOp)
            and isinstance(payload.op, ast.Mult)
        ):
            return None
        for per_side, count_side in (
            (payload.left, payload.right),
            (payload.right, payload.left),
        ):
            per: int | str | None = _const_bytes(per_side, literals)
            if per is None and isinstance(per_side, ast.Attribute):
                per = per_side.attr
            if per is not None and _looks_like_count(count_side):
                return {
                    "header_bytes": header,
                    "per_item_bytes": per,
                    "count": ast.unparse(count_side),
                }
        return None

    def _derive_sends(
        self, modules: dict[str, ModuleInfo]
    ) -> dict[str, tuple[dict | None, ModuleInfo, ast.Call]]:
        """site key -> (descriptor-or-None, module, call) across the
        cluster layer.  Keys are ``<module-tail>.<fn-tail>#<ordinal>``."""
        out: dict[str, tuple[dict | None, ModuleInfo, ast.Call]] = {}
        for name in sorted(modules):
            info = modules[name]
            literals = _module_int_literals(info)
            ordinal: dict[str, int] = {}
            for call, owner in self._send_sites(info):
                nbytes = None
                if len(call.args) >= 3:
                    nbytes = call.args[2]
                for kw in call.keywords:
                    if kw.arg == "nbytes":
                        nbytes = kw.value
                tail = f"{name.rsplit('.', 1)[-1]}.{owner.rsplit('.', 1)[-1]}"
                ordinal[tail] = ordinal.get(tail, 0) + 1
                key = f"{tail}#{ordinal[tail]}"
                desc = (
                    self._wire_descriptor(nbytes, literals)
                    if nbytes is not None
                    else None
                )
                out[key] = (desc, info, call)
        return out

    def _check_wire(
        self,
        modules: dict[str, ModuleInfo],
        schemas: dict,
        kernels_info: ModuleInfo | None,
        network_info: ModuleInfo | None,
        wire_counters: tuple[str, ...],
        certs: list[ProtocolCertificate],
        report: DistReport,
    ) -> None:
        declared: dict[str, tuple[str, dict]] = {}
        for kernel, sites in schemas.items():
            for key, desc in sites.items():
                declared[key] = (kernel, desc)
        derived = self._derive_sends(modules)
        site_map: dict[str, dict] = {}
        for key, (desc, info, call) in derived.items():
            if desc is None:
                self._fail_certs(certs)
                self._emit(
                    report,
                    None,
                    info,
                    call,
                    "SAN604",
                    "error",
                    f"wire effect of send site {key} is not statically "
                    "derivable — byte count must be <const header> + "
                    "<const per-item> * <count>",
                    f"wire:{key}",
                )
                continue
            site_map[key] = desc
            if key not in declared:
                self._fail_certs(certs)
                self._emit(
                    report,
                    None,
                    info,
                    call,
                    "SAN604",
                    "error",
                    f"send site {key} has no MESSAGE_SCHEMAS "
                    f"declaration (derived wire effect: {desc})",
                    f"wire:{key}",
                )
                continue
            _kernel, want = declared[key]
            drift = [
                fld
                for fld in ("header_bytes", "per_item_bytes", "count")
                if want.get(fld) != desc.get(fld)
            ]
            if drift:
                self._fail_certs(certs)
                self._emit(
                    report,
                    None,
                    info,
                    call,
                    "SAN604",
                    "error",
                    f"send site {key} contradicts its MESSAGE_SCHEMAS "
                    f"declaration on {drift}: declared "
                    f"{ {f: want.get(f) for f in drift} }, derived "
                    f"{ {f: desc.get(f) for f in drift} }",
                    f"wire:{key}",
                )
        for key, (kernel, _desc) in sorted(declared.items()):
            if key not in derived and kernels_info is not None:
                report.findings.append(
                    DistFinding(
                        path=kernels_info.path,
                        line=_literal_line(kernels_info, "MESSAGE_SCHEMAS"),
                        col=0,
                        code="SAN605",
                        severity="warning",
                        message=(
                            f"stale MESSAGE_SCHEMAS declaration: no send "
                            f"site derives to {key!r} (kernel {kernel!r})"
                        ),
                        key=f"wire:stale:{key}",
                    )
                )
        for cert in certs:
            for key, desc in site_map.items():
                mod_tail = cert.module.rsplit(".", 1)[-1]
                if key.startswith(mod_tail + "."):
                    cert.sends[key] = desc
        if network_info is not None:
            self._check_wire_counters(
                network_info, wire_counters, certs, report
            )
            for cert in certs:
                cert.obligations.setdefault(
                    "wire:counters-metric-only",
                    "Network.send/cost/reset write only declared wire "
                    f"counters {sorted(wire_counters)}",
                )

    def _check_wire_counters(
        self,
        info: ModuleInfo,
        counters: tuple[str, ...],
        certs: list[ProtocolCertificate],
        report: DistReport,
    ) -> None:
        allowed = frozenset(counters)
        for tail in ("send", "cost", "reset"):
            qual = f"Network.{tail}"
            fn = info.functions.get(qual)
            if fn is None:
                continue
            bindings = self._bindings(fn)

            def counter_backed(name: str) -> bool:
                for kind, value, _ in bindings.get(name, ()):
                    if kind != "expr":
                        continue
                    for node in ast.walk(value):
                        if (
                            isinstance(node, ast.Attribute)
                            and node.attr in allowed
                        ):
                            return True
                return False

            for node in _walk_local(fn):
                targets: list[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    bad = False
                    if isinstance(target, ast.Attribute):
                        bad = target.attr not in allowed
                    elif isinstance(target, ast.Subscript):
                        base = _base_name_of(target)
                        bad = base is None or not counter_backed(base)
                    if bad:
                        self._fail_certs(certs)
                        self._emit(
                            report,
                            None,
                            info,
                            node,
                            "SAN604",
                            "error",
                            f"{qual} writes a field outside the "
                            f"declared wire counters {sorted(allowed)}",
                            f"wire:counters:{qual}@{node.lineno}",
                        )
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr not in allowed
                ):
                    self._fail_certs(certs)
                    self._emit(
                        report,
                        None,
                        info,
                        node,
                        "SAN604",
                        "error",
                        f"{qual} mutates a non-counter field via "
                        f".{node.func.attr}()",
                        f"wire:counters:{qual}:mut@{node.lineno}",
                    )

    @staticmethod
    def _fail_certs(certs: list[ProtocolCertificate]) -> None:
        for cert in certs:
            cert.status = "violations"

    # -- orchestration -------------------------------------------------

    def _certify(
        self,
        spec: ProtocolSpec,
        info: ModuleInfo,
        report: DistReport,
        *,
        barrier: str = "superstep",
        lww: frozenset[str] = frozenset(),
        metrics: frozenset[str] = frozenset(),
        partition: dict | None = None,
        shard_info: ModuleInfo | None = None,
    ) -> ProtocolCertificate:
        cert = ProtocolCertificate(
            name=spec.name, module=spec.module, kernels=spec.kernels
        )
        report.certificates[spec.name] = cert
        self._check_monotone(spec, info, cert, report)
        roots = self._check_phase(spec, info, cert, report, barrier)
        self._check_ownership(
            spec, info, cert, report, roots, partition, shard_info
        )
        self._check_replay(
            spec,
            info,
            cert,
            report,
            lww | frozenset(spec.lww),
            metrics | frozenset(spec.metrics),
        )
        for kernel in spec.kernels:
            report.kernels[kernel] = spec.name
        return cert

    @staticmethod
    def _spec_from_literal(module: str, lit: dict) -> ProtocolSpec:
        def tup(key: str) -> tuple[str, ...]:
            return tuple(lit.get(key, ()) or ())

        return ProtocolSpec(
            name=str(lit.get("name", module.rsplit(".", 1)[-1])),
            module=module,
            kernels=tup("kernels"),
            estimates=tup("estimates"),
            live=tup("live"),
            compute_roots=tup("compute_roots"),
            send_scopes=tup("send_scopes"),
            recovery_roots=tup("recovery_roots"),
            rebuild_calls=tup("rebuild_calls"),
            handler_roots=tup("handler_roots"),
            metrics=tup("metrics"),
            lww=tup("lww"),
        )

    def analyze(self) -> DistReport:
        """Certify every declared protocol in the cluster layer."""
        report = DistReport()
        modules = {
            name: info
            for name, info in self._index.modules.items()
            if name == CLUSTER_PACKAGE
            or name.startswith(CLUSTER_PACKAGE + ".")
        }
        report.modules = len(modules)
        shard_info = modules.get(f"{CLUSTER_PACKAGE}.shard")
        network_info = modules.get(f"{CLUSTER_PACKAGE}.network")
        node_info = modules.get(f"{CLUSTER_PACKAGE}.node")
        cluster_info = modules.get(f"{CLUSTER_PACKAGE}.cluster")
        kernels_info = self._index.modules.get(KERNELS_MODULE)
        partition = (
            _module_literal(shard_info, "DIST_PARTITION")
            if shard_info
            else None
        )
        wire_counters = tuple(
            (_module_literal(network_info, "WIRE_COUNTERS") or ())
            if network_info
            else ()
        ) or ("messages", "bytes_sent", "total_cost", "links")
        lww = frozenset(
            (_module_literal(node_info, "LWW_FIELDS") or ())
            if node_info
            else ()
        )
        metrics = frozenset(
            (_module_literal(node_info, "METRIC_FIELDS") or ())
            if node_info
            else ()
        )
        barrier = (
            _module_literal(cluster_info, "BSP_BARRIER")
            if cluster_info
            else None
        ) or "superstep"
        schemas = (
            _module_literal(kernels_info, "MESSAGE_SCHEMAS")
            if kernels_info
            else None
        ) or {}
        report.schemas = schemas
        certs: list[ProtocolCertificate] = []
        for name in sorted(modules):
            info = modules[name]
            lit = _module_literal(info, "DIST_PROTOCOL")
            if not isinstance(lit, dict):
                continue
            spec = self._spec_from_literal(name, lit)
            certs.append(
                self._certify(
                    spec,
                    info,
                    report,
                    barrier=barrier,
                    lww=lww,
                    metrics=metrics,
                    partition=partition,
                    shard_info=shard_info,
                )
            )
        self._check_wire(
            modules,
            schemas,
            kernels_info,
            network_info,
            wire_counters,
            certs,
            report,
        )
        if kernels_info is not None:
            for kernel in self._kernel_names(kernels_info):
                if kernel.startswith("cluster") and kernel not in report.kernels:
                    report.kernels[kernel] = "unclassified"
                    self._fail_certs(certs)
                    self._emit(
                        report,
                        None,
                        kernels_info,
                        kernels_info.tree,
                        "SAN604",
                        "error",
                        f"cluster kernel {kernel!r} is not claimed by "
                        "any DIST_PROTOCOL declaration",
                        f"wire:kernel:{kernel}",
                    )
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return report

    @staticmethod
    def _kernel_names(kernels_info: ModuleInfo) -> list[str]:
        for stmt in kernels_info.tree.body:
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
            if (
                isinstance(target, ast.Name)
                and target.id == "KERNELS"
                and isinstance(getattr(stmt, "value", None), ast.Dict)
            ):
                return [
                    k.value
                    for k in stmt.value.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                ]
        return []


def analyze_dist(index: ModuleIndex | None = None) -> DistReport:
    """SAN6xx certification of the in-tree cluster layer."""
    return DistAnalyzer(index).analyze()


def analyze_protocol_source(
    source: str, protocol: dict, path: str = "<dist-selftest>"
) -> DistReport:
    """Certify one standalone module against an inline protocol spec.

    Powers the seeded selftest: schema comparison, wire-counter and
    partition obligations are skipped (the module stands alone), but
    SAN601/602/603/606 run in full.
    """
    index = ModuleIndex()
    info = ModuleInfo("dist_selftest_module", path, source)
    index.modules[info.name] = info
    index.by_path[path] = info
    analyzer = DistAnalyzer(index)
    report = DistReport()
    report.modules = 1
    spec = analyzer._spec_from_literal(info.name, protocol)
    analyzer._certify(spec, info, report)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return report

# ======================================================================
# proof manifest (mirrors the SAN5xx prove manifest)
# ======================================================================

DIST_MANIFEST_SCHEMA = "dist-manifest/v1"
DEFAULT_DIST_MANIFEST_PATH = Path(__file__).with_name("dist_manifest.json")


def dist_manifest_payload(report: DistReport) -> dict:
    """Committed-manifest shape of one analysis run."""
    return {
        "schema": DIST_MANIFEST_SCHEMA,
        "version": 1,
        "protocols": {
            name: report.certificates[name].as_dict()
            for name in sorted(report.certificates)
        },
        "kernels": dict(sorted(report.kernels.items())),
        "message_schemas": report.schemas,
    }


def load_dist_manifest(path: Path | None = None) -> dict | None:
    path = path or DEFAULT_DIST_MANIFEST_PATH
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def write_dist_manifest(report: DistReport, path: Path | None = None) -> Path:
    path = path or DEFAULT_DIST_MANIFEST_PATH
    payload = dist_manifest_payload(report)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def diff_dist_manifest(current: dict, committed: dict | None) -> list[str]:
    """Human-readable drift lines between a fresh run and the
    committed manifest (empty = in sync)."""
    if committed is None:
        return [
            "dist manifest missing — run `repro sanitize --dist "
            "--write-manifest` and commit it"
        ]
    problems: list[str] = []
    if committed.get("schema") != current.get("schema"):
        problems.append(
            f"manifest schema {committed.get('schema')!r} != "
            f"{current.get('schema')!r}"
        )
    cur_protocols = current.get("protocols", {})
    old_protocols = committed.get("protocols", {})
    for name in sorted(set(cur_protocols) | set(old_protocols)):
        if name not in old_protocols:
            problems.append(f"protocol {name!r} missing from manifest")
            continue
        if name not in cur_protocols:
            problems.append(
                f"manifest lists unknown protocol {name!r} (removed?)"
            )
            continue
        cur, old = cur_protocols[name], old_protocols[name]
        for fld in sorted(set(cur) | set(old)):
            if cur.get(fld) != old.get(fld):
                problems.append(
                    f"protocol {name!r} field {fld!r} drifted: manifest "
                    f"{old.get(fld)!r} != current {cur.get(fld)!r}"
                )
    for fld in ("kernels", "message_schemas"):
        if current.get(fld) != committed.get(fld):
            problems.append(
                f"manifest field {fld!r} drifted from the current "
                "declarations"
            )
    return problems


def verify_dist_manifest(path: Path | None = None) -> tuple[bool, str]:
    """Re-analyze and compare against the committed manifest.

    Returns ``(ok, message)`` — the pytest ``--dist`` gate and the
    CLI both consume this.
    """
    report = analyze_dist()
    problems = [f"{f.path}:{f.line} {f.code} {f.message}" for f in report.errors]
    current = dist_manifest_payload(report)
    committed = load_dist_manifest(path)
    problems.extend(diff_dist_manifest(current, committed))
    if problems:
        head = "; ".join(problems[:6])
        more = f" (+{len(problems) - 6} more)" if len(problems) > 6 else ""
        return False, head + more
    n = len(report.certified)
    return True, (
        f"{n}/{len(report.certificates)} protocols certified, "
        "manifest in sync"
    )


# ======================================================================
# seeded selftest
# ======================================================================

_SELFTEST_PROTOCOL = {
    "name": "selftest",
    "kernels": ("selftest_kernel",),
    "estimates": ("est", "committed"),
    "live": ("est",),
    "compute_roots": (),
    "send_scopes": (),
    "recovery_roots": (),
    "rebuild_calls": (),
    "handler_roots": ("exchange",),
    "metrics": (),
    "lww": (),
}

_NONMONO_SOURCE = """\
import numpy as np

def driver(graph, cluster, est, results, frontiers):
    committed = est.copy()

    def exchange():
        for s in sorted(results):
            ids, vals, _ = results[s]
            cluster.network.send(s, 1 - s, 16 + 8 * len(ids))
            est[ids] = est[ids] + vals
    cluster.superstep("step", {}, exchange)
"""
#: the planted ``est[ids] = est[ids] + vals`` (may raise the estimate)
_NONMONO_LINE = 10

_NONMONO_FIXED_SOURCE = _NONMONO_SOURCE.replace(
    "est[ids] = est[ids] + vals",
    "est[ids] = np.minimum(est[ids], vals)",
)

_PHASE_SOURCE = """\
import numpy as np

def driver(graph, cluster, est, results, frontiers):
    committed = est.copy()

    def compute(node):
        results[0] = committed[frontiers].copy()
        cluster.network.send(0, 1, 24)

    def exchange():
        for s in sorted(results):
            cluster.network.send(s, 1 - s, 16 + 8 * len(results[s]))
            est[frontiers] = np.minimum(est[frontiers], results[s])
    cluster.superstep("step", {0: compute}, exchange)
"""
#: the planted compute-phase ``cluster.network.send`` (escapes exchange)
_PHASE_LINE = 8

_PHASE_FIXED_SOURCE = _PHASE_SOURCE.replace(
    "        cluster.network.send(0, 1, 24)\n", ""
)


def dist_selftest() -> tuple[bool, str]:
    """Plant a non-monotone boundary update and a phase-escaping send;
    SimDist must flag both with exact line attribution, and the fixed
    variants must certify clean."""
    report = analyze_protocol_source(_NONMONO_SOURCE, _SELFTEST_PROTOCOL)
    mono = [f for f in report.findings if f.code == "SAN601"]
    if len(mono) != 1 or report.errors != mono:
        return False, (
            "selftest: expected exactly one SAN601 for the planted "
            f"non-monotone update, got {[str(f) for f in report.findings]}"
        )
    if mono[0].line != _NONMONO_LINE:
        return False, (
            f"selftest: SAN601 attributed to line {mono[0].line}, "
            f"expected {_NONMONO_LINE}"
        )
    if report.certificates["selftest"].status != "violations":
        return False, "selftest: planted non-monotone source certified"
    fixed = analyze_protocol_source(_NONMONO_FIXED_SOURCE, _SELFTEST_PROTOCOL)
    if fixed.findings or fixed.certificates["selftest"].status != "certified":
        return False, (
            "selftest: min-combining fix did not certify — "
            f"{[str(f) for f in fixed.findings]}"
        )
    report = analyze_protocol_source(_PHASE_SOURCE, _SELFTEST_PROTOCOL)
    phase = [f for f in report.findings if f.code == "SAN602"]
    if len(phase) != 1 or report.errors != phase:
        return False, (
            "selftest: expected exactly one SAN602 for the planted "
            f"phase-escaping send, got {[str(f) for f in report.findings]}"
        )
    if phase[0].line != _PHASE_LINE:
        return False, (
            f"selftest: SAN602 attributed to line {phase[0].line}, "
            f"expected {_PHASE_LINE}"
        )
    if report.certificates["selftest"].status != "violations":
        return False, "selftest: planted phase-escaping source certified"
    fixed = analyze_protocol_source(_PHASE_FIXED_SOURCE, _SELFTEST_PROTOCOL)
    if fixed.findings or fixed.certificates["selftest"].status != "certified":
        return False, (
            "selftest: exchange-confined fix did not certify — "
            f"{[str(f) for f in fixed.findings]}"
        )
    return True, (
        "dist selftest passed: planted SAN601 (non-monotone boundary "
        f"update, line {_NONMONO_LINE}) and SAN602 (phase-escaping "
        f"send, line {_PHASE_LINE}) caught; fixed variants certified"
    )
