"""Vector clocks for the happens-before model (SimTSan).

The substrate's synchronization structure is deliberately simple —
the only ordering edges are region barriers — so the clocks here are
correspondingly small: one slot per virtual-thread index, reused
across regions (virtual thread ``t`` of every region maps to slot
``t``).  Slot reuse is sound because regions never overlap: the
barrier at the end of region ``r`` joins every epoch of ``r`` into the
main clock, which every epoch of region ``r+1`` inherits — so
cross-region accesses are always ordered and same-region accesses by
different threads are always concurrent.  That collapses the race
condition to "same region, different virtual thread", but the vector
clocks keep the detector honest if richer sync primitives (futures,
async pipelines from the ROADMAP) arrive later.
"""

from __future__ import annotations

__all__ = ["VectorClock"]


class VectorClock:
    """A fixed-width vector clock over virtual-thread slots."""

    __slots__ = ("_c",)

    def __init__(self, width: int, _clocks: list[int] | None = None) -> None:
        self._c = _clocks if _clocks is not None else [0] * width

    @property
    def width(self) -> int:
        return len(self._c)

    def copy(self) -> "VectorClock":
        return VectorClock(0, list(self._c))

    def tick(self, slot: int) -> "VectorClock":
        """Advance ``slot``'s component; returns self for chaining."""
        self._c[slot] += 1
        return self

    def join(self, other: "VectorClock") -> "VectorClock":
        """Component-wise max into self; returns self."""
        mine, theirs = self._c, other._c
        for i in range(len(mine)):
            if theirs[i] > mine[i]:
                mine[i] = theirs[i]
        return self

    def happens_before(self, other: "VectorClock") -> bool:
        """Strict happens-before: self <= other component-wise, self != other."""
        le = all(a <= b for a, b in zip(self._c, other._c))
        return le and self._c != other._c

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock happens-before the other."""
        return not self.happens_before(other) and not other.happens_before(self)

    def __getitem__(self, slot: int) -> int:
        return self._c[slot]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._c == other._c

    def __repr__(self) -> str:
        return f"VC{self._c!r}"
