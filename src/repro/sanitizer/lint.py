"""Static AST lint for parallel-for worker closures (SimTSan lint).

The dynamic detector only sees accesses that were recorded; a worker
that mutates captured Python state *without* going through the
``ctx``/``Atomic*`` APIs is invisible to it — and uncharged, which
also skews the cost model.  This pass closes that hole by walking
every ``pool.parallel_for(items, worker, ...)`` call site and
analysing the worker body syntactically.

Rules
-----
=======  ========  =======================================================
code     severity  meaning
=======  ========  =======================================================
SAN001   warning   bare ``# sani: ok`` suppression with no trailing
                   reason — the escape hatch must document why
SAN002   warning   dead suppression: a reasoned ``# sani: ok`` or a
                   ``# prove:`` assumption on a line no analysis ever
                   flags or consumes — stale escapes rot; delete them
SAN101   error     subscript store into a captured container at an index
                   not derived from the loop item — overlapping writes
                   across virtual threads
SAN102   error     mutating method call (``append``/``add``/``update``/…)
                   on a captured non-Atomic container
SAN103   error     attribute store on a captured object, or store to a
                   ``nonlocal``/``global`` name
SAN201   warning   bare subscript store at an item-derived index without
                   a ``ctx.write``/``ctx.read`` record anywhere in the
                   worker — disjoint per item, but uncharged and
                   invisible to the race detector
SAN202   warning   worker performs no ``ctx`` call at all — its work is
                   free under the cost model
SAN301   warning   unpoisoned ``np.empty``/``np.empty_like`` of non-zero
                   size — stale memory readable without a trap; use
                   ``san_empty`` so SimCheck can catch uninitialized
                   reads
SAN302   warning   data-dependent subscript (``arr[other[i]]``) on a
                   captured non-CSR array inside a parallel worker —
                   the loaded index is unchecked and a negative value
                   silently wraps
SAN303   warning   narrowing ``.astype(...)`` to a smaller dtype — use
                   ``checked_cast`` so out-of-range values report
                   instead of wrapping
SAN304   warning   float expression accumulated into a known int-dtype
                   array — silently truncates; accumulate in float or
                   use ``checked_sum``
=======  ========  =======================================================

SAN1xx/2xx (SimTSan) analyse ``parallel_for`` worker closures; SAN3xx
(SimCheck) is a module-wide pass, except SAN302 which also scopes to
workers.  Two further families live in sibling modules: SAN4xx
(SimFlow, :mod:`repro.sanitizer.flow`) and SAN5xx (SimProve,
:mod:`repro.sanitizer.prove` — SAN501 provable OOB, SAN502 unproven
access, SAN503 order-sensitive reduction).

Escapes
-------
* Receivers subscripted by ``ctx.thread_id`` are thread-local buffers
  and exempt from SAN102 (the standard per-thread-bucket idiom).
* Names bound to ``Atomic*`` constructors (or
  ``AtomicArray.from_array``) module-wide are exempt everywhere.
* ``np.empty`` with a literal-zero shape (``np.empty(0)``, a tuple
  containing ``0``) is exempt from SAN301 — empty sentinels hold no
  readable memory.
* Names assigned from ``<graph>.indptr`` / ``<graph>.indices`` are
  *trusted CSR arrays* (validated by construction or via
  ``CheckedGraph``) and exempt from SAN302, so the ubiquitous
  ``indices[indptr[v]:indptr[v+1]]`` idiom stays clean.
* A trailing ``# sani: ok`` comment suppresses all findings on that
  line; a reason is required, e.g. ``# sani: ok - permutation
  scatter`` — a bare marker is itself flagged (SAN001) and cannot
  suppress its own finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "LintFinding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "dead_suppressions",
]

SUPPRESS_MARKER = "# sani: ok"

#: Prefix of SimProve assumption comments (consumed by prove.py).
ASSUME_MARKER = "# prove:"

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "appendleft",
        "fill",
        "itemset",
        "put",
    }
)

#: Pure builtins allowed inside item-derived index expressions.
SAFE_BUILTINS = frozenset(
    {
        "int",
        "float",
        "bool",
        "len",
        "min",
        "max",
        "abs",
        "range",
        "divmod",
        "round",
        "sum",
        "enumerate",
        "zip",
        "sorted",
        "tuple",
        "frozenset",
    }
)

_ATOMIC_CONSTRUCTORS = frozenset(
    {"AtomicCounter", "AtomicArray", "AtomicSet", "AtomicList"}
)

#: dtypes a cast *into* loses range/precision relative to the int64 /
#: float64 the substrate computes in (SAN303).
_NARROWING_DTYPES = frozenset(
    {
        "int32",
        "int16",
        "int8",
        "uint8",
        "uint16",
        "uint32",
        "intc",
        "short",
        "byte",
        "single",
        "half",
        "float32",
        "float16",
    }
)

#: Integer dtype spellings recognized when classifying allocations for
#: SAN304 (``dtype=np.int64``, ``dtype="int32"``, ``dtype=int``).
_INT_DTYPE_NAMES = frozenset(
    {
        "int",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "intp",
        "intc",
        "short",
        "byte",
        "long",
        "longlong",
    }
)

#: numpy allocators whose result dtype we can classify statically.
_ARRAY_ALLOCATORS = frozenset(
    {"zeros", "ones", "empty", "full", "arange", "zeros_like", "full_like"}
)


@dataclass(frozen=True)
class LintFinding:
    """One lint finding, printable as ``path:line:col CODE message``."""

    path: str
    line: int
    col: int
    code: str
    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col} {self.code} "
            f"[{self.severity}] {self.message}"
        )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _annotation_is_atomic(ann: ast.expr | None) -> bool:
    if ann is None:
        return False
    for n in ast.walk(ann):
        if isinstance(n, ast.Name) and n.id in _ATOMIC_CONSTRUCTORS:
            return True
        if isinstance(n, ast.Attribute) and n.attr in _ATOMIC_CONSTRUCTORS:
            return True
        if isinstance(n, ast.Constant) and isinstance(n.value, str):
            if any(c in n.value for c in _ATOMIC_CONSTRUCTORS):
                return True
    return False


def _collect_atomic_names(tree: ast.Module) -> set[str]:
    """Names bound to ``Atomic*`` constructors or annotations, module-wide."""
    atomic: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # parameters annotated Atomic* (e.g. ``out: AtomicArray``)
            all_args = (
                node.args.posonlyargs
                + node.args.args
                + node.args.kwonlyargs
            )
            for arg in all_args:
                if _annotation_is_atomic(arg.annotation):
                    atomic.add(arg.arg)
            continue
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_atomic(node.annotation):
                atomic.add(node.target.id)
            continue
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        ctor = None
        if isinstance(func, ast.Name) and func.id in _ATOMIC_CONSTRUCTORS:
            ctor = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _ATOMIC_CONSTRUCTORS
        ):
            ctor = func.value.id  # classmethod, e.g. AtomicArray.from_array
        if ctor is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                atomic.add(target.id)
    return atomic


def _collect_trusted_csr(tree: ast.Module) -> set[str]:
    """Names assigned from ``<x>.indptr`` / ``<x>.indices`` anywhere.

    Those arrays come out of a validated :class:`Graph` (or a
    ``CheckedGraph`` for untrusted inputs), so data-dependent indexing
    *with* them — ``indices[indptr[v]:indptr[v+1]]`` — is the trusted
    CSR traversal idiom, exempt from SAN302.
    """
    trusted: set[str] = set()

    def _bind(target: ast.expr, value: ast.expr) -> None:
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Attribute)
            and value.attr in ("indptr", "indices")
        ):
            trusted.add(target.id)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            # plain: indices = g.indices — and tuple unpack:
            # indptr, indices = g.indptr, g.indices
            if isinstance(target, ast.Tuple) and isinstance(
                node.value, ast.Tuple
            ):
                if len(target.elts) == len(node.value.elts):
                    for t, v in zip(target.elts, node.value.elts):
                        _bind(t, v)
            else:
                _bind(target, node.value)
    return trusted


def _dtype_name(expr: ast.expr | None) -> str | None:
    """The dtype spelling of ``np.int64`` / ``"int32"`` / ``int``, if any."""
    if expr is None:
        return None
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


def _collect_int_arrays(tree: ast.Module) -> set[str]:
    """Names bound to integer-dtype numpy allocations, module-wide."""
    known: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        dtype: str | None = None
        if isinstance(func, ast.Attribute) and func.attr in _ARRAY_ALLOCATORS:
            for kw in node.value.keywords:
                if kw.arg == "dtype":
                    dtype = _dtype_name(kw.value)
            if dtype is None and func.attr == "arange":
                dtype = "int64"  # numpy default for int start/stop
        elif isinstance(func, ast.Name) and func.id == "san_empty":
            args = node.value.args
            dtype = _dtype_name(args[1]) if len(args) >= 2 else "int64"
            for kw in node.value.keywords:
                if kw.arg == "dtype":
                    dtype = _dtype_name(kw.value)
        if dtype is None or dtype not in _INT_DTYPE_NAMES:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                known.add(target.id)
    return known


def _suppressed_lines(source: str) -> set[int]:
    return {
        i
        for i, line in enumerate(source.splitlines(), start=1)
        if SUPPRESS_MARKER in line
    }


def _bare_suppressions(source: str, path: str) -> list["LintFinding"]:
    """SAN001: suppression markers with no trailing reason.

    Only real ``COMMENT`` tokens count — the marker may legitimately
    appear inside string literals (this module defines it in one).  A
    bare marker cannot suppress its own finding: reasonless escapes
    are exactly what the rule exists to surface.
    """
    import io
    import tokenize

    findings: list[LintFinding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            comment = tok.string
            idx = comment.find(SUPPRESS_MARKER)
            if idx < 0:
                continue
            rest = comment[idx + len(SUPPRESS_MARKER) :].strip()
            if rest.startswith("-") and rest[1:].strip():
                continue
            findings.append(
                LintFinding(
                    path=path,
                    line=tok.start[0],
                    col=tok.start[1],
                    code="SAN001",
                    severity="warning",
                    message=(
                        "bare '# sani: ok' with no reason: suppressions "
                        "must say why, e.g. "
                        "'# sani: ok - permutation scatter'"
                    ),
                )
            )
    except tokenize.TokenizeError:
        pass  # SAN000 already covers unparsable files
    return findings


def _base_name(node: ast.expr) -> str | None:
    """The root ``Name`` of a subscript/attribute chain, if any."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _assigned_names(node: ast.AST) -> set[str]:
    """All names bound (as locals) inside a function body."""
    names: set[str] = set()

    class _V(ast.NodeVisitor):
        def _targets(self, target: ast.expr) -> None:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    self._targets(elt)

        def visit_Assign(self, n: ast.Assign) -> None:
            for t in n.targets:
                self._targets(t)
            self.generic_visit(n)

        def visit_AnnAssign(self, n: ast.AnnAssign) -> None:
            self._targets(n.target)
            self.generic_visit(n)

        def visit_AugAssign(self, n: ast.AugAssign) -> None:
            self._targets(n.target)
            self.generic_visit(n)

        def visit_For(self, n: ast.For) -> None:
            self._targets(n.target)
            self.generic_visit(n)

        def visit_withitem(self, n: ast.withitem) -> None:
            if n.optional_vars is not None:
                self._targets(n.optional_vars)
            self.generic_visit(n)

        def visit_comprehension(self, n: ast.comprehension) -> None:
            self._targets(n.target)
            self.generic_visit(n)

        def visit_FunctionDef(self, n: ast.FunctionDef) -> None:
            names.add(n.name)  # nested defs bind their name; don't descend

        def visit_Lambda(self, n: ast.Lambda) -> None:
            pass

    _V().visit(node)
    return names


def _free_names(node: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class _WorkerInfo:
    """Resolved worker function plus the names of its two parameters.

    ``items`` is the first argument of the ``parallel_for`` call (the
    iterable of work items) — the SimFlow disjoint-write analysis uses
    it to decide whether items are provably contiguous integers.
    """

    __slots__ = ("node", "item", "ctx", "call_line", "items")

    def __init__(
        self,
        node,
        item: str | None,
        ctx: str | None,
        call_line: int,
        items: ast.expr | None = None,
    ):
        self.node = node
        self.item = item
        self.ctx = ctx
        self.call_line = call_line
        self.items = items


def _worker_params(fn) -> tuple[str | None, str | None]:
    args = fn.args.posonlyargs + fn.args.args
    item = args[0].arg if len(args) >= 1 else None
    ctx = args[1].arg if len(args) >= 2 else None
    return item, ctx


def _find_workers(tree: ast.Module) -> list[_WorkerInfo]:
    """Resolve the worker function of every ``parallel_for`` call."""
    defs: list[ast.FunctionDef] = [
        n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)
    ]
    workers: list[_WorkerInfo] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "parallel_for"):
            continue
        worker_expr = None
        items_expr = node.args[0] if node.args else None
        if len(node.args) >= 2:
            worker_expr = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "fn":
                    worker_expr = kw.value
        if worker_expr is None:
            continue
        if isinstance(worker_expr, ast.Lambda):
            args = worker_expr.args.posonlyargs + worker_expr.args.args
            item = args[0].arg if len(args) >= 1 else None
            ctx = args[1].arg if len(args) >= 2 else None
            workers.append(
                _WorkerInfo(worker_expr, item, ctx, node.lineno, items_expr)
            )
        elif isinstance(worker_expr, ast.Name):
            # nearest preceding def with that name (closures are defined
            # just above their parallel_for in this codebase's idiom)
            candidates = [
                d
                for d in defs
                if d.name == worker_expr.id and d.lineno <= node.lineno
            ]
            if candidates:
                fn = max(candidates, key=lambda d: d.lineno)
                item, ctx = _worker_params(fn)
                workers.append(
                    _WorkerInfo(fn, item, ctx, node.lineno, items_expr)
                )
    return workers


# ----------------------------------------------------------------------
# per-worker analysis
# ----------------------------------------------------------------------


class _WorkerLinter:
    def __init__(
        self,
        worker: _WorkerInfo,
        atomic_names: set[str],
        suppressed: set[int],
        path: str,
        trusted_csr: set[str] | None = None,
    ) -> None:
        self.w = worker
        self.atomic = atomic_names
        self.suppressed = suppressed
        self.path = path
        self.trusted_csr = trusted_csr or set()
        self.findings: list[LintFinding] = []
        body = worker.node.body
        self.body_nodes = body if isinstance(body, list) else [body]
        self.locals = set()
        for stmt in self.body_nodes:
            self.locals |= _assigned_names(stmt)
        self.params = {p for p in (worker.item, worker.ctx) if p}
        # Subscripts inside type annotations (dict[int, ...]) are not
        # array accesses; exclude their subtrees from SAN302.
        self._annotation_nodes: set[int] = set()
        for stmt in self.body_nodes:
            for node in ast.walk(stmt):
                anns: list[ast.expr] = []
                if isinstance(node, ast.AnnAssign):
                    anns.append(node.annotation)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.returns is not None:
                        anns.append(node.returns)
                    for arg in (
                        node.args.posonlyargs
                        + node.args.args
                        + node.args.kwonlyargs
                    ):
                        if arg.annotation is not None:
                            anns.append(arg.annotation)
                for ann in anns:
                    for inner in ast.walk(ann):
                        self._annotation_nodes.add(id(inner))
        # names derived purely from the loop item
        self.derived: set[str] = {worker.item} if worker.item else set()
        self._infer_derived()
        self.has_ctx_call = self._has_ctx_call()
        self.has_record_call = self._has_record_call()

    # -- taint ---------------------------------------------------------

    def _item_derived(self, expr: ast.expr) -> bool:
        """All free names of ``expr`` are item-derived or safe builtins."""
        free = _free_names(expr)
        return bool(free) and all(
            n in self.derived or n in SAFE_BUILTINS for n in free
        )

    def _infer_derived(self) -> None:
        # fixed point over simple assignments: x = f(item) makes x derived
        changed = True
        while changed:
            changed = False
            for stmt in self.body_nodes:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not self._item_derived(node.value):
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id not in self.derived
                        ):
                            self.derived.add(target.id)
                            changed = True

    # -- ctx usage -----------------------------------------------------

    def _ctx_calls(self):
        ctx = self.w.ctx
        if not ctx:
            return
        for stmt in self.body_nodes:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == ctx
                ):
                    yield node

    def _has_ctx_call(self) -> bool:
        if any(True for _ in self._ctx_calls()):
            return True
        # calls that *pass* ctx (kernel helpers, Atomic methods) count too
        ctx = self.w.ctx
        if not ctx:
            return False
        for stmt in self.body_nodes:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id == ctx:
                            return True
                    for kw in node.keywords:
                        if isinstance(kw.value, ast.Name) and kw.value.id == ctx:
                            return True
        return False

    def _has_record_call(self) -> bool:
        return any(
            call.func.attr in ("write", "read", "record")
            for call in self._ctx_calls()
        )

    # -- reporting -----------------------------------------------------

    def _emit(
        self, node: ast.AST, code: str, severity: str, message: str
    ) -> None:
        line = getattr(node, "lineno", self.w.call_line)
        if line in self.suppressed:
            return
        self.findings.append(
            LintFinding(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                code=code,
                severity=severity,
                message=message,
            )
        )

    def _is_captured(self, name: str | None) -> bool:
        return (
            name is not None
            and name not in self.locals
            and name not in self.params
            and name not in SAFE_BUILTINS
        )

    # -- rules ---------------------------------------------------------

    def run(self) -> list[LintFinding]:
        nonlocal_names: set[str] = set()
        for stmt in self.body_nodes:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Nonlocal, ast.Global)):
                    nonlocal_names |= set(node.names)

        for stmt in self.body_nodes:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        self._check_store(target, nonlocal_names)
                elif isinstance(node, ast.Call):
                    self._check_mutating_call(node)
                elif isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, ast.Load
                ):
                    self._check_unchecked_index(node)

        if not self.has_ctx_call:
            self._emit(
                self.w.node,
                "SAN202",
                "warning",
                "worker performs no ctx call: its work is invisible to "
                "the cost model (add ctx.charge/read/write or pass ctx "
                "to a charged helper)",
            )
        return self.findings

    def _check_store(self, target: ast.expr, nonlocal_names: set[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, nonlocal_names)
            return
        if isinstance(target, ast.Name):
            if target.id in nonlocal_names:
                self._emit(
                    target,
                    "SAN103",
                    "error",
                    f"store to nonlocal/global {target.id!r} from a "
                    "parallel worker: every virtual thread writes the "
                    "same cell (use an Atomic* wrapper or per-thread "
                    "buffers)",
                )
            return
        if isinstance(target, ast.Attribute):
            base = _base_name(target)
            if self._is_captured(base) and base not in self.atomic:
                self._emit(
                    target,
                    "SAN103",
                    "error",
                    f"attribute store on captured {base!r} inside a "
                    "parallel worker",
                )
            return
        if not isinstance(target, ast.Subscript):
            return
        base = _base_name(target.value)
        if not self._is_captured(base):
            return  # store into a worker-local container
        if base in self.atomic and not self._subscripts_data(target):
            return  # atomic wrapper API handles its own accounting
        # thread-local buffer idiom: bufs[ctx.thread_id][...] = x
        if self._thread_local_receiver(target.value):
            return
        if self._item_derived(target.slice):
            if not self.has_record_call:
                self._emit(
                    target,
                    "SAN201",
                    "warning",
                    f"bare store into captured {base!r} at an "
                    "item-derived index: disjoint across threads, but "
                    "uncharged and invisible to the race detector "
                    "(record it with ctx.write)",
                )
            return
        self._emit(
            target,
            "SAN101",
            "error",
            f"store into captured {base!r} at an index not derived "
            "from the loop item: virtual threads may write the same "
            "slot (use an Atomic* wrapper)",
        )

    def _subscripts_data(self, target: ast.Subscript) -> bool:
        """True for ``atomic.data[i] = x`` — bypassing the wrapper."""
        value = target.value
        return (
            isinstance(value, ast.Attribute)
            and value.attr in ("data", "_items", "_value")
            and isinstance(value.value, ast.Name)
            and value.value.id in self.atomic
        )

    def _thread_local_receiver(self, node: ast.expr) -> bool:
        """Is ``node`` (or a prefix of it) subscripted by ``ctx.thread_id``?"""
        ctx = self.w.ctx
        if not ctx:
            return False
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Subscript):
                sl = node.slice
                if (
                    isinstance(sl, ast.Attribute)
                    and sl.attr == "thread_id"
                    and isinstance(sl.value, ast.Name)
                    and sl.value.id == ctx
                ):
                    return True
            node = node.value
        return False

    def _check_unchecked_index(self, node: ast.Subscript) -> None:
        """SAN302: ``arr[other[i]]`` on a captured non-CSR array."""
        if id(node) in self._annotation_nodes:
            return
        base = _base_name(node.value)
        if (
            not self._is_captured(base)
            or base in self.atomic
            or base in self.trusted_csr
            or base == self.w.ctx
        ):
            return
        if self._thread_local_receiver(node.value):
            return
        slice_parts: list[ast.expr] = []
        if isinstance(node.slice, ast.Slice):
            slice_parts = [
                part
                for part in (node.slice.lower, node.slice.upper, node.slice.step)
                if part is not None
            ]
        else:
            slice_parts = [node.slice]
        nested = any(
            isinstance(inner, ast.Subscript)
            for part in slice_parts
            for inner in ast.walk(part)
        )
        if not nested:
            return
        self._emit(
            node,
            "SAN302",
            "warning",
            f"data-dependent index into captured {base!r}: the index is "
            "loaded from another array and unchecked — a corrupt value "
            "reads out of bounds (or wraps negative) silently; bind the "
            "index to a checked local, or suppress with a bounds proof",
        )

    def _check_mutating_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in MUTATING_METHODS:
            return
        base = _base_name(func.value)
        if not self._is_captured(base) or base in self.atomic:
            return
        if self._thread_local_receiver(func.value):
            return
        # ctx.charge(...) etc. are not container mutations
        if base == self.w.ctx:
            return
        self._emit(
            node,
            "SAN102",
            "error",
            f"mutating call .{func.attr}() on captured non-Atomic "
            f"{base!r} inside a parallel worker (use AtomicList/"
            "AtomicSet or per-thread buffers indexed by "
            "ctx.thread_id)",
        )


# ----------------------------------------------------------------------
# module-wide analysis (SAN3xx — SimCheck lint)
# ----------------------------------------------------------------------


class _ModuleLinter:
    """Memory & numeric soundness rules over the whole module."""

    def __init__(
        self, tree: ast.Module, suppressed: set[int], path: str
    ) -> None:
        self.tree = tree
        self.suppressed = suppressed
        self.path = path
        self.int_arrays = _collect_int_arrays(tree)
        self.findings: list[LintFinding] = []

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if line in self.suppressed:
            return
        self.findings.append(
            LintFinding(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                code=code,
                severity="warning",
                message=message,
            )
        )

    def run(self) -> list[LintFinding]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_empty(node)
                self._check_narrowing_cast(node)
            elif isinstance(node, ast.AugAssign):
                self._check_float_into_int(node)
        return self.findings

    @staticmethod
    def _zero_size(shape: ast.expr | None) -> bool:
        """Shape provably allocates nothing (literal 0 somewhere)."""
        if shape is None:
            return False
        if isinstance(shape, ast.Constant):
            return shape.value == 0
        if isinstance(shape, ast.Tuple):
            return any(
                isinstance(e, ast.Constant) and e.value == 0
                for e in shape.elts
            )
        return False

    def _check_empty(self, node: ast.Call) -> None:
        """SAN301: unpoisoned ``np.empty`` / ``np.empty_like``."""
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("empty", "empty_like")
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        ):
            return
        shape = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg == "shape":
                shape = kw.value
        if func.attr == "empty" and self._zero_size(shape):
            return  # empty sentinel: no readable memory to poison
        self._emit(
            node,
            "SAN301",
            f"np.{func.attr} hands out unpoisoned memory: a missed "
            "initialization is silently read as stale garbage; use "
            "sanitizer.memcheck.san_empty so SimCheck traps "
            "uninitialized reads",
        )

    def _check_narrowing_cast(self, node: ast.Call) -> None:
        """SAN303: ``.astype(<narrower dtype>)``."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
            return
        dtype = _dtype_name(node.args[0]) if node.args else None
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype = _dtype_name(kw.value)
        if dtype is None or dtype not in _NARROWING_DTYPES:
            return
        self._emit(
            node,
            "SAN303",
            f"narrowing astype({dtype}) silently wraps out-of-range "
            "values; use sanitizer.memcheck.checked_cast to detect "
            "overflow",
        )

    @staticmethod
    def _is_floaty(expr: ast.expr) -> bool:
        """Expression that plausibly produces a float value."""
        for n in ast.walk(expr):
            if isinstance(n, ast.Constant) and isinstance(n.value, float):
                return True
            if isinstance(n, ast.BinOp) and isinstance(n.op, ast.Div):
                return True
            if isinstance(n, ast.Attribute) and n.attr in (
                "float64",
                "float32",
                "float16",
                "mean",
                "average",
            ):
                return True
            if isinstance(n, ast.Name) and n.id == "float":
                return True
        return False

    def _check_float_into_int(self, node: ast.AugAssign) -> None:
        """SAN304: float expression accumulated into an int array."""
        target = node.target
        if not isinstance(target, ast.Subscript):
            return
        base = _base_name(target.value)
        if base is None or base not in self.int_arrays:
            return
        if not self._is_floaty(node.value):
            return
        self._emit(
            node,
            "SAN304",
            f"float expression accumulated into int array {base!r} "
            "truncates silently; accumulate in a float array or use "
            "sanitizer.memcheck.checked_sum",
        )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one module's source text; returns findings sorted by line."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                code="SAN000",
                severity="error",
                message=f"syntax error: {exc.msg}",
            )
        ]
    atomic_names = _collect_atomic_names(tree)
    trusted_csr = _collect_trusted_csr(tree)
    suppressed = _suppressed_lines(source)
    findings: list[LintFinding] = []
    for worker in _find_workers(tree):
        findings.extend(
            _WorkerLinter(
                worker, atomic_names, suppressed, path, trusted_csr
            ).run()
        )
    findings.extend(_ModuleLinter(tree, suppressed, path).run())
    findings.extend(_bare_suppressions(source, path))
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def _findings_unsuppressed(source: str, path: str) -> list[LintFinding]:
    """The SAN1xx-3xx findings a module would get with every
    ``# sani: ok`` marker disabled (SAN002 support: a marker is alive
    only if this run flags its line)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    atomic_names = _collect_atomic_names(tree)
    trusted_csr = _collect_trusted_csr(tree)
    findings: list[LintFinding] = []
    for worker in _find_workers(tree):
        findings.extend(
            _WorkerLinter(
                worker, atomic_names, set(), path, trusted_csr
            ).run()
        )
    findings.extend(_ModuleLinter(tree, set(), path).run())
    return findings


def dead_suppressions(
    source: str,
    path: str = "<string>",
    used_lines: frozenset[int] | set[int] = frozenset(),
) -> list[LintFinding]:
    """SAN002: suppression/assumption markers that suppress nothing.

    A reasoned ``# sani: ok`` is alive if a suppression-disabled lint
    run flags its line, or if another analysis reported consuming it
    (``used_lines`` — the CLI feeds in SimFlow's suppressed-store hits).
    A ``# prove:`` assumption is alive only via ``used_lines`` (SimProve
    records which assumption lines seeded an environment).  Everything
    else is a stale escape: the hazard it excused is gone, and keeping
    the marker would silently excuse the *next* hazard on that line.
    """
    import io
    import tokenize

    flagged = {f.line for f in _findings_unsuppressed(source, path)}
    findings: list[LintFinding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            comment = tok.string
            line = tok.start[0]
            if line in used_lines:
                continue
            idx = comment.find(SUPPRESS_MARKER)
            if idx >= 0:
                rest = comment[idx + len(SUPPRESS_MARKER) :].strip()
                if not (rest.startswith("-") and rest[1:].strip()):
                    continue  # bare marker: SAN001's problem, not ours
                if line in flagged:
                    continue
                marker = SUPPRESS_MARKER
            elif comment.startswith(ASSUME_MARKER):
                marker = ASSUME_MARKER
            else:
                continue
            findings.append(
                LintFinding(
                    path=path,
                    line=line,
                    col=tok.start[1],
                    code="SAN002",
                    severity="warning",
                    message=(
                        f"dead suppression: {marker!r} marker "
                        "suppresses nothing — no analysis flags this "
                        "line; delete the marker"
                    ),
                )
            )
    except tokenize.TokenizeError:
        pass
    return findings


def lint_file(path: str | Path) -> list[LintFinding]:
    """Lint one Python file."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths: list[str | Path]) -> list[LintFinding]:
    """Lint files and/or directories (recursing into ``*.py``)."""
    findings: list[LintFinding] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                findings.extend(lint_file(f))
        else:
            findings.extend(lint_file(p))
    return findings
