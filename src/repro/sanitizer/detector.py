"""Dynamic happens-before race detector for the simulated substrate.

:class:`RaceDetector` attaches to a
:class:`~repro.parallel.scheduler.SimulatedPool` as its region
observer.  At ``on_region_begin`` it turns on event recording for
every :class:`~repro.parallel.context.ThreadContext`; at
``on_region_end`` — the barrier, and therefore the only
happens-before edge the substrate has — it drains the per-thread
event streams and checks every location touched by more than one
virtual thread for unsynchronized conflicting access.

Two accesses to the same word *conflict* when at least one is a write
and they come from different virtual threads whose epochs are
concurrent under the vector-clock model
(:mod:`repro.sanitizer.vectorclock`).  A conflict is a **race** unless
both accesses are atomic.  Mixed pairs — a plain read against an
atomic write, or a plain write against anything — are races, matching
ThreadSanitizer's treatment: an ``Atomic*`` wrapper on one side does
not license a bare ``.data`` access on the other.

What a *simulated* race means: the virtual threads run sequentially,
so the racy execution always produces the serial result here.  On real
hardware the same access pattern is undefined behaviour — torn
reads, lost updates, or worse.  The detector exists precisely because
the substrate can never surface those outcomes at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.context import (
    EV_ATOMIC_READ,
    EV_ATOMIC_WRITE,
    EV_READ,
    EV_WRITE,
    EVENT_NAMES,
    ThreadContext,
)
from repro.sanitizer.vectorclock import VectorClock

__all__ = ["RaceDetector", "RaceReport"]

# Per-location, per-thread access masks.
_PR = 1  # plain read
_PW = 2  # plain write
_AR = 4  # atomic read
_AW = 8  # atomic write

_KIND_TO_BIT = {EV_READ: _PR, EV_WRITE: _PW, EV_ATOMIC_READ: _AR, EV_ATOMIC_WRITE: _AW}
_SYNCED = _AR | _AW


def _mask_names(mask: int) -> str:
    parts = []
    for bit, kind in ((_PR, EV_READ), (_PW, EV_WRITE), (_AR, EV_ATOMIC_READ), (_AW, EV_ATOMIC_WRITE)):
        if mask & bit:
            parts.append(EVENT_NAMES[kind])
    return "+".join(parts)


@dataclass(frozen=True)
class RaceReport:
    """One unsynchronized conflicting access pair.

    Attributes
    ----------
    location:
        The word-granular location key both threads touched.
    region:
        Label of the ``parallel_for`` region the race occurred in.
    region_index:
        Ordinal of that region within the detector's watch (regions
        with the same label are distinguished by this).
    thread_a, thread_b:
        The two virtual-thread ids involved (``thread_a < thread_b``).
    access_a, access_b:
        Human-readable access summaries, e.g. ``"write"`` or
        ``"read+write"``.
    """

    location: object
    region: str
    region_index: int
    thread_a: int
    thread_b: int
    access_a: str
    access_b: str

    def __str__(self) -> str:
        return (
            f"RACE on {self.location!r} in region {self.region!r} "
            f"(#{self.region_index}): thread {self.thread_a} "
            f"[{self.access_a}] vs thread {self.thread_b} [{self.access_b}]"
        )


class RaceDetector:
    """Region observer implementing happens-before race detection.

    Usage::

        detector = RaceDetector()
        with detector.watch(pool):
            run_kernel(pool, ...)
        for race in detector.races:
            print(race)

    The detector deduplicates: each ``(location, region label,
    thread pair)`` is reported once per watch.
    """

    def __init__(self) -> None:
        self.races: list[RaceReport] = []
        self.regions_checked = 0
        self.events_seen = 0
        self._pool = None
        self._seen: set[tuple] = set()
        self._main_clock: VectorClock | None = None

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def attach(self, pool) -> None:
        """Install this detector as ``pool``'s region observer."""
        pool.set_observer(self)
        self._pool = pool
        self._main_clock = None

    def detach(self) -> None:
        """Remove the detector from its pool."""
        if self._pool is not None and self._pool.observer is self:
            self._pool.set_observer(None)
        self._pool = None

    def watch(self, pool):
        """Context manager attaching for the duration of a block."""
        detector = self

        class _Watch:
            def __enter__(self):
                detector.attach(pool)
                return detector

            def __exit__(self, *exc):
                detector.detach()
                return False

        return _Watch()

    # ------------------------------------------------------------------
    # observer protocol
    # ------------------------------------------------------------------

    def on_region_begin(self, label: str, contexts: list[ThreadContext]) -> None:
        for ctx in contexts:
            ctx.begin_recording()

    def on_region_end(self, label: str, contexts: list[ThreadContext]) -> None:
        self.regions_checked += 1
        n = len(contexts)
        if self._main_clock is None or self._main_clock.width < n:
            # widen lazily; old components carry over ordering
            widened = VectorClock(n)
            if self._main_clock is not None:
                for i in range(self._main_clock.width):
                    widened._c[i] = self._main_clock[i]
            self._main_clock = widened
        main = self._main_clock
        epochs = [main.copy().tick(t) for t in range(n)]

        # location -> {thread_id: access mask}
        by_location: dict[object, dict[int, int]] = {}
        for ctx in contexts:
            events = ctx.end_recording()
            self.events_seen += len(events)
            t = ctx.thread_id
            for kind, loc in events:
                threads = by_location.get(loc)
                if threads is None:
                    threads = by_location.setdefault(loc, {})
                threads[t] = threads.get(t, 0) | _KIND_TO_BIT[kind]

        for loc, threads in by_location.items():
            if len(threads) < 2:
                continue
            items = sorted(threads.items())
            for i in range(len(items)):
                ta, ma = items[i]
                for j in range(i + 1, len(items)):
                    tb, mb = items[j]
                    if not epochs[ta].concurrent_with(epochs[tb]):
                        continue  # ordered by happens-before: no race
                    if not self._conflicts(ma, mb):
                        continue
                    key = (loc, label, ta, tb)
                    if key in self._seen:
                        continue
                    self._seen.add(key)
                    self.races.append(
                        RaceReport(
                            location=loc,
                            region=label,
                            region_index=self.regions_checked - 1,
                            thread_a=ta,
                            thread_b=tb,
                            access_a=_mask_names(ma),
                            access_b=_mask_names(mb),
                        )
                    )

        # the barrier: every epoch joins back into the main clock, so
        # all accesses of later regions are ordered after this one
        for epoch in epochs:
            main.join(epoch)

    # ------------------------------------------------------------------

    @staticmethod
    def _conflicts(ma: int, mb: int) -> bool:
        """Unsynchronized conflicting access between two masks?

        At least one side writes, and at least one of the involved
        accesses is plain.  All-atomic pairs are synchronized by the
        wrappers; plain-read vs plain-read is harmless.
        """
        a_plain = ma & (_PR | _PW)
        b_plain = mb & (_PR | _PW)
        # plain write vs any access on the other side
        if (ma & _PW) and mb:
            return True
        if (mb & _PW) and ma:
            return True
        # plain read vs (atomic or plain) write on the other side
        if a_plain & _PR and mb & (_AW | _PW):
            return True
        if b_plain & _PR and ma & (_AW | _PW):
            return True
        return False

    @property
    def race_count(self) -> int:
        return len(self.races)

    def summary(self) -> str:
        """One-line human summary of the watch."""
        return (
            f"{self.regions_checked} regions, {self.events_seen} events, "
            f"{len(self.races)} race(s)"
        )
