"""SimFlow — interprocedural CFG dataflow analysis (SAN4xx).

The SAN1xx–3xx lints are per-statement AST pattern checks.  SimFlow is
the next rung: it builds a control-flow graph per function
(:mod:`repro.sanitizer.cfg`), a call graph over ``src/repro`` (plus any
extra analyzed trees), and runs three flow-sensitive analyses over
every ``parallel_for`` worker closure *and the helpers it calls*:

**Divergent-sync analysis (SAN401/SAN402).**  The substrate's kernels
are bulk-synchronous: every virtual thread must reach the same sync
points.  A taint lattice marks *thread-variant* values — the loop
item, anything reached through ``ctx`` (``ctx.thread_id``, values
loaded via charged helpers), and everything data-dependent on them —
and postdominator-based control dependence then decides whether a
sync-relevant operation's reachability or execution count depends on a
thread-variant value:

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
SAN401    error     barrier-class operation (nested ``parallel_for``,
                    ``pool.phase`` / ``serial_region`` entry) reachable
                    only under a thread-variant branch — the static
                    analogue of a mismatched-collective hang
SAN402    error     sync operation whose per-thread execution count
                    provably differs: a barrier-class op inside a loop
                    with thread-variant bounds, or a *contended*
                    ``ctx.atomic`` on a thread-uniform location under
                    thread-variant control
SAN402    warning   nested parallel region reached uniformly inside a
                    worker (the substrate raises ``SchedulerError`` at
                    runtime; a real backend would nest or deadlock)
========  ========  ====================================================

``contended=False`` atomics (commutative relaxed accumulation) are
exempt — they pair with nothing, so divergence cannot hang them.

**Disjoint-write inference (SAN403 / verified-disjoint).**  A symbolic
interval analysis over loop and chunk bounds classifies every bare
subscript store into a captured container:

* *verified-disjoint* — the index is affine in the loop item
  (``a*item + b``, covering strided per-item slices when the store
  interval width fits the stride), or stays inside the worker's owned
  ``[start, end)`` chunk for the ``start, end = chunk`` idiom.  Sites
  the SAN201 lint would warn about are downgraded.
* SAN403 (error) — the store provably escapes the owned slice
  (``arr[i + 1]`` inside ``for i in range(start, end)``, ``arr[end]``,
  or an index that folds contiguous items via ``% c`` / ``// c``).
* *unproven* — neither; the SAN1xx/2xx lint verdict stands.

**Kernel effect signatures (SAN404/SAN405).**  For every kernel on the
:data:`repro.sanitizer.kernels.KERNELS` registry, SimFlow walks the
call graph from the kernel body to every reachable ``parallel_for``
worker and infers the kernel's effect sets — captured containers read
and written, plus names synchronized through atomics (``Atomic*``
receivers called with ``ctx`` and constant ``ctx.atomic`` location
tags).  The inferred signature is checked against the declared
:data:`~repro.sanitizer.kernels.KERNEL_EFFECTS`:

========  ========  ====================================================
SAN404    error     inferred effect missing from the declaration —
                    the kernel's parallel footprint drifted
SAN405    warning   declared effect no longer inferred (stale)
========  ========  ====================================================

Drift can be acknowledged through a committed baseline file
(``flow_baseline.json`` next to this module, or ``--flow-baseline``):
a mapping of finding keys to *reasons*; baselined findings are
reported but do not fail the gate.  An empty ``entries`` object is the
healthy state.

A trailing ``# sani: ok - reason`` comment suppresses SimFlow findings
on that line, same as the SAN1xx–3xx lint.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.sanitizer.cfg import CFG, build_cfg
from repro.sanitizer.lint import (
    MUTATING_METHODS,
    SAFE_BUILTINS,
    LintFinding,
    _assigned_names,
    _base_name,
    _find_workers,
    _free_names,
    _suppressed_lines,
    _WorkerInfo,
)

__all__ = [
    "FlowFinding",
    "VerifiedStore",
    "FlowReport",
    "EffectSignature",
    "FlowAnalyzer",
    "ModuleIndex",
    "analyze_paths",
    "analyze_source",
    "infer_kernel_effects",
    "check_kernel_effects",
    "load_baseline",
    "apply_baseline",
    "stale_baseline_entries",
    "flow_selftest",
    "DEFAULT_BASELINE_PATH",
]

#: Barrier-class attribute names: reaching one is a collective act.
BARRIER_ATTRS = frozenset({"parallel_for", "serial_region", "phase", "barrier"})
#: Barrier attrs that open a region (nested-region warning applies).
REGION_ATTRS = frozenset({"parallel_for", "serial_region"})

#: Committed drift baseline shipped with the package.
DEFAULT_BASELINE_PATH = Path(__file__).with_name("flow_baseline.json")

#: Interprocedural recursion bound (call chains deeper than this are
#: assumed sync-free; the repo's worker->helper chains are depth <= 2).
MAX_CALL_DEPTH = 4


@dataclass(frozen=True)
class FlowFinding(LintFinding):
    """A SAN4xx finding plus its line-stable baseline key."""

    key: str = ""


@dataclass(frozen=True)
class VerifiedStore:
    """One subscript store proved disjoint across virtual threads."""

    path: str
    line: int
    base: str
    worker: str
    mode: str  # "per-item" | "chunk"

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line} store into {self.base!r} "
            f"verified-disjoint ({self.mode}, worker {self.worker!r})"
        )


@dataclass
class FlowReport:
    """Outcome of one SimFlow run over a path set and/or kernel set."""

    findings: list[FlowFinding] = field(default_factory=list)
    verified: list[VerifiedStore] = field(default_factory=list)
    files: int = 0
    workers: int = 0
    #: kernel name -> inferred EffectSignature (when kernels were checked)
    effects: dict[str, "EffectSignature"] = field(default_factory=dict)
    #: (path, line) of suppression markers that actually swallowed a
    #: finding this run — SAN002 (dead-suppression) treats these alive
    suppressed_hits: set = field(default_factory=set)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    def verified_lines(self) -> set[tuple[str, int]]:
        """(path, line) pairs eligible for a SAN201 downgrade."""
        return {(v.path, v.line) for v in self.verified}


@dataclass(frozen=True)
class EffectSignature:
    """Inferred or declared read/write/atomic effect sets of a kernel."""

    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    atomics: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, list[str]]:
        return {
            "reads": list(self.reads),
            "writes": list(self.writes),
            "atomics": list(self.atomics),
        }


# ======================================================================
# module index + call graph
# ======================================================================


class ModuleInfo:
    """Parsed module: function table, import aliases, suppressions."""

    def __init__(self, name: str, path: str, source: str) -> None:
        self.name = name
        self.path = path
        self.tree = ast.parse(source, filename=path)
        self.suppressed = _suppressed_lines(source)
        #: dotted local path ("outer.inner") -> function node
        self.functions: dict[str, ast.FunctionDef] = {}
        #: local alias -> (module, attr-or-None)
        self.imports: dict[str, tuple[str, str | None]] = {}
        self._collect()

    def _collect(self) -> None:
        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qual = f"{prefix}{child.name}" if prefix else child.name
                    self.functions[qual] = child
                    visit(child, qual + ".")
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}{child.name}.")
                else:
                    visit(child, prefix)

        visit(self.tree, "")
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name,
                        None,
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    if node.module:
                        self.imports[alias.asname or alias.name] = (
                            node.module,
                            alias.name,
                        )


@dataclass(frozen=True)
class FunctionRef:
    """A resolved function: its module plus local dotted path."""

    module: "ModuleInfo"
    qualpath: str
    node: ast.FunctionDef

    @property
    def qualname(self) -> str:
        return f"{self.module.name}.{self.qualpath}"


class ModuleIndex:
    """File set under analysis, keyed by module name and by path."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}

    def add_file(self, path: Path, module_name: str) -> ModuleInfo | None:
        key = str(path.resolve())
        if key in self.by_path:
            return self.by_path[key]
        try:
            source = path.read_text(encoding="utf-8")
            info = ModuleInfo(module_name, str(path), source)
        except (OSError, SyntaxError):
            return None  # the lint pass reports syntax errors (SAN000)
        self.modules[module_name] = info
        self.by_path[key] = info
        return info

    def add_tree(self, root: Path) -> None:
        """Index every ``*.py`` under ``root`` as dotted modules."""
        root = root.resolve()
        for f in sorted(root.rglob("*.py")):
            parts = f.relative_to(root.parent).with_suffix("").parts
            if parts[-1] == "__init__":
                parts = parts[:-1]
            self.add_file(f, ".".join(parts))

    def get_function(self, module: str, name: str) -> FunctionRef | None:
        info = self.modules.get(module)
        if info is None:
            return None
        node = info.functions.get(name)
        if node is None:
            return None
        return FunctionRef(info, name, node)

    def resolve_call(
        self, module: ModuleInfo, scope: tuple[str, ...], call: ast.Call
    ) -> FunctionRef | None:
        """Resolve a call's target within the indexed file set.

        Bare names search the enclosing function scopes innermost-out,
        then module top level, then ``from X import y`` aliases;
        ``m.f(...)`` resolves through ``import m`` aliases.  Method
        calls on objects are not resolved (class dispatch is out of
        scope — receivers show up in effect sets instead).
        """
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            for depth in range(len(scope), -1, -1):
                prefix = ".".join(scope[:depth])
                qual = f"{prefix}.{name}" if prefix else name
                node = module.functions.get(qual)
                if node is not None:
                    return FunctionRef(module, qual, node)
            target = module.imports.get(name)
            if target is not None:
                mod, attr = target
                if attr is not None:
                    return self.get_function(mod, attr)
            return None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            target = module.imports.get(func.value.id)
            if target is not None and target[1] is None:
                return self.get_function(target[0], func.attr)
        return None


def default_index() -> ModuleIndex:
    """Index of the repo's own ``src`` tree (the call-graph universe)."""
    index = ModuleIndex()
    src_root = Path(__file__).resolve().parents[2]
    index.add_tree(src_root / "repro")
    return index


# ======================================================================
# affine / interval arithmetic for the disjoint-write proof
# ======================================================================

#: Affine values are dicts {symbol: coefficient} with "" as the
#: constant term.  Symbols are the item parameter, chunk bounds, and
#: range-loop variables.  ``None`` means "not affine"; the sentinel
#: below marks a provably non-injective fold of the item.
_NON_INJECTIVE = object()


def _aff_const(c: int) -> dict[str, int]:
    return {"": c}


def _aff_sym(name: str) -> dict[str, int]:
    return {"": 0, name: 1}


def _aff_add(a: dict[str, int], b: dict[str, int], sign: int) -> dict[str, int]:
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0) + sign * v
    return {k: v for k, v in out.items() if k == "" or v != 0} or {"": 0}


def _aff_scale(a: dict[str, int], k: int) -> dict[str, int]:
    return {key: v * k for key, v in a.items()}


class _AffineEnv:
    """Evaluates expressions to affine forms over the worker's symbols."""

    def __init__(
        self,
        symbols: set[str],
        bindings: dict[str, ast.expr],
        item: str | None,
    ) -> None:
        self.symbols = symbols  # item / chunk bounds / loop vars
        self.bindings = bindings  # single-assignment name -> value expr
        self.item = item
        self._cache: dict[str, object] = {}
        self._busy: set[str] = set()

    def eval(self, expr: ast.expr) -> object:
        """Affine dict, :data:`_NON_INJECTIVE`, or None."""
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(expr.value, int):
                return None
            return _aff_const(expr.value)
        if isinstance(expr, ast.Name):
            return self._name(expr.id)
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            inner = self.eval(expr.operand)
            if isinstance(inner, dict):
                return _aff_scale(inner, -1)
            return inner
        if isinstance(expr, ast.Call):
            # int(x) is affine-transparent; everything else is opaque
            if (
                isinstance(expr.func, ast.Name)
                and expr.func.id == "int"
                and len(expr.args) == 1
                and not expr.keywords
            ):
                return self.eval(expr.args[0])
            return None
        if isinstance(expr, ast.BinOp):
            return self._binop(expr)
        return None

    def _name(self, name: str) -> object:
        if name in self.symbols:
            return _aff_sym(name)
        if name in self._cache:
            return self._cache[name]
        bound = self.bindings.get(name)
        if bound is None or name in self._busy:
            return None
        self._busy.add(name)
        try:
            value = self.eval(bound)
        finally:
            self._busy.discard(name)
        self._cache[name] = value
        return value

    def _binop(self, expr: ast.BinOp) -> object:
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if isinstance(expr.op, (ast.Mod, ast.FloorDiv)):
            # item % c / item // c with constant c >= 2 provably folds
            # distinct (contiguous) items onto shared slots
            if (
                isinstance(left, dict)
                and self.item is not None
                and left.get(self.item)
                and isinstance(right, dict)
                and set(right) == {""}
                and abs(right[""]) >= 2
            ):
                return _NON_INJECTIVE
            return None
        if left is _NON_INJECTIVE or right is _NON_INJECTIVE:
            return _NON_INJECTIVE
        if not isinstance(left, dict) or not isinstance(right, dict):
            return None
        if isinstance(expr.op, ast.Add):
            return _aff_add(left, right, 1)
        if isinstance(expr.op, ast.Sub):
            return _aff_add(left, right, -1)
        if isinstance(expr.op, ast.Mult):
            if set(left) == {""}:
                return _aff_scale(right, left[""])
            if set(right) == {""}:
                return _aff_scale(left, right[""])
        return None


def _range_bounds(
    call: ast.expr, env: _AffineEnv
) -> tuple[object, object] | None:
    """(lo, hi) affine bounds of a ``range(...)`` call, else None.

    Only unit-step ranges are handled; ``hi`` is exclusive.
    """
    if not (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
        and not call.keywords
        and 1 <= len(call.args) <= 3
    ):
        return None
    if len(call.args) == 3:
        step = call.args[2]
        if not (isinstance(step, ast.Constant) and step.value == 1):
            return None
    if len(call.args) == 1:
        lo: object = _aff_const(0)
        hi = env.eval(call.args[0])
    else:
        lo = env.eval(call.args[0])
        hi = env.eval(call.args[1])
    if not isinstance(lo, dict) or not isinstance(hi, dict):
        return None
    return lo, hi


# ======================================================================
# the analyzer
# ======================================================================


@dataclass(frozen=True)
class _SyncIssue:
    """A sync op's classification inside one analyzed function."""

    kind: str  # "branch" | "loop" | "nested-region" | "uniform"
    attr: str  # the operation name, e.g. "parallel_for"
    line: int
    qualname: str  # function the op textually lives in


class FlowAnalyzer:
    """SimFlow over a module index; reusable across files and kernels."""

    def __init__(self, index: ModuleIndex | None = None) -> None:
        self.index = index if index is not None else default_index()
        #: (qualname, variant-params, ctx-params) -> list[_SyncIssue]
        self._summaries: dict[tuple, list[_SyncIssue]] = {}

    # ------------------------------------------------------------------
    # path analysis: divergence + disjoint writes over worker closures
    # ------------------------------------------------------------------

    def analyze_paths(self, paths: list) -> FlowReport:
        report = FlowReport()
        files: list[Path] = []
        for entry in paths:
            p = Path(entry)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            else:
                files.append(p)
        for f in files:
            self._analyze_file(f, report)
        _finish(report)
        return report

    def _module_for(self, path: Path) -> ModuleInfo | None:
        key = str(path.resolve())
        info = self.index.by_path.get(key)
        if info is not None:
            return info
        return self.index.add_file(path, path.stem)

    def _analyze_file(self, path: Path, report: FlowReport) -> None:
        info = self._module_for(path)
        if info is None:
            return
        report.files += 1
        self.analyze_module(info, report)

    def analyze_module(self, info: ModuleInfo, report: FlowReport) -> None:
        seen: set[int] = set()
        for worker in _find_workers(info.tree):
            if id(worker.node) in seen:
                continue
            seen.add(id(worker.node))
            report.workers += 1
            self._analyze_worker(worker, info, report)

    def _worker_scope(self, info: ModuleInfo, node: ast.AST) -> tuple[str, ...]:
        """Dotted scope of the function lexically containing ``node``."""
        for qual, fn in info.functions.items():
            for inner in ast.walk(fn):
                if inner is node and inner is not fn:
                    return tuple(qual.split("."))
        return ()

    def _analyze_worker(
        self, worker: _WorkerInfo, info: ModuleInfo, report: FlowReport
    ) -> None:
        node = worker.node
        scope = self._worker_scope(info, node)
        name = getattr(node, "name", "<lambda>")
        variant = {n for n in (worker.item, worker.ctx) if n}
        ctx_names = {worker.ctx} if worker.ctx else set()
        issues = self._function_sync_issues(
            node,
            info,
            scope + (name,),
            variant_names=variant,
            ctx_names=ctx_names,
            depth=0,
        )
        for issue in issues:
            self._emit_sync(issue, worker, info, report)
        self._disjoint_stores(worker, info, report, worker_name=name)

    # -- divergence ----------------------------------------------------

    def _function_sync_issues(
        self,
        node,
        info: ModuleInfo,
        scope: tuple[str, ...],
        variant_names: set[str],
        ctx_names: set[str],
        depth: int,
    ) -> list[_SyncIssue]:
        """Classify every sync op reachable from ``node``'s body."""
        if depth > MAX_CALL_DEPTH:
            return []
        cfg = build_cfg(node)
        variant = self._taint(node, variant_names)
        cd = cfg.transitive_control_dependence()

        def test_variant(bid: int) -> bool:
            test = cfg.blocks[bid].test
            return test is not None and self._expr_variant(test, variant)

        div_branch = [False] * len(cfg.blocks)
        div_loop = [False] * len(cfg.blocks)
        for b in range(len(cfg.blocks)):
            for c in cd[b]:
                if not test_variant(c):
                    continue
                if cfg.blocks[c].kind == "if":
                    div_branch[b] = True
                elif cfg.blocks[c].is_loop:
                    div_loop[b] = True

        qualname = f"{info.name}.{'.'.join(scope)}" if scope else info.name
        issues: list[_SyncIssue] = []
        for block in cfg.blocks:
            for stmt in block.stmts:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    issues.extend(
                        self._classify_call(
                            call,
                            block.bid,
                            div_branch,
                            div_loop,
                            variant,
                            ctx_names,
                            info,
                            scope,
                            qualname,
                            depth,
                        )
                    )
        return issues

    def _classify_call(
        self,
        call: ast.Call,
        bid: int,
        div_branch: list[bool],
        div_loop: list[bool],
        variant: set[str],
        ctx_names: set[str],
        info: ModuleInfo,
        scope: tuple[str, ...],
        qualname: str,
        depth: int,
    ) -> list[_SyncIssue]:
        func = call.func
        here_branch = div_branch[bid]
        here_loop = div_loop[bid]

        if isinstance(func, ast.Attribute):
            base = _base_name(func.value)
            if func.attr in BARRIER_ATTRS and base not in ctx_names:
                if here_branch:
                    kind = "branch"
                elif here_loop:
                    kind = "loop"
                elif func.attr in REGION_ATTRS:
                    kind = "nested-region"
                else:
                    kind = "uniform"
                return [_SyncIssue(kind, func.attr, call.lineno, qualname)]
            if func.attr == "atomic" and base in ctx_names:
                contended = True
                for kw in call.keywords:
                    if (
                        kw.arg == "contended"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                    ):
                        contended = False
                location = call.args[0] if call.args else None
                uniform_loc = location is not None and not self._expr_variant(
                    location, variant
                )
                if contended and uniform_loc and (here_branch or here_loop):
                    return [
                        _SyncIssue("loop", "atomic", call.lineno, qualname)
                    ]
                return []

        # interprocedural: follow resolvable plain-function calls
        target = self.index.resolve_call(info, scope, call)
        if target is None:
            return []
        callee_issues = self._callee_summary(
            target, call, variant, ctx_names, depth
        )
        out: list[_SyncIssue] = []
        for issue in callee_issues:
            kind = issue.kind
            # the call site's own divergence dominates the callee's
            if here_branch:
                kind = "branch"
            elif here_loop and kind in ("uniform", "nested-region"):
                kind = "loop"
            out.append(
                _SyncIssue(kind, issue.attr, call.lineno, issue.qualname)
            )
        return out

    def _callee_summary(
        self,
        target: FunctionRef,
        call: ast.Call,
        variant: set[str],
        ctx_names: set[str],
        depth: int,
    ) -> list[_SyncIssue]:
        params = [
            a.arg
            for a in (
                target.node.args.posonlyargs + target.node.args.args
            )
        ]
        variant_idx: set[int] = set()
        ctx_idx: set[int] = set()

        def classify_arg(i: int, arg: ast.expr) -> None:
            if i >= len(params):
                return
            if self._expr_variant(arg, variant):
                variant_idx.add(i)
            if isinstance(arg, ast.Name) and arg.id in ctx_names:
                ctx_idx.add(i)

        for i, arg in enumerate(call.args):
            classify_arg(i, arg)
        for kw in call.keywords:
            if kw.arg in params:
                classify_arg(params.index(kw.arg), kw.value)

        key = (
            target.qualname,
            frozenset(variant_idx),
            frozenset(ctx_idx),
        )
        if key in self._summaries:
            return self._summaries[key]
        self._summaries[key] = []  # cycle guard: recursion is sync-free
        callee_variant = {params[i] for i in variant_idx} | {
            params[i] for i in ctx_idx
        }
        callee_ctx = {params[i] for i in ctx_idx}
        scope = tuple(target.qualpath.split("."))
        issues = self._function_sync_issues(
            target.node,
            target.module,
            scope,
            variant_names=callee_variant,
            ctx_names=callee_ctx,
            depth=depth + 1,
        )
        self._summaries[key] = issues
        return issues

    def _taint(self, node, seeds: set[str]) -> set[str]:
        """Thread-variant names: fixpoint over the function's bindings."""
        variant = set(seeds)
        changed = True
        while changed:
            changed = False
            for inner in ast.walk(node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(inner, ast.Assign):
                    value = inner.value
                    targets = inner.targets
                elif isinstance(inner, (ast.AugAssign, ast.AnnAssign)):
                    value = inner.value
                    targets = [inner.target]
                elif isinstance(inner, ast.NamedExpr):
                    value = inner.value
                    targets = [inner.target]
                elif isinstance(inner, (ast.For, ast.AsyncFor)):
                    value = inner.iter
                    targets = [inner.target]
                elif isinstance(inner, ast.withitem):
                    value = inner.context_expr
                    targets = (
                        [inner.optional_vars]
                        if inner.optional_vars is not None
                        else []
                    )
                else:
                    continue
                if value is None or not self._expr_variant(value, variant):
                    continue
                for target in targets:
                    for tname in ast.walk(target):
                        if (
                            isinstance(tname, ast.Name)
                            and tname.id not in variant
                        ):
                            variant.add(tname.id)
                            changed = True
        return variant

    @staticmethod
    def _expr_variant(expr: ast.expr, variant: set[str]) -> bool:
        return any(n in variant for n in _free_names(expr))

    def _emit_sync(
        self,
        issue: _SyncIssue,
        worker: _WorkerInfo,
        info: ModuleInfo,
        report: FlowReport,
    ) -> None:
        if issue.kind == "uniform":
            return
        worker_name = getattr(worker.node, "name", "<lambda>")
        where = (
            ""
            if issue.qualname.endswith(f".{worker_name}")
            else f" (via {issue.qualname})"
        )
        if issue.kind == "branch":
            code, severity = "SAN401", "error"
            message = (
                f"sync operation .{issue.attr}() is reachable only under "
                "a thread-variant branch: virtual threads disagree on "
                "arriving at this collective — the static analogue of a "
                f"mismatched-barrier hang{where}"
            )
        elif issue.kind == "loop":
            code, severity = "SAN402", "error"
            message = (
                f"per-thread execution count of sync operation "
                f".{issue.attr}() differs across threads (thread-variant "
                f"loop bounds or guard): collectives must pair "
                f"1:1 across the region{where}"
            )
        else:  # nested-region
            code, severity = "SAN402", "warning"
            message = (
                f"nested parallel region .{issue.attr}() inside worker "
                f"{worker_name!r}: the substrate raises SchedulerError "
                f"when this executes; hoist it out of the worker{where}"
            )
        # interprocedural issues carry the caller-side call line, so
        # the finding (and any suppression) lands in the worker's file
        line = issue.line
        if line in info.suppressed:
            report.suppressed_hits.add((info.path, line))
            return
        report.findings.append(
            FlowFinding(
                path=info.path,
                line=line,
                col=0,
                code=code,
                severity=severity,
                message=message,
                key=(
                    f"{code}:{Path(info.path).name}:{worker_name}:"
                    f"{issue.attr}:{issue.qualname.rsplit('.', 1)[-1]}"
                ),
            )
        )

    # -- disjoint writes -----------------------------------------------

    def _disjoint_stores(
        self,
        worker: _WorkerInfo,
        info: ModuleInfo,
        report: FlowReport,
        worker_name: str,
    ) -> None:
        node = worker.node
        if isinstance(node, ast.Lambda):
            return  # a lambda body cannot contain a statement store
        locals_: set[str] = set()
        for stmt in node.body:
            locals_ |= _assigned_names(stmt)
        params = {p for p in (worker.item, worker.ctx) if p}

        # assignment counts decide which names are single-assignment
        counts: dict[str, int] = {}
        bindings: dict[str, ast.expr] = {}
        for inner in ast.walk(node):
            if isinstance(inner, ast.Assign) and len(inner.targets) == 1:
                t = inner.targets[0]
                if isinstance(t, ast.Name):
                    counts[t.id] = counts.get(t.id, 0) + 1
                    bindings[t.id] = inner.value
                elif isinstance(t, ast.Tuple):
                    for e in t.elts:
                        if isinstance(e, ast.Name):
                            counts[e.id] = counts.get(e.id, 0) + 1
            elif isinstance(inner, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(inner.target, ast.Name):
                    counts[inner.target.id] = (
                        counts.get(inner.target.id, 0) + 2
                    )  # re-binding: never single-assignment
            elif isinstance(inner, (ast.For, ast.AsyncFor)):
                for e in ast.walk(inner.target):
                    if isinstance(e, ast.Name):
                        counts[e.id] = counts.get(e.id, 0) + 2
        bindings = {
            n: v for n, v in bindings.items() if counts.get(n, 0) == 1
        }

        # the chunk idiom: start, end = <item>
        chunk: tuple[str, str] | None = None
        if worker.item:
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Assign)
                    and len(inner.targets) == 1
                    and isinstance(inner.targets[0], ast.Tuple)
                    and len(inner.targets[0].elts) == 2
                    and all(
                        isinstance(e, ast.Name)
                        for e in inner.targets[0].elts
                    )
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == worker.item
                ):
                    lo, hi = (e.id for e in inner.targets[0].elts)
                    if counts.get(lo, 0) == 1 and counts.get(hi, 0) == 1:
                        chunk = (lo, hi)
                    break

        item_ok = worker.item is not None and counts.get(worker.item, 0) == 0
        symbols: set[str] = set()
        if item_ok and chunk is None:
            symbols.add(worker.item)  # type: ignore[arg-type]
        if chunk is not None:
            symbols |= set(chunk)
        env = _AffineEnv(
            symbols, bindings, worker.item if item_ok else None
        )
        contiguous = isinstance(worker.items, ast.Call) and (
            isinstance(worker.items.func, ast.Name)
            and worker.items.func.id == "range"
        )

        # walk statements with the enclosing for-loop stack
        loop_stack: list[tuple[str, dict[str, int], dict[str, int]]] = []

        def visit(stmts: list[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    bound = None
                    if isinstance(stmt.target, ast.Name):
                        bound = _range_bounds(stmt.iter, env)
                    if bound is not None:
                        lo, hi = bound
                        symbols.add(stmt.target.id)  # loop var is symbolic
                        loop_stack.append(
                            (stmt.target.id, lo, hi)  # type: ignore[arg-type]
                        )
                        check_stmt(stmt)
                        visit(stmt.body)
                        visit(stmt.orelse)
                        loop_stack.pop()
                        symbols.discard(stmt.target.id)
                    else:
                        check_stmt(stmt)
                        visit(stmt.body)
                        visit(stmt.orelse)
                elif isinstance(stmt, (ast.If, ast.While)):
                    check_stmt(stmt)
                    visit(stmt.body)
                    visit(stmt.orelse)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    check_stmt(stmt)
                    visit(stmt.body)
                elif isinstance(stmt, ast.Try):
                    visit(stmt.body)
                    for handler in stmt.handlers:
                        visit(handler.body)
                    visit(stmt.orelse)
                    visit(stmt.finalbody)
                else:
                    check_stmt(stmt)

        def check_stmt(stmt: ast.stmt) -> None:
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.If, ast.While)):
                return  # only immediate (non-nested) targets below
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            else:
                return
            for target in targets:
                if isinstance(target, ast.Subscript):
                    check_store(target)

        def check_store(target: ast.Subscript) -> None:
            base = _base_name(target.value)
            if (
                base is None
                or base in locals_
                or base in params
                or base in SAFE_BUILTINS
            ):
                return
            if isinstance(target.slice, ast.Slice):
                return
            value = env.eval(target.slice)
            line = target.lineno
            if value is _NON_INJECTIVE:
                if contiguous and line in info.suppressed:
                    report.suppressed_hits.add((info.path, line))
                elif contiguous:
                    report.findings.append(
                        FlowFinding(
                            path=info.path,
                            line=line,
                            col=target.col_offset,
                            code="SAN403",
                            severity="error",
                            message=(
                                f"store into captured {base!r} at an "
                                "index that folds distinct items onto "
                                "the same slot (% / // of the loop "
                                "item): contiguous items provably "
                                "collide across virtual threads",
                            )[0],
                            key=(
                                f"SAN403:{Path(info.path).name}:"
                                f"{worker_name}:{base}"
                            ),
                        )
                    )
                return
            if not isinstance(value, dict):
                return
            self._judge_store(
                value,
                loop_stack,
                chunk,
                worker,
                base,
                line,
                info,
                report,
                worker_name,
            )

        visit(node.body)

    def _judge_store(
        self,
        affine: dict[str, int],
        loop_stack: list,
        chunk: tuple[str, str] | None,
        worker: _WorkerInfo,
        base: str,
        line: int,
        info: ModuleInfo,
        report: FlowReport,
        worker_name: str,
    ) -> None:
        # substitute loop variables by their interval endpoints
        lo_aff = dict(affine)
        hi_aff = dict(affine)

        def subst(a: dict[str, int], var: str, repl: dict[str, int]) -> dict:
            coef = a.pop(var, 0)
            if coef:
                for k, v in repl.items():
                    a[k] = a.get(k, 0) + coef * v
            return a

        for var, lo, hi in reversed(loop_stack):
            coef = affine.get(var, 0)
            hi_minus_1 = _aff_add(hi, _aff_const(1), -1)
            if coef >= 0:
                lo_aff = subst(lo_aff, var, lo)
                hi_aff = subst(hi_aff, var, hi_minus_1)
            else:
                lo_aff = subst(lo_aff, var, hi_minus_1)
                hi_aff = subst(hi_aff, var, lo)

        def clean(a: dict[str, int]) -> dict[str, int]:
            return {k: v for k, v in a.items() if k == "" or v != 0} or {
                "": 0
            }

        lo_aff, hi_aff = clean(lo_aff), clean(hi_aff)

        def emit_403(reason: str) -> None:
            if line in info.suppressed:
                report.suppressed_hits.add((info.path, line))
                return
            report.findings.append(
                FlowFinding(
                    path=info.path,
                    line=line,
                    col=0,
                    code="SAN403",
                    severity="error",
                    message=(
                        f"store into captured {base!r} provably escapes "
                        f"the worker's owned slice: {reason} — another "
                        "virtual thread owns that slot"
                    ),
                    key=(
                        f"SAN403:{Path(info.path).name}:"
                        f"{worker_name}:{base}"
                    ),
                )
            )

        def verify(mode: str) -> None:
            report.verified.append(
                VerifiedStore(
                    path=info.path,
                    line=line,
                    base=base,
                    worker=worker_name,
                    mode=mode,
                )
            )

        if chunk is not None:
            lo_sym, hi_sym = chunk
            # lower bound against the chunk start
            lo_ok = None
            if set(lo_aff) <= {"", lo_sym} and lo_aff.get(lo_sym, 0) == 1:
                lo_ok = lo_aff.get("", 0) >= 0
            elif set(lo_aff) <= {"", hi_sym} and lo_aff.get(hi_sym, 0) == 1:
                # index >= end + c: at or past the chunk's end
                if lo_aff.get("", 0) >= 0:
                    emit_403(
                        f"index lower bound is {hi_sym} + "
                        f"{lo_aff.get('', 0)} (the owned slice is "
                        f"[{lo_sym}, {hi_sym}))"
                    )
                    return
            # upper bound against the exclusive chunk end
            hi_ok = None
            if set(hi_aff) <= {"", hi_sym} and hi_aff.get(hi_sym, 0) == 1:
                hi_ok = hi_aff.get("", 0) <= -1
                if not hi_ok:
                    emit_403(
                        f"index upper bound is {hi_sym} + "
                        f"{hi_aff.get('', 0)} but the owned slice ends "
                        f"at {hi_sym} - 1"
                    )
                    return
            if lo_ok is False:
                emit_403(
                    f"index lower bound is {lo_sym} - "
                    f"{-lo_aff.get('', 0)}, before the owned slice"
                )
                return
            if lo_ok and hi_ok:
                verify("chunk")
            return

        item = worker.item
        if item is None:
            return
        coef_lo = lo_aff.get(item, 0)
        coef_hi = hi_aff.get(item, 0)
        if (
            coef_lo == coef_hi
            and coef_lo != 0
            and set(lo_aff) <= {"", item}
            and set(hi_aff) <= {"", item}
        ):
            width = hi_aff.get("", 0) - lo_aff.get("", 0) + 1
            if 0 < width <= abs(coef_lo):
                verify("per-item")

    # ------------------------------------------------------------------
    # kernel effect signatures
    # ------------------------------------------------------------------

    def kernel_table(
        self, kernels_module: str = "repro.sanitizer.kernels"
    ) -> dict[str, str]:
        """Kernel name -> body-function name, parsed from the registry."""
        info = self.index.modules.get(kernels_module)
        if info is None:
            return {}
        for node in ast.walk(info.tree):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            else:
                continue
            if not (
                isinstance(target, ast.Name) and target.id == "KERNELS"
            ):
                continue
            value = node.value
            if not isinstance(value, ast.Dict):
                continue
            table: dict[str, str] = {}
            for k, v in zip(value.keys, value.values):
                if (
                    isinstance(k, ast.Constant)
                    and isinstance(k.value, str)
                    and isinstance(v, ast.Name)
                ):
                    table[k.value] = v.id
            return table
        return {}

    def infer_kernel_effects(
        self,
        names: list[str] | None = None,
        kernels_module: str = "repro.sanitizer.kernels",
    ) -> dict[str, EffectSignature]:
        table = self.kernel_table(kernels_module)
        info = self.index.modules.get(kernels_module)
        if info is None:
            return {}
        selected = names if names is not None else list(table)
        out: dict[str, EffectSignature] = {}
        for name in selected:
            fn_name = table.get(name)
            if fn_name is None:
                continue
            ref = self.index.get_function(kernels_module, fn_name)
            if ref is None:
                continue
            out[name] = self._effects_from(ref)
        return out

    def _effects_from(self, entry: FunctionRef) -> EffectSignature:
        reads: set[str] = set()
        writes: set[str] = set()
        atomics: set[str] = set()
        visited: set[str] = set()
        seen_workers: set[int] = set()
        queue: list[FunctionRef] = [entry]
        while queue:
            ref = queue.pop()
            if ref.qualname in visited:
                continue
            visited.add(ref.qualname)
            scope = tuple(ref.qualpath.split("."))
            for worker in _find_workers_in(ref.node):
                if id(worker.node) in seen_workers:
                    continue
                seen_workers.add(id(worker.node))
                r, w, a = _worker_effects(worker)
                reads |= r
                writes |= w
                atomics |= a
            for call in ast.walk(ref.node):
                if not isinstance(call, ast.Call):
                    continue
                target = self.index.resolve_call(ref.module, scope, call)
                if target is not None and target.qualname not in visited:
                    queue.append(target)
        return EffectSignature(
            reads=tuple(sorted(reads)),
            writes=tuple(sorted(writes)),
            atomics=tuple(sorted(atomics)),
        )

    def check_kernel_effects(
        self,
        declared: dict[str, EffectSignature],
        names: list[str] | None = None,
        kernels_module: str = "repro.sanitizer.kernels",
    ) -> tuple[list[FlowFinding], dict[str, EffectSignature]]:
        """SAN404/405 drift between inferred and declared signatures."""
        inferred = self.infer_kernel_effects(names, kernels_module)
        info = self.index.modules.get(kernels_module)
        table = self.kernel_table(kernels_module)
        findings: list[FlowFinding] = []
        for kernel, signature in inferred.items():
            decl = declared.get(kernel)
            fn = (
                info.functions.get(table.get(kernel, ""))
                if info is not None
                else None
            )
            line = fn.lineno if fn is not None else 0
            path = info.path if info is not None else kernels_module
            if decl is None:
                findings.append(
                    FlowFinding(
                        path=path,
                        line=line,
                        col=0,
                        code="SAN404",
                        severity="error",
                        message=(
                            f"kernel {kernel!r} has no declared effect "
                            "signature on KERNEL_EFFECTS; inferred "
                            f"{signature.as_dict()}"
                        ),
                        key=f"SAN404:{kernel}:<missing>",
                    )
                )
                continue
            for category in ("reads", "writes", "atomics"):
                inf = set(getattr(signature, category))
                dec = set(getattr(decl, category))
                for name in sorted(inf - dec):
                    findings.append(
                        FlowFinding(
                            path=path,
                            line=line,
                            col=0,
                            code="SAN404",
                            severity="error",
                            message=(
                                f"kernel {kernel!r} {category} "
                                f"{name!r} but the registry does not "
                                "declare it: the parallel footprint "
                                "drifted — update KERNEL_EFFECTS or "
                                "baseline the drift with a reason"
                            ),
                            key=f"SAN404:{kernel}:{category}:{name}",
                        )
                    )
                for name in sorted(dec - inf):
                    findings.append(
                        FlowFinding(
                            path=path,
                            line=line,
                            col=0,
                            code="SAN405",
                            severity="warning",
                            message=(
                                f"kernel {kernel!r} declares {category} "
                                f"{name!r} but SimFlow no longer infers "
                                "it: stale declaration"
                            ),
                            key=f"SAN405:{kernel}:{category}:{name}",
                        )
                    )
        return findings, inferred


def _find_workers_in(fn: ast.FunctionDef) -> list[_WorkerInfo]:
    """Workers of ``parallel_for`` calls textually inside ``fn``."""
    wrapper = ast.Module(body=[fn], type_ignores=[])
    return _find_workers(wrapper)  # type: ignore[arg-type]


def _worker_effects(
    worker: _WorkerInfo,
) -> tuple[set[str], set[str], set[str]]:
    """(reads, writes, atomics) of one worker closure."""
    node = worker.node
    body = node.body if isinstance(node.body, list) else [node.body]
    locals_: set[str] = set()
    for stmt in body:
        locals_ |= _assigned_names(stmt)
    params = {p for p in (worker.item, worker.ctx) if p}

    def captured(name: str | None) -> bool:
        return (
            name is not None
            and name not in locals_
            and name not in params
            and name not in SAFE_BUILTINS
        )

    reads: set[str] = set()
    writes: set[str] = set()
    atomics: set[str] = set()

    # type annotations contain subscripts (dict[int, ...]) that are
    # not runtime loads — exclude their subtrees
    ann_nodes: set[int] = set()
    for stmt in body:
        for inner in ast.walk(stmt):
            ann = getattr(inner, "annotation", None)
            if ann is not None:
                ann_nodes.update(id(a) for a in ast.walk(ann))
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inner.returns is not None:
                    ann_nodes.update(id(a) for a in ast.walk(inner.returns))

    def location_tag(expr: ast.expr | None) -> str | None:
        if (
            isinstance(expr, ast.Tuple)
            and expr.elts
            and isinstance(expr.elts[0], ast.Constant)
            and isinstance(expr.elts[0].value, str)
        ):
            return expr.elts[0].value
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        return None

    for stmt in body:
        for inner in ast.walk(stmt):
            if isinstance(inner, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    inner.targets
                    if isinstance(inner, ast.Assign)
                    else [inner.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = _base_name(target)
                        if captured(base):
                            writes.add(base)  # type: ignore[arg-type]
            elif isinstance(inner, ast.Subscript) and isinstance(
                inner.ctx, ast.Load
            ):
                if id(inner) in ann_nodes:
                    continue
                base = _base_name(inner.value)
                if captured(base):
                    reads.add(base)  # type: ignore[arg-type]
            elif isinstance(inner, ast.Call) and isinstance(
                inner.func, ast.Attribute
            ):
                base = _base_name(inner.func.value)
                if base == worker.ctx:
                    loc = inner.args[0] if inner.args else None
                    tag = location_tag(loc)
                    if tag is None:
                        continue
                    if inner.func.attr == "atomic":
                        atomics.add(tag)
                    elif inner.func.attr == "write":
                        writes.add(tag)
                    elif inner.func.attr == "read":
                        reads.add(tag)
                    continue
                passes_ctx = worker.ctx is not None and (
                    any(
                        isinstance(a, ast.Name) and a.id == worker.ctx
                        for a in inner.args
                    )
                    or any(
                        isinstance(kw.value, ast.Name)
                        and kw.value.id == worker.ctx
                        for kw in inner.keywords
                    )
                )
                if captured(base) and passes_ctx:
                    atomics.add(base)  # type: ignore[arg-type]
                elif (
                    captured(base)
                    and inner.func.attr in MUTATING_METHODS
                ):
                    writes.add(base)  # type: ignore[arg-type]
    return reads, writes, atomics


def _finish(report: FlowReport) -> None:
    """Dedupe (one worker can reach a callee along several summary
    paths) and order findings for stable output."""
    report.findings = sorted(
        set(report.findings),
        key=lambda x: (x.path, x.line, x.col, x.code, x.message),
    )


# ======================================================================
# baseline
# ======================================================================


def load_baseline(path: str | Path | None = None) -> dict[str, str]:
    """Finding-key -> reason mapping from a baseline JSON file.

    A missing default file is an empty baseline; a missing *explicit*
    file raises ``OSError`` (the caller turns that into a usage error).
    """
    p = Path(path) if path is not None else DEFAULT_BASELINE_PATH
    if path is None and not p.exists():
        return {}
    data = json.loads(p.read_text(encoding="utf-8"))
    entries = data.get("entries", {})
    return {str(k): str(v) for k, v in entries.items()}


def apply_baseline(
    findings: list[FlowFinding], baseline: dict[str, str]
) -> tuple[list[FlowFinding], list[tuple[FlowFinding, str]]]:
    """Split findings into (active, baselined-with-reason)."""
    active: list[FlowFinding] = []
    suppressed: list[tuple[FlowFinding, str]] = []
    for f in findings:
        reason = baseline.get(f.key)
        if reason is None:
            active.append(f)
        else:
            suppressed.append((f, reason))
    return active, suppressed


def stale_baseline_entries(
    findings: list[FlowFinding], baseline: dict[str, str]
) -> list[str]:
    """Baseline keys no longer matched by any current finding.

    A stale entry means the acknowledged drift was fixed (or the code
    moved) without pruning ``flow_baseline.json`` — left alone it would
    silently re-suppress a *future* finding with the same key.  The CLI
    reports these as warnings (failures under ``--strict``).
    """
    live = {f.key for f in findings}
    return sorted(key for key in baseline if key not in live)


# ======================================================================
# module-level convenience entry points
# ======================================================================


def analyze_source(
    source: str, path: str = "<string>", index: ModuleIndex | None = None
) -> FlowReport:
    """SimFlow over one module's source text (tests and selftest)."""
    analyzer = FlowAnalyzer(index=index or ModuleIndex())
    try:
        info = ModuleInfo(Path(path).stem, path, source)
    except SyntaxError:
        return FlowReport()
    analyzer.index.modules[info.name] = info
    analyzer.index.by_path[str(Path(path))] = info
    report = FlowReport(files=1)
    analyzer.analyze_module(info, report)
    _finish(report)
    return report


def analyze_paths(
    paths: list, index: ModuleIndex | None = None
) -> FlowReport:
    """SimFlow divergence + disjoint-write analysis over files/dirs."""
    return FlowAnalyzer(index=index).analyze_paths(paths)


def infer_kernel_effects(
    names: list[str] | None = None, index: ModuleIndex | None = None
) -> dict[str, EffectSignature]:
    """Inferred effect signatures for registered kernels."""
    return FlowAnalyzer(index=index).infer_kernel_effects(names)


def check_kernel_effects(
    declared: dict[str, EffectSignature] | None = None,
    names: list[str] | None = None,
    index: ModuleIndex | None = None,
) -> tuple[list[FlowFinding], dict[str, EffectSignature]]:
    """SAN404/405 drift check against the registry declarations."""
    if declared is None:
        from repro.sanitizer.kernels import KERNEL_EFFECTS

        declared = {
            name: EffectSignature(
                reads=tuple(spec.get("reads", ())),
                writes=tuple(spec.get("writes", ())),
                atomics=tuple(spec.get("atomics", ())),
            )
            for name, spec in KERNEL_EFFECTS.items()
        }
    return FlowAnalyzer(index=index).check_kernel_effects(declared, names)


# ======================================================================
# seeded-bug selftest
# ======================================================================

#: A worker whose nested parallel region is gated on the thread id —
#: the canonical divergent-collective bug.  Kept as source text so the
#: lint/flow gates over ``src/`` never see it as live code.
_DIVERGENT_SYNC_SOURCE = '''\
def run(pool, items, flags):
    def worker(v, ctx):
        ctx.charge(1)
        if ctx.thread_id == 0:
            pool.parallel_for(range(4), lambda i, c: c.charge(1))
    pool.parallel_for(items, worker, label="selftest:divergent")
'''
_DIVERGENT_SYNC_LINE = 5

#: A chunked writer that stores one slot past its owned [start, end)
#: slice — the canonical cross-chunk corruption bug.
_CROSS_CHUNK_SOURCE = '''\
def run(pool, out, chunks):
    def worker(chunk, ctx):
        start, end = chunk
        ctx.write(("out", int(start)))
        for i in range(start, end):
            out[i + 1] = i
    pool.parallel_for(chunks, worker, label="selftest:cross_chunk")
'''
_CROSS_CHUNK_LINE = 6

#: The same writer, fixed — must verify as disjoint, with no findings.
_SAFE_CHUNK_SOURCE = '''\
def run(pool, out, chunks):
    def worker(chunk, ctx):
        start, end = chunk
        ctx.write(("out", int(start)))
        for i in range(start, end):
            out[i] = i
    pool.parallel_for(chunks, worker, label="selftest:safe_chunk")
'''


def flow_selftest() -> tuple[bool, str]:
    """Prove the analyzer catches both seeded SAN4xx bugs.

    An analyzer that reports nothing is indistinguishable from one
    that checks nothing: this runs SimFlow over two intentionally
    buggy worker sources and requires SAN401 (divergent sync) and
    SAN403 (cross-chunk store) with exact line attribution — plus a
    fixed variant that must come back verified-disjoint and clean.
    """
    divergent = analyze_source(_DIVERGENT_SYNC_SOURCE, "selftest_divergent.py")
    hits = [
        f
        for f in divergent.findings
        if f.code == "SAN401" and f.line == _DIVERGENT_SYNC_LINE
    ]
    if not hits:
        return (
            False,
            "seeded divergent-sync bug NOT caught: expected SAN401 at "
            f"line {_DIVERGENT_SYNC_LINE}, got "
            f"{[str(f) for f in divergent.findings]}",
        )

    cross = analyze_source(_CROSS_CHUNK_SOURCE, "selftest_cross_chunk.py")
    hits = [
        f
        for f in cross.findings
        if f.code == "SAN403" and f.line == _CROSS_CHUNK_LINE
    ]
    if not hits:
        return (
            False,
            "seeded cross-chunk store NOT caught: expected SAN403 at "
            f"line {_CROSS_CHUNK_LINE}, got "
            f"{[str(f) for f in cross.findings]}",
        )

    safe = analyze_source(_SAFE_CHUNK_SOURCE, "selftest_safe_chunk.py")
    if safe.findings or not safe.verified:
        return (
            False,
            "safe chunk writer misjudged: expected verified-disjoint "
            f"and no findings, got findings="
            f"{[str(f) for f in safe.findings]} "
            f"verified={[str(v) for v in safe.verified]}",
        )
    return (
        True,
        "seeded SAN401 (divergent sync) and SAN403 (cross-chunk store) "
        "both caught with exact attribution; fixed variant "
        "verified-disjoint",
    )
