"""Per-function control-flow graphs for the SimFlow analyzer.

SimFlow (:mod:`repro.sanitizer.flow`) needs two facts the AST alone
cannot answer:

* **control dependence** — is a statement's *reachability* decided by
  some branch?  Syntactic nesting is not enough: after
  ``if cond: return``, every following statement is control-dependent
  on ``cond`` even though it is written at the top level of the
  function body; and
* **loop context** — which loop headers govern how many times a
  statement executes.

This module builds a basic-block CFG from a ``FunctionDef`` /
``Lambda`` body, computes postdominators by the classic iterative
intersection, and derives per-block control-dependence sets (block B
is control-dependent on branch block C iff B postdominates some
successor of C but not C itself).  Graphs are tiny — worker closures
are tens of statements — so the O(n^2) set algorithms are fine.

Structure statements are *decomposed*: an ``If`` contributes its test
expression to the branch block and its arms to successor blocks, so a
block's ``stmts`` never contain nested compound statements (``with``
items are kept as their context expressions, evaluated at entry).
``break`` / ``continue`` / ``return`` / ``raise`` edges are modelled;
``try`` is approximated by making every handler reachable from the
statement before the ``try`` body (exceptions may fire anywhere, and
precision there buys nothing for divergence analysis).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "CFG", "build_cfg", "guarding_tests"]

#: ``Block.kind`` values for branch-point blocks.
BRANCH_KINDS = ("if", "while", "for")


@dataclass
class Block:
    """One basic block: straight-line statements plus a terminator.

    ``test`` holds the branch condition for ``kind='if'``/``'while'``
    and the iterable expression for ``kind='for'`` (the expression
    whose thread-variance decides whether control flow diverges at
    this block).  ``target`` is the ``for`` loop variable when
    ``kind='for'``.
    """

    bid: int
    kind: str = "linear"  # linear | if | while | for | entry | exit
    stmts: list[ast.AST] = field(default_factory=list)
    test: ast.expr | None = None
    target: ast.expr | None = None
    line: int = 0
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    @property
    def is_branch(self) -> bool:
        return self.kind in BRANCH_KINDS and len(set(self.succs)) > 1

    @property
    def is_loop(self) -> bool:
        return self.kind in ("while", "for")


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry: int = self._new("entry").bid
        self.exit: int = self._new("exit").bid

    # -- construction helpers ------------------------------------------

    def _new(self, kind: str = "linear") -> Block:
        block = Block(bid=len(self.blocks), kind=kind)
        self.blocks.append(block)
        return block

    def _edge(self, a: int, b: int) -> None:
        if b not in self.blocks[a].succs:
            self.blocks[a].succs.append(b)
        if a not in self.blocks[b].preds:
            self.blocks[b].preds.append(a)

    # -- analyses ------------------------------------------------------

    def postdominators(self) -> list[set[int]]:
        """``pdom[b]`` = blocks postdominating b (including b itself).

        Unreachable-from-exit blocks (e.g. the body of ``while True``
        with no break) conservatively postdominate nothing beyond
        themselves once the fixpoint settles.
        """
        n = len(self.blocks)
        full = set(range(n))
        pdom: list[set[int]] = [set(full) for _ in range(n)]
        pdom[self.exit] = {self.exit}
        changed = True
        while changed:
            changed = False
            for b in range(n):
                if b == self.exit:
                    continue
                succs = self.blocks[b].succs
                if succs:
                    new = set.intersection(*(pdom[s] for s in succs))
                else:
                    # dead-end block (no path to exit): only itself
                    new = set()
                new.add(b)
                if new != pdom[b]:
                    pdom[b] = new
                    changed = True
        return pdom

    def control_dependence(self) -> list[set[int]]:
        """``cd[b]`` = branch blocks that decide whether b executes.

        Classic definition via postdominators: b is control-dependent
        on branch block c iff b postdominates at least one successor
        of c but does not postdominate c.  Loop headers count as
        branches (body blocks are control-dependent on them), which is
        exactly what divergence analysis wants: a loop with a
        thread-variant bound makes everything inside it execute a
        thread-variant number of times.
        """
        pdom = self.postdominators()
        cd: list[set[int]] = [set() for _ in self.blocks]
        for c in range(len(self.blocks)):
            block = self.blocks[c]
            if len(set(block.succs)) < 2:
                continue
            for s in block.succs:
                for b in range(len(self.blocks)):
                    if b == c:
                        continue
                    if b in pdom[s] and b not in pdom[c]:
                        cd[b].add(c)
        return cd

    def transitive_control_dependence(self) -> list[set[int]]:
        """Control dependence closed under chains of branches.

        A statement inside an inner ``if`` nested in an outer ``if``
        depends on both conditions; the plain relation only records
        the inner one.
        """
        cd = self.control_dependence()
        closed: list[set[int]] = [set(s) for s in cd]
        changed = True
        while changed:
            changed = False
            for b in range(len(self.blocks)):
                for c in list(closed[b]):
                    extra = closed[c] - closed[b]
                    if extra:
                        closed[b] |= extra
                        changed = True
        return closed

    def block_of(self, node: ast.AST) -> int | None:
        """The block whose statement list contains ``node`` (by identity)."""
        for block in self.blocks:
            for stmt in block.stmts:
                if stmt is node:
                    return block.bid
                for inner in ast.walk(stmt):
                    if inner is node:
                        return block.bid
        return None


class _Builder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(self) -> None:
        self.cfg = CFG()
        # (continue_target, break_target) stack for loops
        self._loops: list[tuple[int, int]] = []

    def build(self, body: list[ast.stmt]) -> CFG:
        first = self.cfg._new()
        self.cfg._edge(self.cfg.entry, first.bid)
        last = self._stmts(body, first.bid)
        if last is not None:
            self.cfg._edge(last, self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------

    def _stmts(self, body: list[ast.stmt], current: int | None) -> int | None:
        """Thread ``body`` through the graph; returns the open block id
        (or None when every path already left, e.g. via ``return``)."""
        for stmt in body:
            if current is None:
                # unreachable continuation; keep building so findings
                # in dead code still get sensible attribution
                current = self.cfg._new().bid
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, current: int) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            branch = cfg.blocks[current]
            branch.kind = "if"
            branch.test = stmt.test
            branch.line = stmt.lineno
            then_entry = cfg._new()
            cfg._edge(current, then_entry.bid)
            then_exit = self._stmts(stmt.body, then_entry.bid)
            else_entry = cfg._new()
            cfg._edge(current, else_entry.bid)
            else_exit = self._stmts(stmt.orelse, else_entry.bid)
            exits = [e for e in (then_exit, else_exit) if e is not None]
            if not exits:
                return None
            join = cfg._new()
            for e in exits:
                cfg._edge(e, join.bid)
            return join.bid

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg._new("while" if isinstance(stmt, ast.While) else "for")
            header.line = stmt.lineno
            if isinstance(stmt, ast.While):
                header.test = stmt.test
            else:
                header.test = stmt.iter
                header.target = stmt.target
            cfg._edge(current, header.bid)
            after = cfg._new()
            body_entry = cfg._new()
            cfg._edge(header.bid, body_entry.bid)
            cfg._edge(header.bid, after.bid)
            self._loops.append((header.bid, after.bid))
            body_exit = self._stmts(stmt.body, body_entry.bid)
            self._loops.pop()
            if body_exit is not None:
                cfg._edge(body_exit, header.bid)  # back edge
            if stmt.orelse:
                # else-clause runs on normal loop exit; fold into after
                after_exit = self._stmts(stmt.orelse, after.bid)
                if after_exit is not None and after_exit != after.bid:
                    return after_exit
            return after.bid

        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.blocks[current].stmts.append(stmt)
            cfg._edge(current, cfg.exit)
            return None

        if isinstance(stmt, ast.Break):
            if self._loops:
                cfg._edge(current, self._loops[-1][1])
            return None

        if isinstance(stmt, ast.Continue):
            if self._loops:
                cfg._edge(current, self._loops[-1][0])
            return None

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # context expressions evaluate at entry in the current block
            for item in stmt.items:
                if item.optional_vars is not None:
                    entry: ast.stmt = ast.Assign(
                        targets=[item.optional_vars], value=item.context_expr
                    )
                else:
                    entry = ast.Expr(value=item.context_expr)
                ast.copy_location(entry, item.context_expr)
                cfg.blocks[current].stmts.append(entry)
            return self._stmts(stmt.body, current)

        if isinstance(stmt, ast.Try):
            # Approximate: handlers are reachable from the block before
            # the try body (an exception may fire anywhere inside it).
            pre = current
            body_exit = self._stmts(stmt.body, current)
            exits: list[int] = []
            if body_exit is not None:
                else_exit = (
                    self._stmts(stmt.orelse, body_exit)
                    if stmt.orelse
                    else body_exit
                )
                if else_exit is not None:
                    exits.append(else_exit)
            for handler in stmt.handlers:
                h_entry = cfg._new()
                cfg._edge(pre, h_entry.bid)
                if handler.name:
                    bind = ast.Assign(
                        targets=[
                            ast.Name(id=handler.name, ctx=ast.Store())
                        ],
                        value=ast.Constant(value=None),
                    )
                    ast.copy_location(bind, handler)
                    cfg.blocks[h_entry.bid].stmts.append(bind)
                h_exit = self._stmts(handler.body, h_entry.bid)
                if h_exit is not None:
                    exits.append(h_exit)
            if stmt.finalbody:
                join = cfg._new()
                for e in exits:
                    cfg._edge(e, join.bid)
                return self._stmts(stmt.finalbody, join.bid if exits else pre)
            if not exits:
                return None
            join = cfg._new()
            for e in exits:
                cfg._edge(e, join.bid)
            return join.bid

        # plain statement (incl. nested FunctionDef/ClassDef, which are
        # opaque to this CFG — their bodies get their own graphs)
        cfg.blocks[current].stmts.append(stmt)
        return current


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> CFG:
    """CFG of one function's body (a Lambda body becomes a Return)."""
    if isinstance(fn, ast.Lambda):
        ret = ast.Return(value=fn.body)
        ast.copy_location(ret, fn.body)
        body: list[ast.stmt] = [ret]
    else:
        body = fn.body
    return _Builder().build(body)


def guarding_tests(
    fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    node: ast.AST,
) -> list[ast.expr]:
    """Branch/loop test expressions that decide whether ``node`` runs.

    Builds the CFG for ``fn``, locates the block containing ``node``
    and returns the ``test`` expression of every branch it is
    (transitively) control-dependent on, in block order.  Used by
    SimDist to recognize guarded-decrease stores: an estimate store
    sitting under ``if new < est[v]:`` is monotone by construction.
    """
    cfg = build_cfg(fn)
    bid = cfg.block_of(node)
    if bid is None:
        return []
    cd = cfg.transitive_control_dependence()
    tests: list[ast.expr] = []
    for c in sorted(cd[bid]):
        test = cfg.blocks[c].test
        if test is not None:
            tests.append(test)
    return tests
