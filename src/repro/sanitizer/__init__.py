"""SimTSan + SimCheck: sanitizers and lint for the simulated substrate.

Three complementary gates over the simulated-multicore kernels:

* :mod:`repro.sanitizer.detector` — SimTSan, a dynamic happens-before
  race detector replaying per-thread memory-access event streams
  recorded by :class:`~repro.parallel.context.ThreadContext`;
* :mod:`repro.sanitizer.memcheck` — SimCheck, an ASan/UBSan-style
  memory & numeric soundness sanitizer: poisoned allocations
  (:func:`san_empty`), a per-access read barrier catching
  uninitialized reads and out-of-bounds indices, checked narrowing
  casts, and NaN-origin tracking;
* :mod:`repro.sanitizer.lint` — a static AST pass: SAN1xx/2xx over
  ``parallel_for`` worker closures (unrecorded mutation of captured
  shared state), SAN3xx module-wide (unpoisoned allocation, unchecked
  data-dependent indexing, narrowing casts, float-into-int
  accumulation).

Entry points: ``repro sanitize`` (CLI; ``--memcheck`` adds SimCheck),
``pytest --sanitize [--memcheck]`` (test suite under the observers),
:func:`repro.sanitizer.kernels.run_all_kernels` (programmatic).  Also
importable as :mod:`repro.analysis.sanitizer`.
"""

from repro.sanitizer.detector import RaceDetector, RaceReport
from repro.sanitizer.kernels import (
    KERNELS,
    KernelReport,
    run_all_kernels,
    run_kernel,
)
from repro.sanitizer.lint import LintFinding, lint_file, lint_paths, lint_source
from repro.sanitizer.memcheck import (
    MemChecker,
    MemcheckFinding,
    NanOrigin,
    checked_cast,
    checked_sum,
    memcheck_selftest,
    run_buggy_memcheck_kernel,
    san_empty,
    trap_value,
)
from repro.sanitizer.selftest import SELFTEST_PREFIX, run_racy_kernel, selftest
from repro.sanitizer.vectorclock import VectorClock

__all__ = [
    "RaceDetector",
    "RaceReport",
    "VectorClock",
    "LintFinding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "KERNELS",
    "KernelReport",
    "run_kernel",
    "run_all_kernels",
    "SELFTEST_PREFIX",
    "run_racy_kernel",
    "selftest",
    "MemChecker",
    "MemcheckFinding",
    "NanOrigin",
    "san_empty",
    "trap_value",
    "checked_cast",
    "checked_sum",
    "memcheck_selftest",
    "run_buggy_memcheck_kernel",
]
