"""SimTSan + SimCheck: sanitizers and lint for the simulated substrate.

Three complementary gates over the simulated-multicore kernels:

* :mod:`repro.sanitizer.detector` — SimTSan, a dynamic happens-before
  race detector replaying per-thread memory-access event streams
  recorded by :class:`~repro.parallel.context.ThreadContext`;
* :mod:`repro.sanitizer.memcheck` — SimCheck, an ASan/UBSan-style
  memory & numeric soundness sanitizer: poisoned allocations
  (:func:`san_empty`), a per-access read barrier catching
  uninitialized reads and out-of-bounds indices, checked narrowing
  casts, and NaN-origin tracking;
* :mod:`repro.sanitizer.lint` — a static AST pass: SAN1xx/2xx over
  ``parallel_for`` worker closures (unrecorded mutation of captured
  shared state), SAN3xx module-wide (unpoisoned allocation, unchecked
  data-dependent indexing, narrowing casts, float-into-int
  accumulation);
* :mod:`repro.sanitizer.flow` — SimFlow, the SAN4xx CFG/dataflow
  family: divergent-sync taint analysis over worker control-flow
  graphs (SAN401/402), interval proofs that chunked stores stay in
  the owning thread's slice (SAN403 / verified-disjoint SAN201
  downgrades), and per-kernel effect-signature drift against the
  declared :data:`~repro.sanitizer.kernels.KERNEL_EFFECTS`
  (SAN404/405) gated by a committed baseline;
* :mod:`repro.sanitizer.prove` — SimProve, the SAN5xx abstract-
  interpretation family: fixpoint interval analysis over the worker
  CFGs proving every recorded access in-bounds against declared
  extents (SAN501 provable OOB / SAN502 unproven), determinism
  classification of combining atomics (SAN503 order-sensitive float
  reductions), and per-kernel proof certificates committed to
  ``prove_manifest.json`` — certified kernels may run with the
  SimCheck barrier elided (:meth:`MemChecker.apply_certificate`);
* :mod:`repro.sanitizer.dist` — SimDist, the SAN6xx family over the
  distributed protocol: monotonicity certification of cross-shard
  estimate updates (SAN601), BSP phase discipline (SAN602),
  shard-ownership disjoint-write proofs (SAN603), declared
  ``MESSAGE_SCHEMAS`` vs statically-derived wire effects of every
  ``Network.send`` site (SAN604/605), and replay safety of
  failover-reachable handlers (SAN606), with per-protocol proof
  certificates committed to ``dist_manifest.json``.

Entry points: ``repro sanitize`` (CLI; ``--memcheck`` adds SimCheck,
``--flow`` adds SimFlow, ``--prove`` adds SimProve, ``--dist`` adds
SimDist), ``pytest --sanitize [--memcheck] [--prove] [--dist]``
(test suite under the observers, gated on the proof manifests),
:func:`repro.sanitizer.kernels.run_all_kernels` (programmatic).  Also
importable as :mod:`repro.analysis.sanitizer`.
"""

from repro.sanitizer.detector import RaceDetector, RaceReport
from repro.sanitizer.flow import (
    EffectSignature,
    FlowFinding,
    FlowReport,
    VerifiedStore,
    analyze_paths as flow_analyze_paths,
    check_kernel_effects,
    flow_selftest,
    infer_kernel_effects,
)
from repro.sanitizer.kernels import (
    KERNEL_EFFECTS,
    KERNELS,
    KernelReport,
    run_all_kernels,
    run_kernel,
)
from repro.sanitizer.dist import (
    DEFAULT_DIST_MANIFEST_PATH,
    DistAnalyzer,
    DistFinding,
    DistReport,
    ProtocolCertificate,
    analyze_dist,
    diff_dist_manifest,
    dist_manifest_payload,
    dist_selftest,
    load_dist_manifest,
    verify_dist_manifest,
    write_dist_manifest,
)
from repro.sanitizer.lint import (
    LintFinding,
    dead_suppressions,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.sanitizer.memcheck import (
    MemChecker,
    MemcheckFinding,
    NanOrigin,
    checked_cast,
    checked_sum,
    memcheck_selftest,
    run_buggy_memcheck_kernel,
    san_empty,
    trap_value,
)
from repro.sanitizer.prove import (
    DEFAULT_MANIFEST_PATH,
    KernelCertificate,
    ProveFinding,
    ProveReport,
    diff_manifest,
    load_manifest,
    manifest_payload,
    prove_kernels,
    prove_selftest,
    prove_source,
    verify_manifest,
    write_manifest,
)
from repro.sanitizer.selftest import (
    SELFTEST_PREFIX,
    family_selftests,
    run_racy_kernel,
    selftest,
)
from repro.sanitizer.vectorclock import VectorClock

__all__ = [
    "RaceDetector",
    "RaceReport",
    "VectorClock",
    "LintFinding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "KERNELS",
    "KERNEL_EFFECTS",
    "KernelReport",
    "run_kernel",
    "run_all_kernels",
    "EffectSignature",
    "FlowFinding",
    "FlowReport",
    "VerifiedStore",
    "flow_analyze_paths",
    "flow_selftest",
    "infer_kernel_effects",
    "check_kernel_effects",
    "ProveFinding",
    "KernelCertificate",
    "ProveReport",
    "prove_kernels",
    "prove_source",
    "prove_selftest",
    "manifest_payload",
    "load_manifest",
    "write_manifest",
    "diff_manifest",
    "verify_manifest",
    "DEFAULT_MANIFEST_PATH",
    "DistFinding",
    "ProtocolCertificate",
    "DistReport",
    "DistAnalyzer",
    "analyze_dist",
    "dist_selftest",
    "dist_manifest_payload",
    "load_dist_manifest",
    "write_dist_manifest",
    "diff_dist_manifest",
    "verify_dist_manifest",
    "DEFAULT_DIST_MANIFEST_PATH",
    "dead_suppressions",
    "SELFTEST_PREFIX",
    "run_racy_kernel",
    "selftest",
    "family_selftests",
    "MemChecker",
    "MemcheckFinding",
    "NanOrigin",
    "san_empty",
    "trap_value",
    "checked_cast",
    "checked_sum",
    "memcheck_selftest",
    "run_buggy_memcheck_kernel",
]
