"""SimTSan: race detection and parallel-loop lint for the substrate.

Two complementary gates over the simulated-multicore kernels:

* :mod:`repro.sanitizer.detector` — a dynamic happens-before race
  detector replaying per-thread memory-access event streams recorded
  by :class:`~repro.parallel.context.ThreadContext`;
* :mod:`repro.sanitizer.lint` — a static AST pass over
  ``parallel_for`` worker closures flagging unrecorded mutation of
  captured shared state.

Entry points: ``repro sanitize`` (CLI), ``pytest --sanitize`` (test
suite under the detector), :func:`repro.sanitizer.kernels.run_all_kernels`
(programmatic).  Also importable as :mod:`repro.analysis.sanitizer`.
"""

from repro.sanitizer.detector import RaceDetector, RaceReport
from repro.sanitizer.kernels import (
    KERNELS,
    KernelReport,
    run_all_kernels,
    run_kernel,
)
from repro.sanitizer.lint import LintFinding, lint_file, lint_paths, lint_source
from repro.sanitizer.selftest import SELFTEST_PREFIX, run_racy_kernel, selftest
from repro.sanitizer.vectorclock import VectorClock

__all__ = [
    "RaceDetector",
    "RaceReport",
    "VectorClock",
    "LintFinding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "KERNELS",
    "KernelReport",
    "run_kernel",
    "run_all_kernels",
    "SELFTEST_PREFIX",
    "run_racy_kernel",
    "selftest",
]
