"""SimCheck: ASan/UBSan-style memory & numeric soundness sanitizer.

The substrate's kernels are index arithmetic over flat numpy arrays,
allocated uninitialized (``np.empty``) in hot paths and indexed by
values loaded from other arrays.  In a C++ reproduction that is
exactly the bug class ASan/UBSan catches — uninitialized reads,
out-of-bounds indexing, silent integer overflow — and exactly what
Python/numpy hides: ``np.empty`` hands out stale garbage without
complaint, a negative index silently wraps, and int64 arithmetic wraps
modulo 2**64.  SimCheck closes the gap with three mechanisms:

**Poisoned allocations** — :func:`san_empty` replaces ``np.empty``:
the array is filled with a *trap value* (a distinctive extreme integer
sentinel, or a payload-tagged NaN for floats) and registered with the
active :class:`MemChecker` together with its allocation site.  A read
of a cell that still holds the trap pattern — and was never written
through the recorded-access API — is an **uninitialized read** and is
reported with allocation-site attribution.

**Read/write barrier** — when a :class:`MemChecker` observes a pool,
every :class:`~repro.parallel.context.ThreadContext` gets a
``_memcheck`` hook and each recorded access (``ctx.read``,
``ctx.write``, atomic events) is checked *immediately*, in the exact
serial order the substrate executes: bounds are verified against the
registered allocation (catching negative-wrap and past-the-end
indices) and the shadow init state is updated.  The barrier never
charges the cost model, so attaching memcheck perturbs the simulated
clock by exactly 0.0 (asserted by ``benchmarks/bench_sanitize.py``).

**Numeric soundness** — :func:`checked_cast` / :func:`checked_sum`
guard narrowing casts and accumulators: values outside the target
dtype's range are reported to the active checker (or raise
:class:`~repro.errors.NumericSoundnessError` when none is active)
instead of wrapping.  Score writes that pass ``value=`` to
``ctx.write`` feed **NaN-origin tracking**: the first region/phase
producing a non-finite value for each location family is recorded, so
a NaN surfacing at the end of a pipeline names the kernel that born
it (extending the ``best_finite_index`` work of PR 2).

Findings that indicate bugs (``uninit-read``, ``oob-read``,
``oob-write``, ``overflow``) live in :attr:`MemChecker.findings`;
NaN origins are *tracking*, not failures — legitimate metrics produce
NaN on zero denominators — and live in :attr:`MemChecker.nan_origins`.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from repro.errors import MemcheckError, NumericSoundnessError
from repro.parallel.scheduler import SimulatedPool
from repro.sanitizer.selftest import SELFTEST_PREFIX

__all__ = [
    "trap_value",
    "san_empty",
    "checked_cast",
    "checked_sum",
    "MemChecker",
    "MemcheckFinding",
    "NanOrigin",
    "run_buggy_memcheck_kernel",
    "memcheck_selftest",
]

#: Bit patterns of the trap NaNs (quiet NaN + recognizable payload, the
#: closest portable analogue of a signaling NaN): reads can distinguish
#: "still poisoned" from a legitimately computed NaN bit-exactly.
_F64_TRAP_BITS = np.uint64(0x7FF8DEADDEADDEAD)
_F32_TRAP_BITS = np.uint32(0x7FC0DEAD)

#: Offset from the integer dtype's extreme used for the int sentinel.
_INT_TRAP_OFFSET = 0xDD


def trap_value(dtype: np.dtype | type):
    """The poison written by :func:`san_empty` for ``dtype``.

    Signed integers trap near ``iinfo.min`` (an extreme negative no
    index/size computation produces legitimately), unsigned integers
    near ``iinfo.max``, floats as a payload-tagged quiet NaN whose bit
    pattern identifies it as poison.  Unsupported dtypes (bool,
    complex, ...) raise :class:`~repro.errors.MemcheckError`.
    """
    dt = np.dtype(dtype)
    if dt == np.float64:
        return _F64_TRAP_BITS.view(np.float64)
    if dt == np.float32:
        return _F32_TRAP_BITS.view(np.float32)
    if dt.kind == "i":
        info = np.iinfo(dt)
        return dt.type(info.min + _INT_TRAP_OFFSET)
    if dt.kind == "u":
        info = np.iinfo(dt)
        return dt.type(info.max - _INT_TRAP_OFFSET)
    raise MemcheckError(f"no trap value for dtype {dt!r}")


def _trap_mask(arr: np.ndarray) -> np.ndarray:
    """Boolean mask of elements still holding the trap pattern."""
    dt = arr.dtype
    if dt == np.float64:
        return arr.view(np.uint64) == _F64_TRAP_BITS
    if dt == np.float32:
        return arr.view(np.uint32) == _F32_TRAP_BITS
    return arr == trap_value(dt)


class _Allocation:
    """Shadow state of one poisoned allocation."""

    __slots__ = ("name", "site", "array", "shadow")

    def __init__(self, name: str, site: str, array: np.ndarray) -> None:
        self.name = name
        self.site = site
        self.array = array
        #: per-slot "written through the recorded API" bit; slot =
        #: first-axis index, matching the ``(name, index)`` location
        #: keys kernels record (rows count as one slot for 2-D arrays)
        self.shadow = np.zeros(array.shape[0] if array.ndim else 1, dtype=bool)

    @property
    def size(self) -> int:
        return int(self.shadow.size)

    def is_poisoned(self, index: int) -> bool:
        """Does slot ``index`` still hold the trap pattern?"""
        cell = self.array[index]
        if isinstance(cell, np.ndarray):
            return bool(_trap_mask(cell).any())
        return bool(_trap_mask(self.array[index : index + 1])[0])


@dataclass(frozen=True)
class MemcheckFinding:
    """One memory/numeric soundness violation.

    Attributes
    ----------
    kind:
        ``"uninit-read"``, ``"oob-read"``, ``"oob-write"`` or
        ``"overflow"``.
    name, index:
        The allocation name and slot involved (``index`` is ``-1``
        for whole-array findings such as overflow).
    region, phase:
        The ``parallel_for``/``serial_region`` label and the innermost
        open algorithm phase (``""`` outside any phase) at the access.
    thread:
        Virtual thread id of the access (``-1`` outside regions).
    alloc_site:
        ``file:line (function)`` of the :func:`san_empty` call, when
        the finding concerns a registered allocation.
    detail:
        Human-readable specifics (offending index, value range, ...).
    """

    kind: str
    name: str
    index: int
    region: str
    phase: str
    thread: int
    alloc_site: str | None
    detail: str

    def __str__(self) -> str:
        where = f"{self.name}[{self.index}]" if self.index >= 0 else self.name
        phase = f" phase {self.phase!r}" if self.phase else ""
        site = f" — allocated at {self.alloc_site}" if self.alloc_site else ""
        return (
            f"{self.kind.upper()} on {where} in region {self.region!r}"
            f"{phase} (thread {self.thread}): {self.detail}{site}"
        )


@dataclass(frozen=True)
class NanOrigin:
    """First producer of a non-finite value for one location family.

    Tracking, not a failure: metrics legitimately yield NaN on zero
    denominators.  The record names the kernel region and phase so a
    NaN surfacing later in the pipeline can be traced to its source.
    """

    name: str
    index: int
    region: str
    phase: str
    thread: int
    value: float

    def __str__(self) -> str:
        phase = f" phase {self.phase!r}" if self.phase else ""
        return (
            f"NAN-ORIGIN {self.name}[{self.index}] first produced "
            f"{self.value!r} in region {self.region!r}{phase} "
            f"(thread {self.thread})"
        )


def _call_site(depth: int = 2) -> str:
    frame = sys._getframe(depth)
    return f"{frame.f_code.co_filename}:{frame.f_lineno} ({frame.f_code.co_name})"


class MemChecker:
    """Region observer implementing the SimCheck memory sanitizer.

    Usage::

        checker = MemChecker()
        with checker.watch(pool):
            run_kernel(pool, ...)
        for finding in checker.findings:
            print(finding)

    ``watch`` both installs the checker as the pool's region observer
    (enabling the per-access read barrier on every
    :class:`ThreadContext`) and *activates* it, so :func:`san_empty`
    calls inside the block register their allocations here.  To
    compose with a :class:`~repro.sanitizer.detector.RaceDetector` on
    the same pool, put both behind an
    :class:`~repro.parallel.observers.ObserverFanout`.

    Findings are deduplicated per ``(kind, name, index)``; NaN origins
    are recorded once per allocation name.
    """

    #: Stack of activated checkers; ``san_empty`` registers with the top.
    _active: list["MemChecker"] = []

    def __init__(self, barrier_units: float = 0.0) -> None:
        self.findings: list[MemcheckFinding] = []
        self.nan_origins: list[NanOrigin] = []
        self.regions_checked = 0
        self.events_seen = 0
        #: Modeled sim-clock cost of one barrier crossing (0.0 keeps
        #: the checker cost-transparent; bench_prove raises it).
        self.barrier_units = float(barrier_units)
        #: Barrier crossings skipped via a SimProve certificate.
        self.elided_events = 0
        #: Certificate scope pushed onto contexts at region begin:
        #: ``None`` (no certificate), ``True`` (fully proven kernel),
        #: or a frozenset of proven location names.
        self._proven: object | None = None
        self._allocs: dict[str, _Allocation] = {}
        self._seen: set[tuple] = set()
        self._nan_named: set[str] = set()
        self._region = "<no region>"
        self._phases: list[str] = []
        self._pool: SimulatedPool | None = None

    def apply_certificate(self, certificate) -> None:
        """Adopt a SimProve :class:`KernelCertificate` fast path.

        A ``fully_proven`` certificate elides the barrier for every
        access in the kernel's regions; a partially proven one elides
        only accesses to its ``proven_arrays``.  Non-certified
        certificates (violations / order-sensitive) are refused — the
        barrier must stay up.
        """
        if certificate is None:
            self._proven = None
            return
        if getattr(certificate, "status", None) != "certified":
            raise MemcheckError(
                "refusing fast path: certificate status is "
                f"{getattr(certificate, 'status', None)!r}, not 'certified'"
            )
        if certificate.fully_proven:
            self._proven = True
        elif certificate.proven_arrays:
            self._proven = frozenset(certificate.proven_arrays)
        else:
            self._proven = None

    # ------------------------------------------------------------------
    # activation / attachment
    # ------------------------------------------------------------------

    @classmethod
    def current(cls) -> "MemChecker | None":
        """The innermost active checker, or ``None``."""
        return cls._active[-1] if cls._active else None

    def activate(self) -> "MemChecker":
        """Make this checker the registration target of ``san_empty``."""
        MemChecker._active.append(self)
        return self

    def deactivate(self) -> None:
        """Undo :meth:`activate` (no-op when not active)."""
        if self in MemChecker._active:
            MemChecker._active.remove(self)

    def attach(self, pool: SimulatedPool) -> None:
        """Install as ``pool``'s region observer and activate."""
        pool.set_observer(self)
        self._pool = pool
        self.activate()

    def detach(self) -> None:
        """Remove from the pool and deactivate."""
        if self._pool is not None and self._pool.observer is self:
            self._pool.set_observer(None)
        self._pool = None
        self.deactivate()

    def watch(self, pool: SimulatedPool):
        """Context manager attaching for the duration of a block."""
        checker = self

        class _Watch:
            def __enter__(self):
                checker.attach(pool)
                return checker

            def __exit__(self, *exc):
                checker.detach()
                return False

        return _Watch()

    # ------------------------------------------------------------------
    # allocations
    # ------------------------------------------------------------------

    def register_allocation(
        self, name: str, array: np.ndarray, site: str | None = None
    ) -> None:
        """Track ``array`` under ``name`` (latest registration wins).

        ``name`` must match the first element of the ``(name, index)``
        location keys kernels record for this array.
        """
        if not isinstance(name, str) or not name:
            raise MemcheckError(f"allocation name must be a non-empty str, got {name!r}")
        self._allocs[name] = _Allocation(
            name, site or _call_site(), np.asarray(array)
        )

    @property
    def allocations(self) -> dict[str, str]:
        """Read-only view: allocation name -> allocation site."""
        return {name: a.site for name, a in self._allocs.items()}

    # ------------------------------------------------------------------
    # observer protocol
    # ------------------------------------------------------------------

    def on_region_begin(self, label: str, contexts) -> None:
        self._region = label
        for ctx in contexts:
            ctx._memcheck = self
            ctx.barrier_units = self.barrier_units
            ctx.proven = self._proven

    def on_region_end(self, label: str, contexts) -> None:
        self.regions_checked += 1
        for ctx in contexts:
            ctx._memcheck = None
            self.elided_events += ctx.elided
            ctx.elided = 0
            ctx.proven = None
            ctx.barrier_units = 0.0
        self._region = "<no region>"

    def on_phase_begin(self, name: str) -> None:
        self._phases.append(str(name))

    def on_phase_end(self, name: str) -> None:
        if self._phases:
            self._phases.pop()

    # ------------------------------------------------------------------
    # the read/write barrier (called from ThreadContext; charge-free)
    # ------------------------------------------------------------------

    def _resolve(self, location: object):
        """``(allocation, index)`` for a ``(name, index)`` key, else None."""
        if (
            type(location) is tuple
            and len(location) == 2
            and isinstance(location[0], str)
        ):
            alloc = self._allocs.get(location[0])
            if alloc is not None and isinstance(location[1], (int, np.integer)):
                return alloc, int(location[1])
        return None

    def on_read_event(self, location: object, thread: int) -> None:
        """Read barrier: bounds + uninitialized-read check."""
        self.events_seen += 1
        hit = self._resolve(location)
        if hit is None:
            return
        alloc, index = hit
        if index < 0 or index >= alloc.size:
            self._report(
                "oob-read",
                alloc,
                index,
                thread,
                f"index {index} outside [0, {alloc.size})",
            )
        elif not alloc.shadow[index] and alloc.is_poisoned(index):
            self._report(
                "uninit-read",
                alloc,
                index,
                thread,
                "slot still holds the trap value and was never written",
            )

    def on_write_event(
        self, location: object, value: object, thread: int
    ) -> None:
        """Write barrier: bounds check, shadow update, NaN tracking."""
        self.events_seen += 1
        hit = self._resolve(location)
        if hit is not None:
            alloc, index = hit
            if index < 0 or index >= alloc.size:
                self._report(
                    "oob-write",
                    alloc,
                    index,
                    thread,
                    f"index {index} outside [0, {alloc.size})",
                )
            else:
                alloc.shadow[index] = True
        if value is not None:
            self._track_value(location, value, thread)

    def _track_value(self, location: object, value: object, thread: int) -> None:
        try:
            finite = bool(np.all(np.isfinite(value)))
        except TypeError:
            return
        if finite:
            return
        name, index = (
            (str(location[0]), int(location[1]))
            if type(location) is tuple
            and len(location) == 2
            and isinstance(location[1], (int, np.integer))
            else (str(location), -1)
        )
        if name in self._nan_named:
            return
        self._nan_named.add(name)
        try:
            scalar = float(np.asarray(value, dtype=np.float64).ravel()[0])
        except (TypeError, ValueError):
            scalar = float("nan")
        self.nan_origins.append(
            NanOrigin(
                name=name,
                index=index,
                region=self._region,
                phase=self._phases[-1] if self._phases else "",
                thread=thread,
                value=scalar,
            )
        )

    # ------------------------------------------------------------------
    # numeric soundness reports (checked_cast / checked_sum)
    # ------------------------------------------------------------------

    def report_overflow(self, name: str, detail: str) -> None:
        """Record an overflow finding (from a checked cast/accumulate)."""
        key = ("overflow", name, detail)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            MemcheckFinding(
                kind="overflow",
                name=name,
                index=-1,
                region=self._region,
                phase=self._phases[-1] if self._phases else "",
                thread=-1,
                alloc_site=None,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------

    def _report(
        self,
        kind: str,
        alloc: _Allocation,
        index: int,
        thread: int,
        detail: str,
    ) -> None:
        key = (kind, alloc.name, index)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            MemcheckFinding(
                kind=kind,
                name=alloc.name,
                index=index,
                region=self._region,
                phase=self._phases[-1] if self._phases else "",
                thread=thread,
                alloc_site=alloc.site,
                detail=detail,
            )
        )

    @property
    def finding_count(self) -> int:
        return len(self.findings)

    def summary(self) -> str:
        """One-line human summary of the watch."""
        return (
            f"{self.regions_checked} regions, {self.events_seen} events, "
            f"{len(self.findings)} finding(s), "
            f"{len(self.nan_origins)} NaN origin(s)"
        )


# ----------------------------------------------------------------------
# poisoned allocation + numeric soundness helpers
# ----------------------------------------------------------------------


def san_empty(
    shape,
    dtype: np.dtype | type = np.int64,
    name: str = "buf",
    checker: MemChecker | None = None,
) -> np.ndarray:
    """Allocate like ``np.empty`` but *poisoned* with trap values.

    The returned array is filled with :func:`trap_value` for ``dtype``
    — deterministic poison instead of stale heap garbage — and, when a
    :class:`MemChecker` is active (or passed explicitly), registered
    under ``name`` with the caller's file:line as the allocation site.
    Kernels must record accesses with ``(name, index)`` location keys
    for the checker's read barrier to attribute findings.

    The fill is not charged to the cost model (allocation never is),
    so swapping ``np.empty`` for ``san_empty`` leaves the simulated
    clock bit-identical.
    """
    arr = np.full(shape, trap_value(dtype), dtype=np.dtype(dtype))
    active = checker if checker is not None else MemChecker.current()
    if active is not None:
        active.register_allocation(name, arr, site=_call_site())
    return arr


def checked_cast(
    values,
    dtype: np.dtype | type,
    what: str = "cast",
    checker: MemChecker | None = None,
) -> np.ndarray:
    """``values.astype(dtype)`` with overflow/NaN detection.

    Values outside the target dtype's representable range — including
    non-finite floats cast to integers, the UBSan classic — are
    reported as an ``overflow`` finding to the active checker, or
    raise :class:`~repro.errors.NumericSoundnessError` when no checker
    is active (fail loudly instead of wrapping silently).  The cast is
    still performed and returned, so a checker run can keep going and
    collect every finding in one pass.
    """
    arr = np.asarray(values)
    target = np.dtype(dtype)
    bad: np.ndarray | None = None
    if target.kind in "iu":
        info = np.iinfo(target)
        if arr.dtype.kind == "f":
            finite = np.isfinite(arr)
            bad = ~finite | (arr < info.min) | (arr > info.max)
        elif arr.dtype.kind in "iu":
            # compare in python ints to avoid overflow in the comparison
            lo, hi = int(arr.min()) if arr.size else 0, int(arr.max()) if arr.size else 0
            if arr.size and (lo < info.min or hi > info.max):
                bad = (arr < info.min) | (arr > info.max)
    elif target.kind == "f" and arr.dtype.kind == "f":
        if np.dtype(arr.dtype).itemsize > target.itemsize:
            with np.errstate(over="ignore"):
                narrowed = arr.astype(target)
            bad = np.isfinite(arr) & ~np.isfinite(narrowed)
    if bad is not None and np.any(bad):
        count = int(np.count_nonzero(bad))
        offender = arr.ravel()[int(np.flatnonzero(bad.ravel())[0])]
        detail = (
            f"{what}: {count} value(s) outside {target} range, "
            f"first offender {offender!r}"
        )
        active = checker if checker is not None else MemChecker.current()
        if active is None:
            raise NumericSoundnessError(detail)
        active.report_overflow(what, detail)
    with np.errstate(over="ignore", invalid="ignore"):
        return arr.astype(target)


def checked_sum(
    values,
    dtype: np.dtype | type = np.int64,
    what: str = "sum",
    checker: MemChecker | None = None,
) -> int:
    """Exact integer accumulation with overflow detection.

    Sums in arbitrary-precision Python integers (no intermediate
    wrap), then verifies the total fits ``dtype``.  An out-of-range
    total is reported like :func:`checked_cast`.  Returns the exact
    Python int either way.
    """
    arr = np.asarray(values)
    if arr.dtype.kind not in "iu":
        raise MemcheckError(f"checked_sum needs an integer array, got {arr.dtype}")
    total = int(arr.sum(dtype=object)) if arr.size else 0
    info = np.iinfo(np.dtype(dtype))
    if not info.min <= total <= info.max:
        detail = f"{what}: accumulated total {total} overflows {np.dtype(dtype)}"
        active = checker if checker is not None else MemChecker.current()
        if active is None:
            raise NumericSoundnessError(detail)
        active.report_overflow(what, detail)
    return total


# ----------------------------------------------------------------------
# seeded-bug selftest
# ----------------------------------------------------------------------


def run_buggy_memcheck_kernel(threads: int = 4) -> MemChecker:
    """Run a kernel seeded with all four bug classes; return the checker.

    The regions carry the ``selftest:`` prefix, so the pytest
    ``--memcheck`` guard and CLI gates ignore these intentional
    findings when deciding pass/fail.
    """
    pool = SimulatedPool(threads=threads)
    checker = MemChecker()
    with checker.watch(pool):
        buf = san_empty(8, np.int64, name="selftest_buf")
        scores = san_empty(4, np.float64, name="selftest_scores")

        def worker(i: int, ctx) -> None:
            if i == 0:
                # bug 1: read of a never-written poisoned slot
                ctx.read(("selftest_buf", 5))
            elif i == 1:
                # bug 2: out-of-bounds store (negative wrap + past-end)
                ctx.write(("selftest_buf", -1))
                ctx.write(("selftest_buf", 8))
            elif i == 2:
                # bug 3: int32 overflow on a narrowing cast
                checked_cast(
                    np.asarray([2**40], dtype=np.int64),
                    np.int32,
                    what="selftest_cast",
                )
            else:
                # bug 4: NaN injection at a score write
                ctx.write(("selftest_scores", 0), value=float("nan"))
                scores[0] = float("nan")  # sani: ok - seeded selftest bug

        pool.parallel_for(
            list(range(max(threads, 4))), worker, label="selftest:memcheck"
        )
        # keep the arrays alive so "unused" poison isn't collected early
        assert buf.size == 8 and scores.size == 4
    return checker


def memcheck_selftest(threads: int = 4) -> tuple[bool, str]:
    """Check every seeded bug class is detected; returns (ok, message)."""
    checker = run_buggy_memcheck_kernel(threads=threads)
    kinds = {f.kind for f in checker.findings}
    missing = {"uninit-read", "oob-read", "oob-write", "overflow"} - kinds
    # oob-read is optional in the seed (both OOB directions are writes)
    missing.discard("oob-read")
    if missing:
        return (
            False,
            f"seeded bug(s) NOT detected: {', '.join(sorted(missing))} "
            f"({checker.summary()})",
        )
    uninit = next(f for f in checker.findings if f.kind == "uninit-read")
    if not uninit.alloc_site or "memcheck.py" not in uninit.alloc_site:
        return False, f"uninit-read lacks allocation-site attribution: {uninit}"
    if not checker.nan_origins:
        return False, "seeded NaN injection was not tracked to an origin"
    origin = checker.nan_origins[0]
    if origin.region != "selftest:memcheck":
        return False, f"NaN origin names the wrong region: {origin}"
    return True, (
        f"seeded memcheck bugs detected: {len(checker.findings)} finding(s) "
        f"+ NaN origin in {origin.region!r}"
    )


# re-exported for guard logic symmetry with the race selftest
MEMCHECK_SELFTEST_PREFIX = SELFTEST_PREFIX
