"""Symbolic interval domain for the SimProve prover (SAN5xx).

SimFlow's disjoint-write prover (:mod:`repro.sanitizer.flow`) reasons
about *affine forms* — linear combinations of program symbols — but
only ever compares two forms for syntactic disjointness.  SimProve
needs an *order* on them: to certify ``out[expr]`` in-bounds it must
prove ``0 <= expr <= extent - 1`` where both ``expr`` and ``extent``
are symbolic.  This module supplies the machinery:

* **affine forms** — ``{symbol: coeff, "": const}`` dictionaries, the
  same encoding SimFlow uses, with add/sub/scale helpers;
* **intervals over affine bounds** — ``Interval(lo, hi, tight)`` where
  each bound is an affine form or ``None`` (unbounded).  ``tight``
  records that *both* endpoints are attained by real executions (a
  ``range(n)`` loop variable attains ``0`` and ``n - 1``); only tight
  intervals may ever escalate an out-of-bounds access to a SAN501
  *error* — joins and widening drop tightness, so merged paths fail
  closed to SAN502 *unproven*;
* **symbol facts + proof queries** — a :class:`SymbolFacts` table maps
  terminal symbols to their known intervals (``n >= 0``, ``values of
  indices in [0, n-1]`` …).  :func:`lower_const` / :func:`upper_const`
  resolve an affine form to a *constant* bound by recursively
  substituting each symbol's fact interval (positive coefficients take
  the symbol's lower bound, negative its upper), with a depth limit
  and a busy set so cyclic facts fail closed to "unknown".
  :func:`prove_nonneg` / :func:`prove_le` build on that; crucially
  ``prove_le(expr, extent - 1)`` first *cancels* shared symbols via
  affine subtraction, so ``n - 1 <= n - 1`` proves without knowing
  anything about ``n``.

Everything here fails closed: any bound that cannot be resolved to a
constant makes the query answer "unknown", never "proven".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Affine",
    "Interval",
    "SymbolFacts",
    "aff_add",
    "aff_const",
    "aff_eq",
    "aff_is_const",
    "aff_neg",
    "aff_repr",
    "aff_scale",
    "aff_split",
    "aff_sub",
    "aff_sym",
    "lower_const",
    "prove_le",
    "prove_lt",
    "prove_nonneg",
    "upper_const",
]

#: Affine form: ``{symbol: coefficient}`` with the empty-string key
#: holding the constant term.  ``{"": 3, "n": 2}`` is ``2*n + 3``.
Affine = dict

#: Recursion budget for bound substitution — worker index expressions
#: are shallow; anything deeper than this is a pathological fact chain.
_MAX_SUBST_DEPTH = 8


# ---------------------------------------------------------------------------
# affine forms


def aff_const(c: int) -> Affine:
    return {"": int(c)}


def aff_sym(name: str) -> Affine:
    return {"": 0, name: 1}


def _clean(aff: Affine) -> Affine:
    out = {sym: c for sym, c in aff.items() if c != 0 or sym == ""}
    out.setdefault("", 0)
    return out


def aff_add(a: Affine, b: Affine) -> Affine:
    out = dict(a)
    for sym, c in b.items():
        out[sym] = out.get(sym, 0) + c
    return _clean(out)


def aff_scale(a: Affine, k: int) -> Affine:
    return _clean({sym: c * k for sym, c in a.items()})


def aff_neg(a: Affine) -> Affine:
    return aff_scale(a, -1)


def aff_sub(a: Affine, b: Affine) -> Affine:
    return aff_add(a, aff_neg(b))


def aff_is_const(a: Affine) -> bool:
    return all(c == 0 for sym, c in a.items() if sym != "")


def aff_split(a: Affine) -> tuple[int, dict]:
    """Split an affine form into ``(constant, {symbol: coeff})``.

    Zero-coefficient symbols are dropped.  SimDist uses this to
    normalize wire byte-count expressions (``header + per_item *
    count``) against declared message schemas.
    """
    clean = _clean(a)
    return clean.get("", 0), {s: c for s, c in clean.items() if s != ""}


def aff_eq(a: Affine | None, b: Affine | None) -> bool:
    if a is None or b is None:
        return a is b
    return _clean(a) == _clean(b)


def aff_repr(a: Affine | None) -> str:
    """Human form for findings/certificates: ``"2*n + m - 1"``."""
    if a is None:
        return "?"
    parts: list[str] = []
    for sym in sorted(k for k in a if k != ""):
        c = a[sym]
        if c == 0:
            continue
        term = sym if abs(c) == 1 else f"{abs(c)}*{sym}"
        parts.append(("- " if c < 0 else "+ " if parts else "") + term)
    const = a.get("", 0)
    if const or not parts:
        parts.append(("- " if const < 0 else "+ " if parts else "") + str(abs(const)))
    return " ".join(parts).replace("+ -", "- ")


# ---------------------------------------------------------------------------
# symbol facts


@dataclass
class SymbolFacts:
    """Known intervals for terminal symbols (sizes, value ranges)."""

    _ranges: dict = field(default_factory=dict)

    def declare(self, name: str, interval: "Interval") -> None:
        self._ranges[str(name)] = interval

    def get(self, name: str) -> "Interval | None":
        return self._ranges.get(name)

    def copy(self) -> "SymbolFacts":
        return SymbolFacts(dict(self._ranges))


# ---------------------------------------------------------------------------
# constant-bound resolution


def lower_const(
    aff: Affine | None,
    facts: SymbolFacts,
    _depth: int = _MAX_SUBST_DEPTH,
    _busy: frozenset = frozenset(),
) -> int | None:
    """Greatest constant provably ``<= aff``, or None if unresolvable."""
    if aff is None or _depth <= 0:
        return None
    total = aff.get("", 0)
    for sym, coeff in aff.items():
        if sym == "" or coeff == 0:
            continue
        if sym in _busy:
            return None
        fact = facts.get(sym)
        if fact is None:
            return None
        busy = _busy | {sym}
        if coeff > 0:
            bound = lower_const(fact.lo, facts, _depth - 1, busy)
        else:
            bound = upper_const(fact.hi, facts, _depth - 1, busy)
        if bound is None:
            return None
        total += coeff * bound
    return total


def upper_const(
    aff: Affine | None,
    facts: SymbolFacts,
    _depth: int = _MAX_SUBST_DEPTH,
    _busy: frozenset = frozenset(),
) -> int | None:
    """Least constant provably ``>= aff``, or None if unresolvable."""
    if aff is None or _depth <= 0:
        return None
    total = aff.get("", 0)
    for sym, coeff in aff.items():
        if sym == "" or coeff == 0:
            continue
        if sym in _busy:
            return None
        fact = facts.get(sym)
        if fact is None:
            return None
        busy = _busy | {sym}
        if coeff > 0:
            bound = upper_const(fact.hi, facts, _depth - 1, busy)
        else:
            bound = lower_const(fact.lo, facts, _depth - 1, busy)
        if bound is None:
            return None
        total += coeff * bound
    return total


def prove_nonneg(aff: Affine | None, facts: SymbolFacts) -> bool:
    """True only when ``aff >= 0`` holds for every symbol valuation
    consistent with ``facts``.  Unresolvable -> False (fail closed)."""
    lo = lower_const(aff, facts)
    return lo is not None and lo >= 0


def prove_le(a: Affine | None, b: Affine | None, facts: SymbolFacts) -> bool:
    """Prove ``a <= b``.  Shared symbols cancel first, so symbolic
    comparisons like ``n - 1 <= n`` need no facts at all."""
    if a is None or b is None:
        return False
    return prove_nonneg(aff_sub(b, a), facts)


def prove_lt(a: Affine | None, b: Affine | None, facts: SymbolFacts) -> bool:
    if a is None or b is None:
        return False
    return prove_nonneg(aff_sub(aff_sub(b, a), aff_const(1)), facts)


# ---------------------------------------------------------------------------
# intervals


@dataclass(frozen=True)
class Interval:
    """Closed interval with affine endpoints; ``None`` = unbounded.

    ``tight`` asserts both endpoints are *attained* by some execution
    (not merely bounds).  Only tight intervals can convict an access as
    provably out-of-bounds (SAN501); every widening/merge clears the
    flag so uncertain paths degrade to SAN502.
    """

    lo: Affine | None = None
    hi: Affine | None = None
    tight: bool = False

    # -- constructors --------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None, False)

    @staticmethod
    def const(c: int) -> "Interval":
        a = aff_const(c)
        return Interval(a, a, True)

    @staticmethod
    def exact(aff: Affine) -> "Interval":
        """The value *is* this affine form (tight point interval)."""
        return Interval(aff, aff, True)

    @staticmethod
    def sym(name: str) -> "Interval":
        return Interval.exact(aff_sym(name))

    # -- queries -------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def is_point(self) -> bool:
        return self.lo is not None and aff_eq(self.lo, self.hi)

    def provably_empty(self, facts: SymbolFacts) -> bool:
        """``lo > hi`` in every valuation — e.g. ``range(5, 3)``."""
        if self.lo is None or self.hi is None:
            return False
        return prove_lt(self.hi, self.lo, facts)

    # -- arithmetic ----------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        lo = aff_add(self.lo, other.lo) if self.lo is not None and other.lo is not None else None
        hi = aff_add(self.hi, other.hi) if self.hi is not None and other.hi is not None else None
        return Interval(lo, hi, self.tight and other.tight)

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def neg(self) -> "Interval":
        lo = aff_neg(self.hi) if self.hi is not None else None
        hi = aff_neg(self.lo) if self.lo is not None else None
        return Interval(lo, hi, self.tight)

    def shift(self, c: int) -> "Interval":
        return self.add(Interval.const(c))

    def scale_const(self, k: int) -> "Interval":
        if k == 0:
            return Interval.const(0)
        lo = aff_scale(self.lo, k) if self.lo is not None else None
        hi = aff_scale(self.hi, k) if self.hi is not None else None
        if k > 0:
            return Interval(lo, hi, self.tight)
        return Interval(hi, lo, self.tight)

    def mul(self, other: "Interval") -> "Interval":
        """Only constant*interval products stay affine; others -> top."""
        if self.is_point() and self.lo is not None and aff_is_const(self.lo):
            return other.scale_const(self.lo.get("", 0))
        if other.is_point() and other.lo is not None and aff_is_const(other.lo):
            return self.scale_const(other.lo.get("", 0))
        return Interval.top()

    # -- lattice -------------------------------------------------------

    def join(self, other: "Interval", facts: SymbolFacts) -> "Interval":
        """Least upper bound.  Equal endpoints are kept symbolically;
        ordered endpoints (provable via ``facts``) keep the outer one;
        anything else drops to unbounded.  Tightness survives only an
        exact merge."""
        if self.is_top:
            return Interval.top()
        if other.is_top:
            return Interval.top()

        if aff_eq(self.lo, other.lo):
            lo = self.lo
        elif prove_le(self.lo, other.lo, facts):
            lo = self.lo
        elif prove_le(other.lo, self.lo, facts):
            lo = other.lo
        else:
            lo = None

        if aff_eq(self.hi, other.hi):
            hi = self.hi
        elif prove_le(other.hi, self.hi, facts):
            hi = self.hi
        elif prove_le(self.hi, other.hi, facts):
            hi = other.hi
        else:
            hi = None

        tight = (
            self.tight
            and other.tight
            and aff_eq(self.lo, other.lo)
            and aff_eq(self.hi, other.hi)
        )
        return Interval(lo, hi, tight)

    def widen(self, newer: "Interval") -> "Interval":
        """Standard widening: endpoints that moved become unbounded.
        Always clears ``tight`` — widened bounds are not attained."""
        lo = self.lo if aff_eq(self.lo, newer.lo) else None
        hi = self.hi if aff_eq(self.hi, newer.hi) else None
        return Interval(lo, hi, False)

    def __eq__(self, other: object) -> bool:  # dict fields: structural
        if not isinstance(other, Interval):
            return NotImplemented
        return (
            aff_eq(self.lo, other.lo)
            and aff_eq(self.hi, other.hi)
            and self.tight == other.tight
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as keys
        return hash((aff_repr(self.lo), aff_repr(self.hi), self.tight))

    def __repr__(self) -> str:
        mark = "=" if self.tight else "~"
        return f"[{aff_repr(self.lo)}, {aff_repr(self.hi)}]{mark}"
