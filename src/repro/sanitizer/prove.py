"""SimProve: SAN5xx static bounds proofs + determinism certification.

SimCheck (PR 3) establishes memory soundness *dynamically*: every
recorded access pays a read/write barrier, and only executed inputs
are covered.  SimProve establishes the same properties *statically*,
once per kernel, for all inputs — and lets proven kernels shed the
barrier at runtime (the ``ThreadContext.proven`` fast path, measured
by ``benchmarks/bench_prove.py``).

Three analyses over the PR-5 CFG/call-graph machinery:

**Bounds proofs (SAN501/SAN502).**  For every kernel in the registry,
walk the call graph to its ``parallel_for`` workers and collect one
*obligation* per array access: numpy subscript stores/loads and slices
of arrays with declared extents (``KERNEL_EXTENTS`` on the kernels
registry), recorded ``ctx.read/write/atomic(("name", idx))`` accesses
whose constant name has a declared extent, and Atomic* method calls
whose constructor is resolvable in-module (an ``AtomicArray(n,
name="pkc_deg")`` receiver self-declares extent ``n`` for location
name ``"pkc_deg"``).  Each obligation is judged by an interval
fixpoint over the worker's CFG (:mod:`repro.sanitizer.intervals`):
``range`` loops bind tight intervals, ``start, end = item`` chunk
unpacking binds ``[0, n]``, CSR idioms supply value facts (elements of
``indices`` are vertex ids below ``len(indptr) - 1``; elements of
``indptr`` are offsets up to ``len(indices)``; ``np.searchsorted(a,
x)`` lands in ``[0, len(a)]``).  Verdicts: *proven*, *unproven*
(SAN502 warning — fail closed), or *violation* (SAN501 error — only
from *tight* intervals whose attained endpoint provably escapes).

**Determinism certification (SAN503).**  Combining operations
reachable from ``parallel_for`` are classified: integer
``fetch_add``/``add``, ``fetch_min``/``fetch_max``, CAS-claim
(``compare_and_swap``/``add_if_absent``) and the pivot union-find ops
commute bitwise under the substrate's deterministic schedule; float
``fetch_add``/``add`` and ``AtomicList.append`` do not and are flagged
SAN503 (order-sensitive reduction).  Receiver dtypes resolve from
in-module constructor sites (``AtomicArray``'s default is
``np.int64``); unresolvable sites are recorded as *assumed* — listed
on the certificate, never silently commutative.

**Certificates + manifest.**  Each kernel gets a
:class:`KernelCertificate` — ``certified`` iff zero SAN501 and not
order-sensitive (SAN502 residues are recorded on the certificate, not
hidden) — committed to ``prove_manifest.json`` with line-free keys.
``repro sanitize --prove`` regenerates and diffs against the committed
manifest; drift is an error in the 0/1/2 exit contract (refresh with
``--write-manifest``).  Suppression: a trailing ``# sani: ok -
reason`` skips that line's obligations and SAN503 sites, same as
every other SAN family.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.sanitizer.cfg import CFG, build_cfg
from repro.sanitizer.flow import (
    FlowAnalyzer,
    FunctionRef,
    ModuleIndex,
    ModuleInfo,
    default_index,
    _find_workers_in,
)
from repro.sanitizer.intervals import (
    Affine,
    Interval,
    SymbolFacts,
    aff_const,
    aff_repr,
    aff_sub,
    aff_sym,
    prove_le,
    prove_nonneg,
    upper_const,
)
from repro.sanitizer.lint import (
    LintFinding,
    _find_workers,
    _WorkerInfo,
)

__all__ = [
    "AtomicSite",
    "BoundsObligation",
    "DEFAULT_MANIFEST_PATH",
    "KernelCertificate",
    "MANIFEST_SCHEMA",
    "ProveFinding",
    "ProveReport",
    "diff_manifest",
    "load_manifest",
    "manifest_payload",
    "prove_kernels",
    "prove_selftest",
    "prove_source",
    "verify_manifest",
    "write_manifest",
]

#: Committed proof manifest, next to this module (like flow_baseline).
DEFAULT_MANIFEST_PATH = Path(__file__).with_name("prove_manifest.json")
MANIFEST_SCHEMA = "prove-manifest/v1"

#: Atomic methods that commute bitwise regardless of dtype under the
#: substrate's fixed schedule: counter increments are integer,
#: min/max folds are idempotent-associative, CAS/claim ops publish
#: exactly once, and the pivot union-find's merge order is fixed by
#: the pivot rule (the paper's determinism argument).
_COMMUTATIVE_METHODS = frozenset(
    {
        "fetch_add",
        "fetch_min",
        "fetch_max",
        "compare_and_swap",
        "add_if_absent",
        "union",
        "get_pivot",
    }
)
#: Methods whose result depends on arrival order for any dtype.
_ORDER_SENSITIVE_METHODS = frozenset({"append"})
#: Dtype-dependent read-modify-write: int commutes, float does not.
_RMW_METHODS = frozenset({"add"})
#: Atomic methods with an ``(ctx, index, ...)`` signature — their
#: index argument is a bounds obligation against the ctor extent.
_INDEXED_ATOMIC_METHODS = frozenset(
    {"add", "store", "compare_and_swap", "fetch_min", "fetch_max", "load"}
)

#: ``# prove: item in [lo, hi)`` / ``# prove: chunks of [0, hi)``
#: assumption markers, attached to the ``parallel_for`` call line or
#: the worker ``def`` line.  They declare the work-item domain when it
#: is data-dependent (a frontier of vertex ids) — an assume-guarantee
#: boundary recorded verbatim on the certificate.  Assumed intervals
#: are never tight, so they can prove accesses in-bounds but can never
#: escalate to SAN501.
_ASSUME_ITEM_RE = re.compile(
    r"#\s*prove:\s*item\s+in\s+\[\s*([^,\]]+?)\s*,\s*([^)\]]+?)\s*\)"
)
_ASSUME_CHUNK_RE = re.compile(
    r"#\s*prove:\s*chunks\s+of\s+\[\s*([^,\]]+?)\s*,\s*([^)\]]+?)\s*\)"
)

_MAX_BLOCK_VISITS = 8
_WIDEN_AFTER = 2


# ======================================================================
# findings / certificates
# ======================================================================


@dataclass(frozen=True)
class ProveFinding(LintFinding):
    """A SAN5xx finding with a line-free key (manifest-stable)."""

    key: str = ""


@dataclass
class BoundsObligation:
    """One array access the prover must discharge."""

    kernel: str
    path: str
    worker: str
    kind: str  # "store" | "load" | "slice" | "recorded" | "atomic"
    array: str
    index_repr: str
    line: int
    outcome: str = "unproven"  # "proven" | "unproven" | "violation"
    reason: str = ""

    @property
    def key(self) -> str:
        base = Path(self.path).name
        return f"{self.kind}:{base}:{self.worker}:{self.array}[{self.index_repr}]"


@dataclass
class AtomicSite:
    """One combining operation reachable from a kernel's workers."""

    path: str
    func: str
    recv: str
    method: str
    dtype: str  # "int" | "float" | "set" | "list" | "unknown" | "-"
    klass: str  # "commutative" | "order-sensitive" | "assumed"
    line: int

    @property
    def key(self) -> str:
        return f"{Path(self.path).name}:{self.func}:{self.recv}.{self.method}"


@dataclass
class KernelCertificate:
    """Per-kernel proof artifact, serialized into the manifest."""

    name: str
    status: str = "certified"  # | "violations" | "order-sensitive"
    determinism: str = "commutative"  # | "assumed" | "order-sensitive"
    fully_proven: bool = False
    proven_arrays: tuple = ()
    obligations: list = field(default_factory=list)
    atomics: list = field(default_factory=list)
    assumptions: tuple = ()

    @property
    def bounds(self) -> dict:
        counts = {"proven": 0, "unproven": 0, "violations": 0}
        for ob in self.obligations:
            if ob.outcome == "proven":
                counts["proven"] += 1
            elif ob.outcome == "violation":
                counts["violations"] += 1
            else:
                counts["unproven"] += 1
        return counts

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "determinism": self.determinism,
            "fully_proven": self.fully_proven,
            "proven_arrays": sorted(self.proven_arrays),
            "bounds": self.bounds,
            "obligations": {
                ob.key: ob.outcome
                for ob in sorted(self.obligations, key=lambda o: o.key)
            },
            "atomics": {
                site.key: site.klass
                for site in sorted(self.atomics, key=lambda s: s.key)
            },
            "assumptions": sorted(self.assumptions),
        }


@dataclass
class ProveReport:
    """Everything one ``--prove`` run produced."""

    certificates: dict = field(default_factory=dict)
    findings: list = field(default_factory=list)
    #: (path, line) of ``# prove:`` markers consumed this run (SAN002)
    used_marker_lines: set = field(default_factory=set)

    @property
    def errors(self) -> list:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def certified(self) -> list:
        return sorted(
            name
            for name, cert in self.certificates.items()
            if cert.status == "certified"
        )


# ======================================================================
# extent / assumption parsing
# ======================================================================


def _affine_from_ast(node: ast.AST) -> Affine | None:
    """Affine form of a size/bound expression; None when non-affine.

    Only ``Name``/int ``Constant``/``+``/``-``/constant ``*`` stay
    affine — ``indptr[-1]``, calls, floats all fail closed to None.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return aff_const(node.value)
    if isinstance(node, ast.Name):
        return aff_sym(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _affine_from_ast(node.operand)
        return None if inner is None else {k: -v for k, v in inner.items()}
    if isinstance(node, ast.BinOp):
        left = _affine_from_ast(node.left)
        right = _affine_from_ast(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            out = dict(left)
            for k, v in right.items():
                out[k] = out.get(k, 0) + v
            return out
        if isinstance(node.op, ast.Sub):
            out = dict(left)
            for k, v in right.items():
                out[k] = out.get(k, 0) - v
            return out
        if isinstance(node.op, ast.Mult):
            const, other = None, None
            if all(c == 0 for s, c in left.items() if s != ""):
                const, other = left.get("", 0), right
            elif all(c == 0 for s, c in right.items() if s != ""):
                const, other = right.get("", 0), left
            if const is None:
                return None
            return {k: v * const for k, v in other.items()}
    return None


def _parse_extent(expr: str) -> Affine | None:
    """Parse a ``KERNEL_EXTENTS`` value like ``"n + 1"`` / ``"2 * m"``."""
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError:
        return None
    return _affine_from_ast(tree.body)


def _parse_bound(expr: str) -> Affine | None:
    return _parse_extent(expr)


class _Assumptions:
    """``# prove:`` markers of one module, by source line."""

    def __init__(self, source: str) -> None:
        self.items: dict[int, tuple] = {}
        self.chunks: dict[int, tuple] = {}
        #: lines whose marker actually seeded an environment this run
        #: (SAN002 dead-suppression support)
        self.used_lines: set[int] = set()
        for i, text in enumerate(source.splitlines(), start=1):
            m = _ASSUME_ITEM_RE.search(text)
            if m:
                lo, hi = _parse_bound(m.group(1)), _parse_bound(m.group(2))
                if lo is not None and hi is not None:
                    self.items[i] = (lo, hi, f"item in [{m.group(1)}, {m.group(2)})")
            m = _ASSUME_CHUNK_RE.search(text)
            if m:
                lo, hi = _parse_bound(m.group(1)), _parse_bound(m.group(2))
                if lo is not None and hi is not None:
                    self.chunks[i] = (lo, hi, f"chunks of [{m.group(1)}, {m.group(2)})")

    def item_at(self, *lines: int) -> tuple | None:
        for ln in lines:
            if ln in self.items:
                self.used_lines.add(ln)
                return self.items[ln]
        return None

    def chunk_at(self, *lines: int) -> tuple | None:
        for ln in lines:
            if ln in self.chunks:
                self.used_lines.add(ln)
                return self.chunks[ln]
        return None


# ======================================================================
# receiver constructor resolution (Atomic* dtypes and extents)
# ======================================================================

_FLOAT_DTYPES = ("float16", "float32", "float64", "float128", "float")
_INT_DTYPES = (
    "int8",
    "int16",
    "int32",
    "int64",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
    "int",
    "intp",
    "bool_",
)


def _dtype_class(node: ast.AST | None) -> str:
    """"int"/"float"/"unknown" from a ``dtype=`` argument node."""
    name = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if name in _FLOAT_DTYPES:
        return "float"
    if name in _INT_DTYPES:
        return "int"
    return "unknown"


@dataclass
class _Ctor:
    """Resolved ``recv = Atomic*(...)`` constructor facts."""

    kind: str  # "array" | "counter" | "set" | "list" | "unknown"
    dtype: str  # "int" | "float" | "unknown" | "-"
    extent: Affine | None = None  # AtomicArray size argument
    runtime_name: str | None = None  # constant name= kwarg


def _resolve_ctor(info: ModuleInfo, recv: str) -> _Ctor | None:
    """Find the (unique) ``recv = Atomic*(...)`` assignment in-module.

    Conflicting assignments fail closed to None (dtype unknown).
    """
    found: _Ctor | None = None
    for node in ast.walk(info.tree):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == recv
            and isinstance(node.value, ast.Call)
        ):
            continue
        func = node.value.func
        ctor_name = None
        from_array = False
        if isinstance(func, ast.Name):
            ctor_name = func.id
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            # classmethod, e.g. AtomicArray.from_array
            ctor_name = func.value.id
            from_array = func.attr == "from_array"
        if ctor_name not in ("AtomicArray", "AtomicCounter", "AtomicSet", "AtomicList"):
            continue
        kwargs = {kw.arg: kw.value for kw in node.value.keywords if kw.arg}
        name_node = kwargs.get("name")
        runtime_name = (
            name_node.value
            if isinstance(name_node, ast.Constant)
            and isinstance(name_node.value, str)
            else None
        )
        if ctor_name == "AtomicCounter":
            ctor = _Ctor("counter", "int", None, runtime_name)
        elif ctor_name == "AtomicSet":
            ctor = _Ctor("set", "-", None, runtime_name)
        elif ctor_name == "AtomicList":
            ctor = _Ctor("list", "-", None, runtime_name)
        elif from_array:
            ctor = _Ctor("array", "unknown", None, runtime_name)
        else:
            dtype = (
                _dtype_class(kwargs["dtype"]) if "dtype" in kwargs else "int"
            )  # the AtomicArray ctor defaults dtype=np.int64
            size = node.value.args[0] if node.value.args else None
            ctor = _Ctor("array", dtype, _affine_from_ast(size), runtime_name)
        if found is not None and (found.kind, found.dtype) != (ctor.kind, ctor.dtype):
            return None
        found = ctor
    return found


# ======================================================================
# interval evaluation over worker CFGs
# ======================================================================


class _WorkerScope:
    """Everything the evaluator knows about one worker closure."""

    def __init__(
        self,
        worker: _WorkerInfo,
        locals_: set,
        extents: dict,
        value_facts: dict,
        facts: SymbolFacts,
        chunk_extent: Affine | None,
    ) -> None:
        self.worker = worker
        self.locals = locals_
        self.extents = extents
        self.value_facts = value_facts
        self.facts = facts
        self.chunk_extent = chunk_extent


def _eval(node: ast.AST, env: dict, scope: _WorkerScope) -> Interval:
    """Interval of an expression under ``env``; unknown -> top."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            return Interval.top()
        return Interval.const(node.value)
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        if node.id in self_locals(scope) or node.id == scope.worker.item:
            return Interval.top()  # local not yet bound on this path
        return Interval.sym(node.id)  # captured name: terminal symbol
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _eval(node.operand, env, scope).neg()
    if isinstance(node, ast.BinOp):
        left = _eval(node.left, env, scope)
        right = _eval(node.right, env, scope)
        if isinstance(node.op, ast.Add):
            return left.add(right)
        if isinstance(node.op, ast.Sub):
            return left.sub(right)
        if isinstance(node.op, ast.Mult):
            return left.mul(right)
        return Interval.top()  # // and % are non-affine: fail closed
    if isinstance(node, ast.IfExp):
        a = _eval(node.body, env, scope)
        b = _eval(node.orelse, env, scope)
        return a.join(b, scope.facts)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "int" and node.args:
            return _eval(node.args[0], env, scope)
        if isinstance(func, ast.Name) and func.id == "len" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Name) and arg.id in scope.extents:
                ext = scope.extents[arg.id]
                if ext is not None:
                    return Interval.exact(ext)
            return Interval.top()
        if isinstance(func, ast.Name) and func.id in ("min", "max") and len(node.args) == 2:
            a = _eval(node.args[0], env, scope)
            b = _eval(node.args[1], env, scope)
            if func.id == "min":
                hi = a.hi if a.hi is not None else b.hi
                if a.hi is not None and b.hi is not None:
                    hi = a.hi if prove_le(a.hi, b.hi, scope.facts) else b.hi
                lo = None
                if a.lo is not None and b.lo is not None:
                    if prove_le(a.lo, b.lo, scope.facts):
                        lo = a.lo
                    elif prove_le(b.lo, a.lo, scope.facts):
                        lo = b.lo
                return Interval(lo, hi, False)
            lo = a.lo if a.lo is not None else b.lo
            if a.lo is not None and b.lo is not None:
                lo = a.lo if prove_le(b.lo, a.lo, scope.facts) else b.lo
            hi = None
            if a.hi is not None and b.hi is not None:
                if prove_le(b.hi, a.hi, scope.facts):
                    hi = a.hi
                elif prove_le(a.hi, b.hi, scope.facts):
                    hi = b.hi
            return Interval(lo, hi, False)
        attr = func.attr if isinstance(func, ast.Attribute) else None
        name = func.id if isinstance(func, ast.Name) else None
        if (attr == "searchsorted" or name == "searchsorted") and node.args:
            arr = node.args[0]
            if isinstance(arr, ast.Name) and scope.extents.get(arr.id) is not None:
                return Interval(aff_const(0), scope.extents[arr.id], False)
        return Interval.top()
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id in scope.value_facts:
            if not isinstance(node.slice, ast.Slice):
                return scope.value_facts[base.id]
        return Interval.top()
    return Interval.top()


def self_locals(scope: _WorkerScope) -> set:
    return scope.locals


def _iter_interval(
    iter_expr: ast.AST, env: dict, scope: _WorkerScope
) -> Interval:
    """Domain of a ``for`` target given its iterable expression."""
    node = iter_expr
    # unwrap list(range(...)) / enumerate is left unknown
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "list"
        and node.args
    ):
        node = node.args[0]
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    ):
        args = node.args
        if len(args) == 3:
            step = args[2]
            if not (isinstance(step, ast.Constant) and step.value == 1):
                return Interval.top()  # non-unit step: fail closed
        if len(args) == 1:
            lo_iv, hi_iv = Interval.const(0), _eval(args[0], env, scope)
        elif len(args) in (2, 3):
            lo_iv, hi_iv = _eval(args[0], env, scope), _eval(args[1], env, scope)
        else:
            return Interval.top()
        if lo_iv.lo is None or hi_iv.hi is None:
            return Interval.top()
        tight = lo_iv.tight and hi_iv.tight and lo_iv.is_point() and hi_iv.is_point()
        return Interval(lo_iv.lo, aff_sub(hi_iv.hi, aff_const(1)), tight)
    # iterating a declared array (or a slice of one) yields its values
    if isinstance(node, ast.Name) and node.id in scope.value_facts:
        return scope.value_facts[node.id]
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id in scope.value_facts
    ):
        return scope.value_facts[node.value.id]
    return Interval.top()


def _apply_stmt(stmt: ast.AST, env: dict, scope: _WorkerScope) -> None:
    """Transfer function of one straight-line statement (in place)."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            env[target.id] = _eval(stmt.value, env, scope)
            return
        if (
            isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and all(isinstance(e, ast.Name) for e in target.elts)
            and isinstance(stmt.value, ast.Name)
            and stmt.value.id == scope.worker.item
            and scope.chunk_extent is not None
        ):
            # start, end = item over pool.partition(X): 0 <= s, e <= X
            bound = Interval(aff_const(0), scope.chunk_extent, False)
            env[target.elts[0].id] = bound
            env[target.elts[1].id] = bound
            return
        for sub in ast.walk(target):
            # only names actually rebound lose their interval; index
            # expressions inside a subscript target are reads
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                env[sub.id] = Interval.top()
        return
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        env[stmt.target.id] = (
            _eval(stmt.value, env, scope) if stmt.value else Interval.top()
        )
        return
    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
        current = env.get(stmt.target.id, Interval.top())
        delta = _eval(stmt.value, env, scope)
        if isinstance(stmt.op, ast.Add):
            env[stmt.target.id] = current.add(delta)
        elif isinstance(stmt.op, ast.Sub):
            env[stmt.target.id] = current.sub(delta)
        elif isinstance(stmt.op, ast.Mult):
            env[stmt.target.id] = current.mul(delta)
        else:
            env[stmt.target.id] = Interval.top()
        return
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    env[sub.id] = Interval.top()


def _join_envs(a: dict, b: dict, facts: SymbolFacts) -> dict:
    """Pointwise join; names bound on only one path drop to unknown."""
    return {
        name: a[name].join(b[name], facts)
        for name in a.keys() & b.keys()
    }


def _envs_equal(a: dict, b: dict) -> bool:
    return a.keys() == b.keys() and all(a[k] == b[k] for k in a)


def _fixpoint(
    cfg: CFG, seed: dict, scope: _WorkerScope
) -> dict:
    """Entry environment of every block, to a widened fixpoint."""
    in_envs: dict[int, dict] = {cfg.entry: dict(seed)}
    visits: dict[int, int] = {}
    worklist = [cfg.entry]
    while worklist:
        bid = worklist.pop()
        visits[bid] = visits.get(bid, 0) + 1
        if visits[bid] > _MAX_BLOCK_VISITS * 4:
            continue  # pathological graph: freeze (envs stay sound)
        block = cfg.blocks[bid]
        env = dict(in_envs.get(bid, {}))
        for stmt in block.stmts:
            _apply_stmt(stmt, env, scope)
        for pos, succ in enumerate(block.succs):
            out = dict(env)
            if block.kind == "for" and block.test is not None:
                if pos == 0 and isinstance(block.target, ast.Name):
                    # body edge: bind the loop variable's domain
                    out[block.target.id] = _iter_interval(
                        block.test, env, scope
                    )
                elif isinstance(block.target, ast.Name):
                    # exit edge: final value is not tracked
                    out[block.target.id] = Interval.top()
                elif block.target is not None:
                    for sub in ast.walk(block.target):
                        if isinstance(sub, ast.Name):
                            out[sub.id] = Interval.top()
            existing = in_envs.get(succ)
            if existing is None:
                in_envs[succ] = out
                worklist.append(succ)
                continue
            merged = _join_envs(existing, out, scope.facts)
            header = cfg.blocks[succ].is_loop
            if header and visits.get(succ, 0) >= _WIDEN_AFTER:
                merged = {
                    name: existing[name].widen(merged[name])
                    if name in existing
                    else merged[name]
                    for name in merged
                }
            if not _envs_equal(merged, existing):
                in_envs[succ] = merged
                worklist.append(succ)
    return in_envs


# ======================================================================
# obligation extraction + judging
# ======================================================================


def _judge_index(
    iv: Interval,
    extent: Affine | None,
    facts: SymbolFacts,
    neg_is_violation: bool,
) -> tuple[str, str]:
    """Judge ``index in [0, extent)``; returns (outcome, reason)."""
    if extent is None:
        return "unproven", "extent unresolved"
    if iv.provably_empty(facts):
        # e.g. a loop variable of range(5, 3): the access never runs,
        # but an empty domain must fail closed, never certify
        return "unproven", "empty/inverted index range"
    last = aff_sub(extent, aff_const(1))
    ok_lo = iv.lo is not None and prove_nonneg(iv.lo, facts)
    ok_hi = iv.hi is not None and prove_le(iv.hi, last, facts)
    if ok_lo and ok_hi:
        return "proven", f"0 <= {aff_repr(iv.lo)} .. {aff_repr(iv.hi)} <= {aff_repr(last)}"
    if iv.tight:
        if iv.hi is not None and prove_le(extent, iv.hi, facts):
            return (
                "violation",
                f"index reaches {aff_repr(iv.hi)} >= extent {aff_repr(extent)}",
            )
        if neg_is_violation and iv.lo is not None:
            hi_of_lo = upper_const(iv.lo, facts)
            if hi_of_lo is not None and hi_of_lo <= -1:
                return (
                    "violation",
                    f"index is at most {hi_of_lo} < 0",
                )
    side = "lower" if not ok_lo else "upper"
    return "unproven", f"{side} bound {iv!r} not provable against {aff_repr(extent)}"


def _judge_slice(
    lo_iv: Interval | None,
    hi_iv: Interval | None,
    extent: Affine | None,
    facts: SymbolFacts,
) -> tuple[str, str]:
    """Judge ``arr[a:b]`` meaningful: ``0 <= a`` and ``b <= extent``."""
    if extent is None:
        return "unproven", "extent unresolved"
    ok_lo = lo_iv is None or (
        lo_iv.lo is not None and prove_nonneg(lo_iv.lo, facts)
    )
    ok_hi = hi_iv is None or (
        hi_iv.hi is not None and prove_le(hi_iv.hi, extent, facts)
    )
    if ok_lo and ok_hi:
        return "proven", f"slice within [0, {aff_repr(extent)}]"
    side = "lower" if not ok_lo else "upper"
    return "unproven", f"slice {side} bound not provable"


def _index_repr(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


class _ObligationCollector:
    """Walks one statement's expressions under a point environment."""

    def __init__(
        self,
        scope: _WorkerScope,
        env: dict,
        out: list,
        kernel: str,
        path: str,
        worker_name: str,
        suppressed: set,
        atomic_extents: dict,
    ) -> None:
        self.scope = scope
        self.env = env
        self.out = out
        self.kernel = kernel
        self.path = path
        self.worker_name = worker_name
        self.suppressed = suppressed
        self.atomic_extents = atomic_extents

    def _add(
        self,
        kind: str,
        array: str,
        index_node: ast.AST | None,
        line: int,
        outcome: str,
        reason: str,
        index_repr: str | None = None,
    ) -> None:
        self.out.append(
            BoundsObligation(
                kernel=self.kernel,
                path=self.path,
                worker=self.worker_name,
                kind=kind,
                array=array,
                index_repr=(
                    index_repr
                    if index_repr is not None
                    else _index_repr(index_node)
                ),
                line=line,
                outcome=outcome,
                reason=reason,
            )
        )

    def visit(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if getattr(sub, "lineno", None) in self.suppressed:
                continue
            if isinstance(sub, ast.Subscript):
                self._subscript(sub)
            elif isinstance(sub, ast.Call):
                self._call(sub)

    def _subscript(self, node: ast.Subscript) -> None:
        base = node.value
        if not isinstance(base, ast.Name):
            return
        extent = self.scope.extents.get(base.id)
        if base.id not in self.scope.extents:
            return
        line = node.lineno
        if isinstance(node.slice, ast.Slice):
            sl = node.slice
            if sl.step is not None and not (
                isinstance(sl.step, ast.Constant) and sl.step.value == 1
            ):
                self._add(
                    "slice", base.id, None, line, "unproven",
                    "non-unit slice step", index_repr=_index_repr(node.slice),
                )
                return
            lo_iv = (
                _eval(sl.lower, self.env, self.scope)
                if sl.lower is not None
                else None
            )
            hi_iv = (
                _eval(sl.upper, self.env, self.scope)
                if sl.upper is not None
                else None
            )
            outcome, reason = _judge_slice(
                lo_iv, hi_iv, extent, self.scope.facts
            )
            self._add(
                "slice", base.id, None, line, outcome, reason,
                index_repr=_index_repr(node.slice),
            )
            return
        if isinstance(node.slice, ast.Tuple):
            return  # multi-dim fancy indexing: out of scope, no claim
        iv = _eval(node.slice, self.env, self.scope)
        kind = "store" if isinstance(node.ctx, ast.Store) else "load"
        # numpy subscripts wrap negative indices, so only the upper
        # bound can convict; recorded accesses (below) reject them
        outcome, reason = _judge_index(
            iv, extent, self.scope.facts, neg_is_violation=False
        )
        self._add(kind, base.id, node.slice, line, outcome, reason)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # recorded accesses: ctx.read/write/atomic/atomic_load(("name", i))
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == self.scope.worker.ctx
            and func.attr in ("read", "write", "atomic", "atomic_load")
            and node.args
            and isinstance(node.args[0], ast.Tuple)
            and len(node.args[0].elts) >= 2
        ):
            name_node, index_node = node.args[0].elts[0], node.args[0].elts[1]
            if isinstance(name_node, ast.Constant) and isinstance(
                name_node.value, str
            ):
                array = name_node.value
                if array in self.scope.extents:
                    iv = _eval(index_node, self.env, self.scope)
                    outcome, reason = _judge_index(
                        iv,
                        self.scope.extents[array],
                        self.scope.facts,
                        neg_is_violation=True,
                    )
                    self._add(
                        "recorded", array, index_node, node.lineno,
                        outcome, reason,
                    )
            return
        # indexed Atomic* methods: recv.add(ctx, index, ...) — the
        # ctor's size argument self-declares the extent
        if (
            isinstance(func.value, ast.Name)
            and func.attr in _INDEXED_ATOMIC_METHODS
            and len(node.args) >= 2
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == self.scope.worker.ctx
        ):
            recv = func.value.id
            ctor = self.atomic_extents.get(recv)
            if ctor is None:
                return  # not a resolvable Atomic* receiver: no claim
            index_node = node.args[1]
            iv = _eval(index_node, self.env, self.scope)
            outcome, reason = _judge_index(
                iv, ctor.extent, self.scope.facts, neg_is_violation=True
            )
            self._add(
                "atomic",
                ctor.runtime_name or recv,
                index_node,
                node.lineno,
                outcome,
                reason,
            )


# ======================================================================
# per-worker proving
# ======================================================================


def _worker_name(worker: _WorkerInfo) -> str:
    node = worker.node
    return getattr(node, "name", "<lambda>")


def _worker_locals(worker: _WorkerInfo) -> set:
    locals_: set = set()
    body = worker.node.body if isinstance(worker.node.body, list) else []
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                locals_.add(sub.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for t in ast.walk(sub.target):
                    if isinstance(t, ast.Name):
                        locals_.add(t.id)
    return locals_


def _csr_value_facts(extents: dict) -> dict:
    """The CSR trust idiom: when a kernel declares both ``indptr``
    (extent ``n + 1``) and ``indices``, loads from ``indptr`` yield
    offsets in ``[0, len(indices)]`` and loads from ``indices`` yield
    vertex ids in ``[0, len(indptr) - 2]`` — the same contract
    ``validate_csr`` enforces dynamically at graph build time."""
    facts: dict = {}
    ep, ei = extents.get("indptr"), extents.get("indices")
    if ep is not None and ei is not None:
        facts["indptr"] = Interval(aff_const(0), ei, False)
        facts["indices"] = Interval(
            aff_const(0), aff_sub(ep, aff_const(2)), False
        )
    return facts


def _seed_item_env(
    worker: _WorkerInfo,
    scope: _WorkerScope,
    assumptions: _Assumptions,
    used: list,
) -> None:
    """Bind the worker's item parameter from the items expression or a
    ``# prove:`` assumption; unknown domains stay unbound (top)."""
    if worker.item is None:
        return
    lines = (
        worker.call_line,
        worker.call_line - 1,
        worker.node.lineno,
        worker.node.lineno - 1,
    )
    assumed = assumptions.item_at(*lines)
    if assumed is not None:
        lo, hi, text = assumed
        scope.base_env[worker.item] = Interval(
            lo, aff_sub(hi, aff_const(1)), False
        )
        used.append(f"{_worker_name(worker)}: {text}")
        return
    chunk = assumptions.chunk_at(*lines)
    if chunk is not None:
        _lo, hi, text = chunk
        scope.chunk_extent = hi
        used.append(f"{_worker_name(worker)}: {text}")
        return
    items = worker.items
    if items is None:
        return
    # pool.partition(X, ...) -> chunk tuples with 0 <= start,end <= X
    if (
        isinstance(items, ast.Call)
        and isinstance(items.func, ast.Attribute)
        and items.func.attr == "partition"
        and items.args
    ):
        extent = _affine_from_ast(items.args[0])
        if extent is not None:
            scope.chunk_extent = extent
        return
    iv = _iter_interval(items, {}, scope)
    if not iv.is_top:
        scope.base_env[worker.item] = iv


def _prove_worker(
    kernel: str,
    info: ModuleInfo,
    worker: _WorkerInfo,
    extents: dict,
    facts: SymbolFacts,
    assumptions: _Assumptions,
    atomic_extents: dict,
    used_assumptions: list,
) -> list:
    """All bounds obligations of one worker closure, judged."""
    node = worker.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return []
    locals_ = _worker_locals(worker)
    scope = _WorkerScope(
        worker, locals_, extents, _csr_value_facts(extents), facts, None
    )
    scope.base_env = {}
    _seed_item_env(worker, scope, assumptions, used_assumptions)
    cfg = build_cfg(node)
    envs = _fixpoint(cfg, scope.base_env, scope)
    obligations: list = []
    for block in cfg.blocks:
        env = dict(envs.get(block.bid, {}))
        collector = _ObligationCollector(
            scope,
            env,
            obligations,
            kernel,
            info.path,
            _worker_name(worker),
            info.suppressed,
            atomic_extents,
        )
        if block.test is not None and getattr(
            block.test, "lineno", None
        ) not in info.suppressed:
            collector.visit(block.test)
        for stmt in block.stmts:
            collector.visit(stmt)
            _apply_stmt(stmt, env, scope)
    return obligations


# ======================================================================
# determinism classification
# ======================================================================


def _classify_sites(
    info: ModuleInfo,
    func_name: str,
    worker: _WorkerInfo,
    ctor_cache: dict,
) -> list:
    """Combining-operation sites inside one worker closure.

    Only method calls that pass the worker's ``ctx`` participate in
    the simulated-memory protocol; bare ``ctx.atomic`` ticks carry no
    combined value (cost/event modelling only) and are skipped.
    """
    sites: list = []
    ctx_name = worker.ctx
    if ctx_name is None:
        return sites
    for node in ast.walk(worker.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id != ctx_name
        ):
            continue
        passes_ctx = any(
            isinstance(a, ast.Name) and a.id == ctx_name for a in node.args
        )
        if not passes_ctx:
            continue
        method = func.attr
        recv = func.value.id
        if method in ("load", "atomic_load", "snapshot", "value"):
            continue  # pure reads do not combine
        if node.lineno in info.suppressed:
            continue
        if recv not in ctor_cache:
            ctor_cache[recv] = _resolve_ctor(info, recv)
        ctor = ctor_cache[recv]
        dtype = ctor.dtype if ctor is not None else "unknown"
        if method in _ORDER_SENSITIVE_METHODS:
            klass = "order-sensitive"
        elif method in _COMMUTATIVE_METHODS:
            klass = "commutative"
        elif method in _RMW_METHODS:
            klass = {
                "int": "commutative",
                "float": "order-sensitive",
            }.get(dtype, "assumed")
        else:
            klass = "assumed"
        sites.append(
            AtomicSite(
                path=info.path,
                func=func_name,
                recv=recv,
                method=method,
                dtype=dtype,
                klass=klass,
                line=node.lineno,
            )
        )
    return sites


# ======================================================================
# the analyzer
# ======================================================================


class ProveAnalyzer:
    """SimProve over a module index; reusable across kernels."""

    def __init__(self, index: ModuleIndex | None = None) -> None:
        self.index = index if index is not None else default_index()
        self._flow = FlowAnalyzer(self.index)
        self._assumptions: dict[str, _Assumptions] = {}
        self._ctors: dict[str, dict] = {}

    # ------------------------------------------------------------------

    def _module_assumptions(self, info: ModuleInfo) -> _Assumptions:
        if info.path not in self._assumptions:
            try:
                source = Path(info.path).read_text(encoding="utf-8")
            except OSError:
                source = ""
            self._assumptions[info.path] = _Assumptions(source)
        return self._assumptions[info.path]

    def _reachable_workers(
        self, entry: FunctionRef
    ) -> list[tuple[FunctionRef, _WorkerInfo]]:
        """(enclosing function, worker) pairs reachable from ``entry``
        through the in-repo call graph — same BFS as SimFlow's effect
        inference, so certificates cover exactly the declared universe."""
        out: list = []
        visited: set[str] = set()
        seen_workers: set[int] = set()
        queue: list[FunctionRef] = [entry]
        while queue:
            ref = queue.pop()
            if ref.qualname in visited:
                continue
            visited.add(ref.qualname)
            scope = tuple(ref.qualpath.split("."))
            for worker in _find_workers_in(ref.node):
                if id(worker.node) in seen_workers:
                    continue
                seen_workers.add(id(worker.node))
                out.append((ref, worker))
            for call in ast.walk(ref.node):
                if not isinstance(call, ast.Call):
                    continue
                target = self.index.resolve_call(ref.module, scope, call)
                if target is not None and target.qualname not in visited:
                    queue.append(target)
        return out

    # ------------------------------------------------------------------

    def prove_entry(
        self,
        kernel: str,
        entry: FunctionRef,
        extent_exprs: dict,
    ) -> tuple[KernelCertificate, list]:
        """Prove one kernel entry point; returns (certificate, findings)."""
        extents: dict = {}
        facts = SymbolFacts()
        for array, expr in sorted(extent_exprs.items()):
            aff = _parse_extent(str(expr))
            extents[array] = aff  # None -> obligations fail closed
            if aff is not None:
                for sym in aff:
                    if sym:
                        # size symbols are nonnegative by construction
                        facts.declare(
                            sym, Interval(aff_const(0), None, False)
                        )
        obligations: list = []
        sites: list = []
        assumptions_used: list = []
        for ref, worker in self._reachable_workers(entry):
            info = ref.module
            module_assumes = self._module_assumptions(info)
            ctor_cache = self._ctors.setdefault(info.path, {})
            # resolvable AtomicArray receivers self-declare extents
            atomic_extents: dict = {}
            for node in ast.walk(worker.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.attr in _INDEXED_ATOMIC_METHODS
                ):
                    recv = node.func.value.id
                    if recv not in ctor_cache:
                        ctor_cache[recv] = _resolve_ctor(info, recv)
                    ctor = ctor_cache[recv]
                    if ctor is not None and ctor.kind == "array":
                        atomic_extents[recv] = ctor
            obligations.extend(
                _prove_worker(
                    kernel,
                    info,
                    worker,
                    extents,
                    facts,
                    module_assumes,
                    atomic_extents,
                    assumptions_used,
                )
            )
            sites.extend(
                _classify_sites(
                    info, ref.qualpath, worker, ctor_cache
                )
            )
        return self._certify(kernel, obligations, sites, assumptions_used)

    def _certify(
        self,
        kernel: str,
        obligations: list,
        sites: list,
        assumptions_used: list,
    ) -> tuple[KernelCertificate, list]:
        findings: list = []
        violations = [o for o in obligations if o.outcome == "violation"]
        unproven = [o for o in obligations if o.outcome == "unproven"]
        order_sites = [s for s in sites if s.klass == "order-sensitive"]
        assumed_sites = [s for s in sites if s.klass == "assumed"]
        for ob in violations:
            findings.append(
                ProveFinding(
                    path=ob.path,
                    line=ob.line,
                    col=0,
                    code="SAN501",
                    severity="error",
                    message=(
                        f"kernel {kernel!r}: provable out-of-bounds "
                        f"{ob.kind} {ob.array}[{ob.index_repr}] in worker "
                        f"{ob.worker!r}: {ob.reason}"
                    ),
                    key=f"SAN501:{kernel}:{ob.key}",
                )
            )
        for ob in unproven:
            findings.append(
                ProveFinding(
                    path=ob.path,
                    line=ob.line,
                    col=0,
                    code="SAN502",
                    severity="warning",
                    message=(
                        f"kernel {kernel!r}: unproven {ob.kind} "
                        f"{ob.array}[{ob.index_repr}] in worker "
                        f"{ob.worker!r}: {ob.reason}"
                    ),
                    key=f"SAN502:{kernel}:{ob.key}",
                )
            )
        for site in order_sites:
            findings.append(
                ProveFinding(
                    path=site.path,
                    line=site.line,
                    col=0,
                    code="SAN503",
                    severity="warning",
                    message=(
                        f"kernel {kernel!r}: order-sensitive reduction "
                        f"{site.recv}.{site.method} (dtype {site.dtype}) "
                        f"reachable from parallel_for in {site.func!r}; "
                        "result depends on combining order"
                    ),
                    key=f"SAN503:{kernel}:{site.key}",
                )
            )
        if order_sites:
            determinism = "order-sensitive"
        elif assumed_sites:
            determinism = "assumed"
        else:
            determinism = "commutative"
        if violations:
            status = "violations"
        elif order_sites:
            status = "order-sensitive"
        else:
            status = "certified"
        by_array: dict[str, list] = {}
        for ob in obligations:
            by_array.setdefault(ob.array, []).append(ob)
        proven_arrays = tuple(
            sorted(
                array
                for array, obs in by_array.items()
                if all(o.outcome == "proven" for o in obs)
            )
        )
        cert = KernelCertificate(
            name=kernel,
            status=status,
            determinism=determinism,
            fully_proven=(
                status == "certified"
                and bool(obligations)
                and not unproven
            ),
            proven_arrays=proven_arrays,
            obligations=obligations,
            atomics=sites,
            assumptions=tuple(assumptions_used),
        )
        return cert, findings

    # ------------------------------------------------------------------

    def prove_kernels(
        self,
        names: list | None = None,
        kernels_module: str = "repro.sanitizer.kernels",
    ) -> ProveReport:
        from repro.sanitizer.kernels import KERNEL_EXTENTS

        table = self._flow.kernel_table(kernels_module)
        info = self.index.modules.get(kernels_module)
        report = ProveReport()
        if info is None:
            return report
        selected = names if names is not None else sorted(table)
        for name in selected:
            fn_name = table.get(name)
            if fn_name is None:
                continue
            entry = self.index.get_function(kernels_module, fn_name)
            if entry is None:
                continue
            cert, findings = self.prove_entry(
                name, entry, KERNEL_EXTENTS.get(name, {})
            )
            report.certificates[name] = cert
            report.findings.extend(findings)
        for path, assumes in self._assumptions.items():
            for ln in assumes.used_lines:
                report.used_marker_lines.add((path, ln))
        report.findings.sort(key=lambda f: (f.path, f.line, f.key))
        return report


def prove_kernels(
    names: list | None = None, index: ModuleIndex | None = None
) -> ProveReport:
    """Prove every registered kernel (or ``names``) and certify."""
    return ProveAnalyzer(index).prove_kernels(names)


def prove_source(
    source: str,
    path: str = "<prove>",
    extents: dict | None = None,
    kernel: str = "<source>",
) -> ProveReport:
    """Prove the workers of a source string — the selftest/test entry.

    ``extents`` maps array/location names to extent expressions, the
    same contract as ``KERNEL_EXTENTS`` values.
    """
    info = ModuleInfo("<prove>", path, source)
    analyzer = ProveAnalyzer(ModuleIndex())
    analyzer._assumptions[info.path] = _Assumptions(source)
    extent_exprs = dict(extents or {})
    parsed: dict = {}
    facts = SymbolFacts()
    for array, expr in sorted(extent_exprs.items()):
        aff = _parse_extent(str(expr))
        parsed[array] = aff
        if aff is not None:
            for sym in aff:
                if sym:
                    facts.declare(sym, Interval(aff_const(0), None, False))
    obligations: list = []
    sites: list = []
    used: list = []
    ctor_cache: dict = {}
    assumes = analyzer._assumptions[info.path]
    for worker in _find_workers(info.tree):
        atomic_extents: dict = {}
        for node in ast.walk(worker.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.attr in _INDEXED_ATOMIC_METHODS
            ):
                recv = node.func.value.id
                if recv not in ctor_cache:
                    ctor_cache[recv] = _resolve_ctor(info, recv)
                if ctor_cache[recv] is not None and ctor_cache[recv].kind == "array":
                    atomic_extents[recv] = ctor_cache[recv]
        obligations.extend(
            _prove_worker(
                kernel, info, worker, parsed, facts, assumes,
                atomic_extents, used,
            )
        )
        sites.extend(_classify_sites(info, "<module>", worker, ctor_cache))
    cert, findings = analyzer._certify(kernel, obligations, sites, used)
    report = ProveReport()
    report.certificates[kernel] = cert
    report.findings.extend(findings)
    report.findings.sort(key=lambda f: (f.path, f.line, f.key))
    return report


# ======================================================================
# manifest
# ======================================================================


def manifest_payload(report: ProveReport) -> dict:
    """Committed-manifest JSON payload for a full prove run."""
    return {
        "schema": MANIFEST_SCHEMA,
        "version": 1,
        "kernels": {
            name: report.certificates[name].as_dict()
            for name in sorted(report.certificates)
        },
    }


def load_manifest(path: str | Path | None = None) -> dict | None:
    """The committed manifest, or None when absent/unreadable."""
    p = Path(path) if path is not None else DEFAULT_MANIFEST_PATH
    try:
        return json.loads(p.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def write_manifest(report: ProveReport, path: str | Path | None = None) -> Path:
    p = Path(path) if path is not None else DEFAULT_MANIFEST_PATH
    p.write_text(
        json.dumps(manifest_payload(report), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return p


def diff_manifest(current: dict, committed: dict | None) -> list:
    """Human-readable drift lines between a fresh payload and the
    committed manifest; empty means in sync."""
    if committed is None:
        return [
            "prove manifest missing — run "
            "`repro sanitize --prove --write-manifest` and commit it"
        ]
    drift: list = []
    if committed.get("schema") != current.get("schema"):
        drift.append(
            f"manifest schema {committed.get('schema')!r} != "
            f"{current.get('schema')!r}"
        )
    old = committed.get("kernels", {})
    new = current.get("kernels", {})
    for name in sorted(set(old) - set(new)):
        drift.append(f"kernel {name!r}: in manifest but no longer registered")
    for name in sorted(set(new) - set(old)):
        drift.append(f"kernel {name!r}: registered but missing from manifest")
    for name in sorted(set(new) & set(old)):
        a, b = old[name], new[name]
        if a == b:
            continue
        for field_name in (
            "status",
            "determinism",
            "fully_proven",
            "proven_arrays",
            "assumptions",
        ):
            if a.get(field_name) != b.get(field_name):
                drift.append(
                    f"kernel {name!r}: {field_name} "
                    f"{a.get(field_name)!r} -> {b.get(field_name)!r}"
                )
        for section in ("obligations", "atomics"):
            sa, sb = a.get(section, {}), b.get(section, {})
            for key in sorted(set(sa) - set(sb)):
                drift.append(f"kernel {name!r}: {section[:-1]} gone: {key}")
            for key in sorted(set(sb) - set(sa)):
                drift.append(f"kernel {name!r}: new {section[:-1]}: {key}")
            for key in sorted(set(sa) & set(sb)):
                if sa[key] != sb[key]:
                    drift.append(
                        f"kernel {name!r}: {section[:-1]} {key}: "
                        f"{sa[key]!r} -> {sb[key]!r}"
                    )
        if a.get("bounds") != b.get("bounds") and not any(
            d.startswith(f"kernel {name!r}") for d in drift
        ):
            drift.append(
                f"kernel {name!r}: bounds {a.get('bounds')} -> {b.get('bounds')}"
            )
    return drift


def verify_manifest(
    index: ModuleIndex | None = None, path: str | Path | None = None
) -> tuple[bool, str]:
    """Regenerate proofs and compare with the committed manifest.

    The single gate used by ``repro sanitize --prove``, ``make prove``
    and pytest ``--prove``: fails on any SAN501 or manifest drift.
    """
    report = prove_kernels(index=index)
    problems = [str(f) for f in report.errors]
    problems += diff_manifest(manifest_payload(report), load_manifest(path))
    if problems:
        return False, "; ".join(problems[:6]) + (
            f" (+{len(problems) - 6} more)" if len(problems) > 6 else ""
        )
    n = len(report.certified)
    return True, f"{n}/{len(report.certificates)} kernels certified, manifest in sync"


# ======================================================================
# seeded selftest
# ======================================================================

# A worker that provably stores one past the end of ``out`` (extent
# n): ``i`` attains ``n - 1`` so ``i + 1`` attains ``n``.  The exact
# line of the planted store is asserted by the selftest.
_OOB_SOURCE = '''\
def run_oob(pool, out, n):
    def worker(i, ctx):
        ctx.write(("out", int(i)))
        out[i + 1] = 0.0
    pool.parallel_for(range(n), worker, label="selftest:prove-oob")
'''
_OOB_LINE = 4

_OOB_FIXED_SOURCE = '''\
def run_oob_fixed(pool, out, n):
    def worker(i, ctx):
        ctx.write(("out", int(i)))
        out[i] = 0.0
    pool.parallel_for(range(n), worker, label="selftest:prove-oob")
'''

# A float fetch-add reduction: bitwise result depends on combining
# order, so the kernel must be flagged SAN503 and refused a
# determinism certificate.  The fixed variant accumulates in int64.
_FLOAT_SOURCE = '''\
def run_float(pool, values, n):
    sink = AtomicArray(4, dtype=np.float64, name="selftest_sink")
    def worker(i, ctx):
        sink.add(ctx, 0, values[i])
    pool.parallel_for(range(n), worker, label="selftest:prove-float")
'''
_FLOAT_LINE = 4

_FLOAT_FIXED_SOURCE = '''\
def run_float_fixed(pool, values, n):
    sink = AtomicArray(4, dtype=np.int64, name="selftest_sink")
    def worker(i, ctx):
        sink.add(ctx, 0, values[i])
    pool.parallel_for(range(n), worker, label="selftest:prove-float")
'''


def prove_selftest() -> tuple[bool, str]:
    """Plant an OOB store and a float reduction; the prover must catch
    both with exact line attribution and certify the fixed variants."""
    oob = prove_source(_OOB_SOURCE, path="<selftest:oob>", extents={"out": "n"})
    san501 = [f for f in oob.findings if f.code == "SAN501"]
    if len(san501) != 1:
        return False, f"expected 1 SAN501, got {len(san501)}"
    if san501[0].line != _OOB_LINE:
        return False, (
            f"SAN501 attributed to line {san501[0].line}, expected {_OOB_LINE}"
        )
    cert = oob.certificates["<source>"]
    if cert.status != "violations":
        return False, f"planted OOB certificate status {cert.status!r}"

    fixed = prove_source(
        _OOB_FIXED_SOURCE, path="<selftest:oob-fixed>", extents={"out": "n"}
    )
    fcert = fixed.certificates["<source>"]
    if fcert.status != "certified" or not fcert.fully_proven:
        return False, (
            "fixed OOB variant must certify fully proven, got "
            f"{fcert.status!r} (fully_proven={fcert.fully_proven})"
        )
    if [f for f in fixed.findings if f.code in ("SAN501", "SAN502")]:
        return False, "fixed OOB variant has residual bounds findings"

    flt = prove_source(_FLOAT_SOURCE, path="<selftest:float>")
    san503 = [f for f in flt.findings if f.code == "SAN503"]
    if len(san503) != 1:
        return False, f"expected 1 SAN503, got {len(san503)}"
    if san503[0].line != _FLOAT_LINE:
        return False, (
            f"SAN503 attributed to line {san503[0].line}, expected {_FLOAT_LINE}"
        )
    if flt.certificates["<source>"].status != "order-sensitive":
        return False, "float reduction kernel must be order-sensitive"

    ffixed = prove_source(_FLOAT_FIXED_SOURCE, path="<selftest:float-fixed>")
    fxcert = ffixed.certificates["<source>"]
    if fxcert.status != "certified" or fxcert.determinism != "commutative":
        return False, (
            "int64 reduction variant must certify commutative, got "
            f"{fxcert.status!r}/{fxcert.determinism!r}"
        )
    return True, (
        "planted OOB caught (SAN501 line "
        f"{_OOB_LINE}), float reduction caught (SAN503 line {_FLOAT_LINE}), "
        "fixed variants certified"
    )
