"""Named kernel workloads for ``repro sanitize``.

Each kernel builds a small deterministic input graph, runs one of the
repo's parallel algorithms on a fresh
:class:`~repro.parallel.scheduler.SimulatedPool` watched by a
:class:`~repro.sanitizer.detector.RaceDetector`, and reports what the
detector saw.  The ``--all-kernels`` CLI mode runs every entry; the
pytest ``--sanitize`` mode achieves the same coverage through the
ordinary test suite instead.

The graphs are intentionally small (hundreds of vertices): the
detector's verdict depends on *which* location keys overlap across
virtual threads, not on scale, and small inputs keep the gate fast
enough for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.generators import erdos_renyi, powerlaw_cluster
from repro.parallel.scheduler import SimulatedPool
from repro.parallel.observers import ObserverFanout
from repro.sanitizer.detector import RaceDetector, RaceReport
from repro.sanitizer.memcheck import MemChecker, san_empty

__all__ = [
    "KernelReport",
    "KERNELS",
    "KERNEL_EFFECTS",
    "KERNEL_EXTENTS",
    "MESSAGE_SCHEMAS",
    "run_kernel",
    "run_all_kernels",
]


@dataclass
class KernelReport:
    """Outcome of one kernel run under the detector (and memcheck)."""

    name: str
    threads: int
    races: list[RaceReport] = field(default_factory=list)
    regions: int = 0
    events: int = 0
    clock: float = 0.0
    #: SimCheck findings (uninit/OOB/overflow) when run with memcheck
    memcheck_findings: list = field(default_factory=list)
    #: NaN origins tracked by memcheck (informational, never failing)
    nan_origins: list = field(default_factory=list)
    #: memcheck barrier events skipped via a SimProve certificate
    elided: int = 0

    @property
    def clean(self) -> bool:
        return not self.races and not self.memcheck_findings


def _coreness(graph, pool: SimulatedPool) -> np.ndarray:
    from repro.core.pkc import pkc_core_decomposition

    return pkc_core_decomposition(graph, pool)


# ----------------------------------------------------------------------
# kernel bodies: fn(pool) -> None
# ----------------------------------------------------------------------


def _kernel_pkc(pool: SimulatedPool) -> None:
    graph = powerlaw_cluster(240, 3, 0.3, seed=11)
    _coreness(graph, pool)


def _kernel_phcd(pool: SimulatedPool) -> None:
    from repro.core.phcd import phcd_build_hcd

    graph = powerlaw_cluster(200, 3, 0.3, seed=7)
    coreness = _coreness(graph, pool)
    phcd_build_hcd(graph, coreness, pool, use_waitfree=True)


def _kernel_phcd_pivot(pool: SimulatedPool) -> None:
    from repro.core.phcd import phcd_build_hcd

    graph = erdos_renyi(180, 0.04, seed=3)
    coreness = _coreness(graph, pool)
    phcd_build_hcd(graph, coreness, pool, use_waitfree=False)


def _kernel_pbks(pool: SimulatedPool) -> None:
    from repro.core.phcd import phcd_build_hcd
    from repro.search.pbks import pbks_search

    graph = powerlaw_cluster(160, 3, 0.3, seed=5)
    coreness = _coreness(graph, pool)
    hcd = phcd_build_hcd(graph, coreness, pool)
    # internal_density exercises type-A contributions, clustering the
    # triangle-counting type-B path (Algorithm 5's two motif families)
    pbks_search(graph, coreness, hcd, "internal_density", pool)
    pbks_search(graph, coreness, hcd, "clustering_coefficient", pool)


def _uf_workload(pool: SimulatedPool, uf) -> None:
    graph = erdos_renyi(160, 0.05, seed=13)
    edges = [(int(u), int(v)) for u, v in graph.edges()]
    pool.parallel_for(
        edges,
        lambda e, ctx: uf.union(e[0], e[1], ctx),
        label="sanitize_uf_union",
    )
    pool.parallel_for(
        list(range(graph.num_vertices)),
        lambda v, ctx: uf.get_pivot(v, ctx),
        label="sanitize_uf_pivot",
    )


def _kernel_unionfind_pivot(pool: SimulatedPool) -> None:
    from repro.unionfind.pivot import PivotUnionFind

    _uf_workload(pool, PivotUnionFind(np.arange(160)))


def _kernel_unionfind_waitfree(pool: SimulatedPool) -> None:
    from repro.unionfind.waitfree import SimulatedWaitFreeUnionFind

    _uf_workload(
        pool, SimulatedWaitFreeUnionFind(np.arange(160), failure_rate=0.2, seed=5)
    )


def _accumulate_forest(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    parents = san_empty(n, np.int64, name="forest_parents")
    parents[0] = -1
    for i in range(1, n):
        parents[i] = int(rng.integers(0, i))
    return parents


def _kernel_accumulate(pool: SimulatedPool) -> None:
    from repro.parallel.accumulate import tree_accumulate

    parents = _accumulate_forest(300, seed=2)
    values = np.arange(300 * 3, dtype=np.float64).reshape(300, 3) * 0.5
    tree_accumulate(pool, parents, values)


def _kernel_accumulate_euler(pool: SimulatedPool) -> None:
    from repro.parallel.accumulate import tree_accumulate_euler

    parents = _accumulate_forest(300, seed=4)
    values = np.arange(300, dtype=np.float64) * 0.5
    tree_accumulate_euler(pool, parents, values)


def _kernel_vertex_rank(pool: SimulatedPool) -> None:
    from repro.core.vertex_rank import compute_vertex_rank

    graph = powerlaw_cluster(220, 3, 0.3, seed=9)
    coreness = _coreness(graph, pool)
    compute_vertex_rank(graph, coreness, pool)


def _kernel_serve_batch(pool: SimulatedPool) -> None:
    from repro.serve.executor import SnapshotExecutor
    from repro.serve.planner import QueryPlanner, normalize_request
    from repro.serve.snapshot import build_snapshot

    # the full serving execute path: snapshot build (decomposition +
    # preprocessing), batched shared passes (type A + B), per-metric
    # score folds, and the influential-index fold — all in memory
    graph = powerlaw_cluster(150, 3, 0.3, seed=21)
    snapshot = build_snapshot(graph, pool=pool, name="sanitize")
    requests = [
        {"kind": "pbks", "metric": "internal_density"},
        {"kind": "pbks", "metric": "clustering_coefficient"},
        {"kind": "densest"},
        {"kind": "best_k", "metric": "average_degree"},
        {"kind": "influential", "k": 2, "r": 2, "weights": "degree"},
    ]
    plan = QueryPlanner().plan(
        [(rid, normalize_request(req)) for rid, req in enumerate(requests)]
    )
    SnapshotExecutor(snapshot, pool).execute(plan)


def _dynamic_workload(seed: int):
    """A mutated DynamicCSR + pre-batch coreness + applied edge lists."""
    from repro.core.decomposition import core_decomposition
    from repro.dynamic.dyncsr import DynamicCSR

    graph = powerlaw_cluster(180, 3, 0.3, seed=seed)
    coreness = core_decomposition(graph).astype(np.int64)
    acsr = DynamicCSR.from_graph(graph)
    rng = np.random.default_rng(seed)
    present = {tuple(e) for e in graph.edge_array().tolist()}
    deleted = sorted(present)[:: max(1, len(present) // 8)][:12]
    inserted = []
    while len(inserted) < 12:
        u, v = sorted(rng.integers(0, 180, 2).tolist())
        if u != v and (u, v) not in present:
            present.add((u, v))
            inserted.append((u, v))
    for u, v in inserted:
        acsr.insert(u, v)
    for u, v in deleted:
        acsr.remove(u, v)
    return acsr, coreness, inserted, deleted


def _kernel_dynamic_batch(pool: SimulatedPool) -> None:
    from repro.dynamic.batch import batch_repair

    # batched parallel coreness maintenance: joint subcore collection,
    # two-phase localized peels, and the verification sweeps, for a
    # mixed insertion/deletion batch
    acsr, coreness, inserted, deleted = _dynamic_workload(seed=19)
    batch_repair(acsr, coreness, inserted=inserted, deleted=deleted, pool=pool)


def _kernel_dynamic_publish(pool: SimulatedPool) -> None:
    from repro.dynamic.maintenance import DynamicGraph
    from repro.serve.snapshot import snapshot_from_dynamic

    # the delta-publish path: batched repair through DynamicGraph, then
    # a snapshot refresh that reuses clean rows from the previous
    # version (dirty-row recount kernel included)
    graph = powerlaw_cluster(140, 3, 0.3, seed=27)
    dyn = DynamicGraph(graph)
    base = snapshot_from_dynamic(dyn, pool=pool, name="sanitize-dyn")
    edges = graph.edge_array()
    deletions = [tuple(e) for e in edges[:: max(1, len(edges) // 6)][:8].tolist()]
    insertions = [(0, 130), (1, 131), (2, 132), (3, 133)]
    dyn.apply_batch(insertions=insertions, deletions=deletions, pool=pool)
    snapshot_from_dynamic(dyn, pool=pool, name="sanitize-dyn", previous=base)


def _kernel_cluster_decompose(pool: SimulatedPool) -> None:
    from repro.cluster.cluster import SimCluster
    from repro.cluster.decomposition import distributed_core_decomposition
    from repro.cluster.shard import shard_graph

    # shared-pool mode: every SimNode aliases the sanitized pool, so
    # the detector watches each shard's local rounds of every superstep
    graph = powerlaw_cluster(200, 3, 0.3, seed=15)
    cluster = SimCluster(2, pool=pool)
    sharded = shard_graph(graph, 2, strategy="range", pool=pool)
    distributed_core_decomposition(graph, cluster, sharded)


def _kernel_cluster_serve(pool: SimulatedPool) -> None:
    import tempfile

    from repro.cluster.service import ClusterService, ClusterServiceConfig
    from repro.serve.catalog import SnapshotCatalog
    from repro.serve.service import synthetic_trace
    from repro.serve.snapshot import build_snapshot

    # the sharded serving path under a deterministic mid-run crash:
    # snapshot build, routed sub-batches on replica services, failover
    graph = powerlaw_cluster(150, 3, 0.3, seed=23)
    with tempfile.TemporaryDirectory() as root:
        catalog = SnapshotCatalog(root)
        catalog.publish(build_snapshot(graph, pool=pool, name="sanitize-cluster"))
        service = ClusterService(
            catalog,
            "sanitize-cluster",
            config=ClusterServiceConfig(num_shards=2, replicas=2),
            pool=pool,
        )
        service.crash(0, at=200.0)
        service.serve(synthetic_trace(12, seed=3))


#: Registry of named kernels; order is the ``--all-kernels`` run order.
KERNELS: dict[str, object] = {
    "pkc": _kernel_pkc,
    "phcd": _kernel_phcd,
    "phcd_pivot": _kernel_phcd_pivot,
    "pbks": _kernel_pbks,
    "accumulate": _kernel_accumulate,
    "accumulate_euler": _kernel_accumulate_euler,
    "unionfind_pivot": _kernel_unionfind_pivot,
    "unionfind_waitfree": _kernel_unionfind_waitfree,
    "vertex_rank": _kernel_vertex_rank,
    "serve_batch": _kernel_serve_batch,
    "dynamic_batch": _kernel_dynamic_batch,
    "dynamic_publish": _kernel_dynamic_publish,
    "cluster_decompose": _kernel_cluster_decompose,
    "cluster_serve": _kernel_cluster_serve,
}


#: Declared parallel effect signatures, one per registered kernel:
#: the captured containers each kernel's workers read and write plus
#: the locations they synchronize through atomics.  SimFlow
#: (``repro sanitize --flow``) infers the actual footprint from the
#: call graph and reports drift as SAN404 (undeclared effect, error)
#: / SAN405 (stale declaration, warning); update this table — or
#: baseline the drift with a reason — when a kernel's parallel
#: footprint legitimately changes.
KERNEL_EFFECTS: dict[str, dict[str, tuple[str, ...]]] = {
    "pkc": {
        "reads": ("indices", "indptr", "next_parts", "settled"),
        "writes": ("coreness", "next_parts", "pkc_core"),
        "atomics": ("degree",),
    },
    "phcd": {
        "reads": (
            "bins",
            "coreness",
            "indices",
            "indptr",
            "next_parts",
            "settled",
            "vsort",
        ),
        "writes": (
            "bins",
            "coreness",
            "hcd_parent",
            "next_parts",
            "pkc_core",
            "rank",
            "tid",
        ),
        "atomics": (
            "HL",
            "degree",
            "hcd_nodes",
            "kpc_pivot",
            "node_members",
            "tid_arr",
            "uf",
        ),
    },
    "phcd_pivot": {
        "reads": (
            "bins",
            "coreness",
            "indices",
            "indptr",
            "next_parts",
            "settled",
            "vsort",
        ),
        "writes": (
            "bins",
            "coreness",
            "hcd_parent",
            "next_parts",
            "pkc_core",
            "rank",
            "tid",
        ),
        "atomics": (
            "HL",
            "degree",
            "hcd_nodes",
            "kpc_pivot",
            "node_members",
            "tid_arr",
            "uf",
        ),
    },
    "pbks": {
        "reads": (
            "accumulated",
            "bins",
            "coreness",
            "counts",
            "indices",
            "indptr",
            "next_parts",
            "parents",
            "ranks",
            "settled",
            "tid",
            "vals",
            "vsort",
        ),
        "writes": (
            "bins",
            "coreness",
            "eq",
            "gt",
            "hcd_parent",
            "next_parts",
            "pbks_scores",
            "pkc_core",
            "pre_counts",
            "rank",
            "scores",
            "tid",
        ),
        "atomics": (
            "HL",
            "degree",
            "hcd_nodes",
            "kpc_pivot",
            "node_members",
            "out",
            "sink",
            "tid_arr",
            "uf",
        ),
    },
    "accumulate": {
        "reads": ("parents", "vals"),
        "writes": (),
        "atomics": ("sink",),
    },
    "accumulate_euler": {
        "reads": ("end", "prefix", "source", "start"),
        "writes": ("out", "prefix"),
        "atomics": (),
    },
    "unionfind_pivot": {
        "reads": (),
        "writes": (),
        "atomics": ("uf",),
    },
    "unionfind_waitfree": {
        "reads": (),
        "writes": (),
        "atomics": ("uf",),
    },
    "vertex_rank": {
        "reads": (
            "bins",
            "coreness",
            "indices",
            "indptr",
            "next_parts",
            "settled",
            "vsort",
        ),
        "writes": ("bins", "coreness", "next_parts", "pkc_core", "rank"),
        "atomics": ("HL", "degree"),
    },
    "dynamic_batch": {
        "reads": (
            "alive",
            "coreness",
            "dropped",
            "indices",
            "indptr",
            "next_parts",
            "out_parts",
            "row_len",
            "seed_parts",
            "supp",
        ),
        "writes": (
            "alive",
            "coreness",
            "dropped",
            "next_parts",
            "out_parts",
            "seed_parts",
            "supp",
        ),
        "atomics": ("visited",),
    },
    "dynamic_publish": {
        "reads": ("bins", "coreness", "indices", "indptr", "vsort"),
        "writes": (
            "bins",
            "counts_eq",
            "counts_gt",
            "eq",
            "gt",
            "hcd_parent",
            "pre_counts",
            "rank",
            "tid",
        ),
        "atomics": (
            "HL",
            "hcd_nodes",
            "kpc_pivot",
            "node_members",
            "tid_arr",
            "uf",
        ),
    },
    "cluster_decompose": {
        # the shard-local h-index rounds (cl_new/local/new_vals) plus
        # the label-propagation partitioner reachable through
        # shard_graph (labels/sizes/new_labels/part_* — flow is static,
        # so the lp path counts even when the kernel runs strategy
        # "range")
        "reads": ("indices", "indptr", "labels", "local", "sizes"),
        "writes": ("cl_new", "new_labels", "new_vals", "part_newlab"),
        "atomics": ("part_sizes",),
    },
    "cluster_serve": {
        # identical to serve_batch: the routed replica path reuses the
        # snapshot build + executor kernels; the router itself only
        # runs serial regions
        "reads": (
            "bins",
            "coreness",
            "indices",
            "indptr",
            "next_parts",
            "settled",
            "vsort",
        ),
        "writes": (
            "bins",
            "coreness",
            "eq",
            "gt",
            "hcd_parent",
            "next_parts",
            "pkc_core",
            "pre_counts",
            "rank",
            "tid",
        ),
        "atomics": (
            "HL",
            "degree",
            "hcd_nodes",
            "kpc_pivot",
            "node_members",
            "tid_arr",
            "uf",
        ),
    },
    "serve_batch": {
        "reads": (
            "bins",
            "coreness",
            "indices",
            "indptr",
            "next_parts",
            "settled",
            "vsort",
        ),
        "writes": (
            "bins",
            "coreness",
            "eq",
            "gt",
            "hcd_parent",
            "next_parts",
            "pkc_core",
            "pre_counts",
            "rank",
            "tid",
        ),
        "atomics": (
            "HL",
            "degree",
            "hcd_nodes",
            "kpc_pivot",
            "node_members",
            "tid_arr",
            "uf",
        ),
    },
}


#: Declared array extents for SimProve (SAN5xx) bounds proofs: kernel
#: name -> {array or recorded-location name -> extent expression over
#: size symbols}.  Expressions must stay affine (``"n"``, ``"n + 1"``,
#: ``"2 * m"``); anything the prover cannot parse makes every access
#: to that array fail closed to SAN502 unproven.  ``n`` is the vertex
#: count and ``m`` the (undirected) edge count, so a CSR graph has
#: ``indptr`` of extent ``n + 1`` and ``indices`` of extent ``2 * m``
#: — declaring both unlocks the CSR value facts (elements of
#: ``indices`` are vertex ids, elements of ``indptr`` are offsets
#: into ``indices``), which is what proves the paper's nested
#: ``indices[indptr[v]:indptr[v + 1]]`` traversals.  Arrays left
#: undeclared generate no obligations and no claims; AtomicArray
#: receivers need no entry (their constructors self-declare).  The
#: dynamic kernels deliberately omit the CSR pair: ``DynamicCSR``
#: rows carry slack capacity, so the static CSR facts do not hold.
_CSR_EXTENTS: dict[str, str] = {
    "indptr": "n + 1",
    "indices": "2 * m",
    "coreness": "n",
    "settled": "n",
    "pkc_core": "n",
}

KERNEL_EXTENTS: dict[str, dict[str, str]] = {
    "pkc": dict(_CSR_EXTENTS),
    "phcd": dict(_CSR_EXTENTS),
    "phcd_pivot": dict(_CSR_EXTENTS),
    "pbks": dict(_CSR_EXTENTS),
    "accumulate": {"parents": "t", "vals": "t"},
    "accumulate_euler": {
        "out": "n",
        "prefix": "n",
        "start": "n",
        "end": "n",
        "source": "n",
    },
    "unionfind_pivot": {},
    "unionfind_waitfree": {},
    "vertex_rank": dict(_CSR_EXTENTS),
    "serve_batch": dict(_CSR_EXTENTS),
    "dynamic_batch": {"coreness": "n"},
    "dynamic_publish": dict(_CSR_EXTENTS),
    "cluster_decompose": {
        "indptr": "n + 1",
        "indices": "2 * m",
        "cl_new": "n",
        "local": "n",
        "new_vals": "n",
    },
    "cluster_serve": dict(_CSR_EXTENTS),
}

#: Declared wire format of every ``Network.send`` site reachable from
#: a cluster kernel, keyed ``<module>.<function>#<ordinal>``.  SimDist
#: (SAN604/605) derives each site's byte-count expression statically
#: (``header + per_item * count``, resolving module constants through
#: the affine domain) and diffs it against this table: an undeclared
#: or contradicting site is a SAN604 error, a stale entry a SAN605
#: warning.  ``per_item_bytes`` is an int for fixed-size payloads or
#: the config attribute the size is read from; ``count`` must equal
#: the unparsed count expression at the send site; ``unit`` is
#: documentation only.
MESSAGE_SCHEMAS: dict[str, dict[str, dict]] = {
    "cluster_decompose": {
        "decomposition.exchange#1": {
            "header_bytes": 16,
            "per_item_bytes": 8,
            "count": "per_dest[dest]",
            "unit": "changed boundary estimate",
        },
    },
    "cluster_serve": {
        "service._dispatch_attempt#1": {
            "header_bytes": 0,
            "per_item_bytes": "request_bytes",
            "count": "max(sub_plan.distinct, 1)",
            "unit": "routed query",
        },
        "service._dispatch_attempt#2": {
            "header_bytes": 0,
            "per_item_bytes": "response_bytes",
            "count": "max(len(results), 1)",
            "unit": "answer",
        },
    },
}


def run_kernel(
    name: str,
    threads: int = 4,
    memcheck: bool = False,
    barrier_units: float = 0.0,
    certificate: object | None = None,
) -> KernelReport:
    """Run one named kernel under a fresh detector; returns its report.

    With ``memcheck=True`` a :class:`~repro.sanitizer.memcheck.MemChecker`
    rides along on the same pool (composed with the detector via
    :class:`~repro.parallel.observers.ObserverFanout`), so the report
    also carries memory/numeric findings and NaN origins.

    ``barrier_units`` models the sim-clock cost of one barrier
    crossing (0.0 keeps the checker cost-transparent).  ``certificate``
    is a SimProve :class:`~repro.sanitizer.prove.KernelCertificate`
    whose proven accesses skip the barrier entirely; the report's
    ``elided`` field counts the crossings saved.  Passing either
    implies a checker even without ``memcheck=True``.
    """
    try:
        body = KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(KERNELS)}"
        ) from None
    pool = SimulatedPool(threads=threads)
    detector = RaceDetector()
    checker = (
        MemChecker(barrier_units=barrier_units)
        if memcheck or barrier_units or certificate is not None
        else None
    )
    if checker is not None and certificate is not None:
        checker.apply_certificate(certificate)
    if checker is None:
        with detector.watch(pool):
            body(pool)
    else:
        pool.set_observer(ObserverFanout([detector, checker]))
        checker.activate()
        try:
            body(pool)
        finally:
            checker.deactivate()
            pool.set_observer(None)
    return KernelReport(
        name=name,
        threads=threads,
        races=list(detector.races),
        regions=detector.regions_checked,
        events=detector.events_seen,
        clock=pool.clock,
        memcheck_findings=list(checker.findings) if checker else [],
        nan_origins=list(checker.nan_origins) if checker else [],
        elided=checker.elided_events if checker else 0,
    )


def run_all_kernels(
    threads: int = 4, memcheck: bool = False
) -> list[KernelReport]:
    """Run every registered kernel; returns reports in registry order."""
    return [
        run_kernel(name, threads=threads, memcheck=memcheck)
        for name in KERNELS
    ]
