"""Distributed core decomposition over a sharded graph.

The MPM h-index fixpoint (``repro.core.distributed``) generalizes to
shard-grained supersteps: within a superstep every shard repeatedly
recomputes the h-index estimate of its *owned* frontier vertices
against a frozen snapshot of the last-exchanged ghost values, running
local rounds until the shard is quiescent; the exchange then ships
every changed boundary estimate to the shards owning a neighbor and
wakes their remote neighbors for the next superstep.  Estimates only
decrease, so this is chaotic relaxation with a fair schedule: it
terminates at the unique greatest fixpoint below the degree bound —
the coreness — and is therefore **bit-identical** to single-node
``decomposition()`` at every shard count and every per-node thread
count.  One shard degenerates to MPM run to quiescence in a single
superstep.

Message accounting: a shard sends one message per destination shard
per superstep, carrying its changed boundary estimates for that
destination (:data:`MESSAGE_HEADER_BYTES` + 8 bytes per estimate),
charged through the cluster's :class:`~repro.cluster.network.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import SimCluster
from repro.cluster.node import SimNode
from repro.cluster.shard import ShardedGraph
from repro.graph.graph import Graph

__all__ = [
    "DistributedReport",
    "distributed_core_decomposition",
    "MESSAGE_HEADER_BYTES",
    "ESTIMATE_BYTES",
    "DIST_PROTOCOL",
]

MESSAGE_HEADER_BYTES = 16
ESTIMATE_BYTES = 8

#: Declared protocol facts for SimDist (SAN6xx).  The analyzer proves
#: against the AST that: every store into the ``estimates`` arrays is
#: monotone non-increasing (SAN601), sends stay inside the exchange
#: closure and ``live`` state is frozen before each superstep (SAN602),
#: shard-parallel writes are owned-item disjoint (SAN603), and the
#: ``handler_roots`` are replay-safe (SAN606).
DIST_PROTOCOL = {
    "name": "decompose",
    "kernels": ("cluster_decompose",),
    "estimates": ("est", "committed", "local", "new_vals"),
    "live": ("est",),
    "compute_roots": ("_local_refine",),
    "send_scopes": (),
    "recovery_roots": (),
    "rebuild_calls": (),
    "handler_roots": ("exchange",),
    "metrics": (),
    "lww": (),
}


@dataclass
class DistributedReport:
    """Outcome of one distributed decomposition run."""

    coreness: np.ndarray
    supersteps: int
    local_rounds: int            # summed over shards and supersteps
    messages: int
    bytes_sent: int
    compute_clock: float
    comms_clock: float
    cluster_clock: float
    num_shards: int
    strategy: str
    edge_cut: int

    def as_dict(self) -> dict:
        return {
            "supersteps": self.supersteps,
            "local_rounds": self.local_rounds,
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "compute_clock": self.compute_clock,
            "comms_clock": self.comms_clock,
            "cluster_clock": self.cluster_clock,
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "edge_cut": self.edge_cut,
            "comms_compute_ratio": (
                self.comms_clock / self.compute_clock
                if self.compute_clock > 0
                else 0.0
            ),
        }


def _local_refine(
    node: SimNode,
    graph: Graph,
    shard_id: int,
    owner: np.ndarray,
    frontier: list[int],
    committed: np.ndarray,
    step: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Run one shard's local rounds to quiescence for one superstep.

    ``committed`` holds the globally-exchanged estimates at superstep
    start; ghost slots are read from it and never written (other
    shards' updates from this superstep are invisible — message
    passing, not shared memory).  Returns the shard's changed owned
    vertices, their new estimates, and the local round count.
    """
    indptr, indices = graph.indptr, graph.indices
    local = committed.copy()
    front = sorted(int(v) for v in frontier)
    rounds = 0
    with node.pool.phase("cluster.local"):
        while front:
            rounds += 1
            new_vals = local.copy()

            def update(v: int, ctx) -> None:
                # each frontier vertex owns its new_vals slot; local is
                # read-only inside the round (double-buffered, as in MPM)
                v = int(v)
                start = int(indptr[v])
                end = int(indptr[v + 1])
                ctx.write(("cl_new", v))
                ctx.charge(end - start + 1)
                cap = int(local[v])
                row = indices[start:end]
                vals = np.minimum(local[row], cap)
                counts = np.bincount(vals, minlength=cap + 1)
                suffix = np.cumsum(counts[::-1])[::-1]
                ok = np.flatnonzero(suffix >= np.arange(cap + 1))
                new_vals[v] = int(ok[-1]) if ok.size else 0

            node.pool.parallel_for(
                front,
                update,
                label=f"cluster:s{shard_id}:step{step}:r{rounds}",
            )
            changed = [v for v in front if new_vals[v] < local[v]]
            local = new_vals
            if not changed:
                break
            # a drop wakes the vertex and its shard-local neighbors;
            # remote neighbors wait for the exchange
            woken: set[int] = set()
            for v in changed:
                woken.add(v)
                row = indices[indptr[v] : indptr[v + 1]]
                woken.update(int(u) for u in row[owner[row] == shard_id])
            front = sorted(woken)
    changed_ids = np.flatnonzero(local != committed).astype(np.int64)
    return changed_ids, local[changed_ids], rounds


def distributed_core_decomposition(
    graph: Graph,
    cluster: SimCluster,
    sharded: ShardedGraph,
) -> DistributedReport:
    """Coreness via shard-grained MPM supersteps on a simulated cluster.

    ``cluster`` must have exactly one node per shard (node *i* owns
    shard *i*).  The returned estimates are exactly the coreness —
    the fixpoint is unique — so the result is bit-identical to
    single-node decomposition for every (shards, threads) choice.
    """
    if sharded.num_shards != cluster.num_nodes:
        raise ValueError(
            f"cluster has {cluster.num_nodes} node(s) but the graph is "
            f"sharded {sharded.num_shards}-way"
        )
    n = graph.num_vertices
    est = graph.degrees().astype(np.int64).copy()
    report = DistributedReport(
        coreness=est,
        supersteps=0,
        local_rounds=0,
        messages=0,
        bytes_sent=0,
        compute_clock=0.0,
        comms_clock=0.0,
        cluster_clock=0.0,
        num_shards=sharded.num_shards,
        strategy=sharded.strategy,
        edge_cut=sharded.edge_cut,
    )
    if n == 0:
        return report
    owner = sharded.owner
    indptr, indices = graph.indptr, graph.indices
    messages0 = cluster.network.messages
    bytes0 = cluster.network.bytes_sent
    compute0 = cluster.compute_clock
    comms0 = cluster.comms_clock
    for node in cluster.nodes[: sharded.num_shards]:
        node.shard = sharded.parts[node.node_id]

    frontiers: dict[int, list[int]] = {
        part.shard_id: part.owned.tolist() for part in sharded.parts
    }
    step = 0
    while any(frontiers.values()):
        step += 1
        committed = est.copy()
        results: dict[int, tuple[np.ndarray, np.ndarray, int]] = {}

        def make_fn(shard_id: int, frontier: list[int]):
            def run(node: SimNode) -> None:
                results[shard_id] = _local_refine(
                    node, graph, shard_id, owner, frontier, committed, step
                )

            return run

        node_fns = {
            s: make_fn(s, frontier)
            for s, frontier in frontiers.items()
            if frontier
        }

        def exchange() -> None:
            # ship changed boundary estimates shard-to-shard, then
            # commit every change and wake remote neighbors
            for s in sorted(results):
                changed_ids, _, _ = results[s]
                part = sharded.parts[s]
                per_dest: dict[int, int] = {}
                for v in changed_ids.tolist():
                    for dest in part.targets.get(int(v), ()):
                        per_dest[dest] = per_dest.get(dest, 0) + 1
                for dest in sorted(per_dest):
                    cluster.network.send(
                        s,
                        dest,
                        MESSAGE_HEADER_BYTES
                        + ESTIMATE_BYTES * per_dest[dest],
                    )
            next_front: dict[int, set[int]] = {s: set() for s in frontiers}
            for s in sorted(results):
                changed_ids, changed_vals, _ = results[s]
                est[changed_ids] = changed_vals
                for v in changed_ids.tolist():
                    row = indices[indptr[v] : indptr[v + 1]]
                    remote = row[owner[row] != s]
                    for u in remote.tolist():
                        next_front[int(owner[u])].add(int(u))
            for s in frontiers:
                frontiers[s] = sorted(next_front[s])

        cluster.superstep(f"decompose:step{step}", node_fns, exchange)
        report.local_rounds += sum(r[2] for r in results.values())

    report.coreness = est
    report.supersteps = step
    report.messages = cluster.network.messages - messages0
    report.bytes_sent = cluster.network.bytes_sent - bytes0
    report.compute_clock = cluster.compute_clock - compute0
    report.comms_clock = cluster.comms_clock - comms0
    report.cluster_clock = report.compute_clock + report.comms_clock
    return report
