"""SimCluster: a deterministic simulated multi-node substrate.

Builds the distribution layer on top of the simulated-multicore
substrate: :class:`~repro.cluster.node.SimNode` (one pool per node),
a :class:`~repro.cluster.network.Network` cost model, edge-cut
sharding with ghost lists, distributed core decomposition that is
bit-identical to the single-node pipeline, and a fault-tolerant
sharded serving router over per-node ``HCDService`` instances.
"""

from repro.cluster.cluster import BSP_BARRIER, SimCluster, SuperstepRecord
from repro.cluster.decomposition import (
    DistributedReport,
    distributed_core_decomposition,
)
from repro.cluster.network import Network, NetworkConfig, WIRE_COUNTERS
from repro.cluster.node import LWW_FIELDS, METRIC_FIELDS, SimNode
from repro.cluster.shard import (
    DIST_PARTITION,
    ShardedGraph,
    ShardPart,
    shard_graph,
)

__all__ = [
    "SimCluster",
    "SuperstepRecord",
    "SimNode",
    "Network",
    "NetworkConfig",
    "ShardedGraph",
    "ShardPart",
    "shard_graph",
    "DistributedReport",
    "distributed_core_decomposition",
    "ClusterService",
    "ClusterServiceConfig",
    "ClusterReport",
    "ClusterProfiler",
    "BSP_BARRIER",
    "WIRE_COUNTERS",
    "LWW_FIELDS",
    "METRIC_FIELDS",
    "DIST_PARTITION",
]


def __getattr__(name):  # lazy: serving pulls in the whole serve stack
    if name in ("ClusterService", "ClusterServiceConfig", "ClusterReport"):
        from repro.cluster import service

        return getattr(service, name)
    if name == "ClusterProfiler":
        from repro.cluster.profile import ClusterProfiler

        return ClusterProfiler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
