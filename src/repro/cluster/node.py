"""One simulated cluster node: an id, a pool, and a local shard."""

from __future__ import annotations

from repro.parallel.scheduler import SimulatedPool

__all__ = ["SimNode", "LWW_FIELDS", "METRIC_FIELDS"]

#: Node fields whose writes are last-writer-wins: replaying a handler
#: that sets them lands in the same state (SimDist SAN606 accepts
#: plain stores to these from failover-reachable handlers).
LWW_FIELDS = ("alive", "crash_at", "recover_at", "service", "shard")

#: Monotone event counters — replay-visible but tolerated by the
#: byte-identity contract, which compares answers, not metrics.
METRIC_FIELDS = ("crashes", "recoveries")


class SimNode:
    """A node of the simulated cluster.

    Each node computes on its own :class:`SimulatedPool` (the
    shared-memory substrate of PR 1) — the cluster layer composes the
    per-node clocks, it never reaches inside them.  For sanitizer
    kernel runs a single externally-watched pool can be aliased into
    every node (``pool=...``); nodes execute sequentially in
    simulation, so sharing is observationally equivalent.

    Fault state lives here too: ``slow_factor`` scales the node's
    compute deltas on the cluster clock, ``crash_at`` arms a
    deterministic crash once the serving clock passes it, and
    ``alive`` is flipped by the failover machinery.
    """

    def __init__(
        self,
        node_id: int,
        threads: int = 4,
        pool: SimulatedPool | None = None,
    ) -> None:
        self.node_id = int(node_id)
        self.pool = pool if pool is not None else SimulatedPool(threads=threads)
        self.shard = None          # ShardPart, set by the cluster
        self.alive = True
        self.slow_factor = 1.0
        self.crash_at: float | None = None
        self.recover_at: float | None = None
        self.service = None        # per-node HCDService (serving only)
        self.crashes = 0
        self.recoveries = 0

    def work_cursor(self) -> int:
        """Position in the pool's region log, for work-unit deltas."""
        return len(self.pool.regions)

    def work_since(self, cursor: int) -> float:
        """Work units (charges + atomics) recorded since ``cursor``.

        Work units are partition-independent, so anything measured
        through this is bit-identical across per-node thread counts.
        """
        total = 0.0
        for stats in self.pool.regions[cursor:]:
            total += stats.work_total + stats.atomic_ops
        return total

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return (
            f"SimNode(id={self.node_id}, {state}, "
            f"slow={self.slow_factor:g}, pool={self.pool!r})"
        )
