"""Edge-cut graph sharding with boundary/ghost bookkeeping.

A :class:`ShardedGraph` assigns every vertex to exactly one shard (its
*owner*) and precomputes, per shard:

* ``owned``    — the shard's vertices, ascending;
* ``boundary`` — owned vertices with at least one remote neighbor
  (their estimate updates must be shipped to other shards);
* ``ghosts``   — remote vertices adjacent to the shard (whose values
  the shard reads but never writes).

Two partitioning strategies are supported: ``"range"`` assigns
contiguous vertex-id ranges (the trivially balanced baseline) and
``"lp"`` reuses the Spinner-style
:func:`~repro.core.partition.label_propagation_partition`, which
trades balance for a smaller edge cut — the difference shows up
directly in the network counters of a distributed run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["ShardPart", "ShardedGraph", "shard_graph", "DIST_PARTITION"]

STRATEGIES = ("range", "lp")

#: Partition facts for SimDist (SAN603): which builder derives the
#: owned/ghost/boundary sets, and which array names the owner map.
#: The analyzer seeds its shard-indexed domain from these — owned rows
#: are selected by owner-equality, so owned sets are pairwise disjoint
#: and per-shard writes confined to owned slots cannot collide.
DIST_PARTITION = {
    "builder": "shard_graph",
    "owner": "owner",
    "owned": "owned",
    "boundary": "boundary",
    "ghosts": "ghosts",
}


@dataclass
class ShardPart:
    """One shard's slice of the graph."""

    shard_id: int
    owned: np.ndarray      # owned vertex ids, ascending
    boundary: np.ndarray   # owned vertices with a remote neighbor
    ghosts: np.ndarray     # remote vertices adjacent to this shard
    #: boundary vertex -> shards that own one of its neighbors
    targets: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.owned.size)


@dataclass
class ShardedGraph:
    """A graph plus an owner map and per-shard boundary structure."""

    graph: Graph
    num_shards: int
    strategy: str
    owner: np.ndarray              # vertex -> owning shard
    parts: list[ShardPart]
    edge_cut: int                  # edges with endpoints in two shards

    @property
    def cut_fraction(self) -> float:
        m = self.graph.num_edges
        return self.edge_cut / m if m else 0.0

    def part(self, shard_id: int) -> ShardPart:
        return self.parts[shard_id]

    def stats(self) -> dict:
        """JSON-ready partition quality summary."""
        return {
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "edge_cut": self.edge_cut,
            "cut_fraction": self.cut_fraction,
            "shard_sizes": [p.size for p in self.parts],
            "boundary_sizes": [int(p.boundary.size) for p in self.parts],
            "ghost_sizes": [int(p.ghosts.size) for p in self.parts],
        }


def _owner_labels(
    graph: Graph,
    num_shards: int,
    strategy: str,
    pool: SimulatedPool | None,
) -> np.ndarray:
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    n = graph.num_vertices
    if n == 0 or num_shards == 1:
        # trivial partition: everything on shard 0.  Short-circuiting
        # here keeps label propagation away from empty frontier rows
        # and saves the single-shard case its propagation rounds.
        return np.zeros(n, dtype=np.int64)
    if strategy == "range":
        return (np.arange(n, dtype=np.int64) * num_shards) // n
    from repro.core.partition import label_propagation_partition

    lp_pool = pool or SimulatedPool(threads=4)
    return label_propagation_partition(graph, num_shards, lp_pool)


def shard_graph(
    graph: Graph,
    num_shards: int,
    strategy: str = "range",
    pool: SimulatedPool | None = None,
) -> ShardedGraph:
    """Partition ``graph`` into ``num_shards`` shards with ghost lists.

    ``pool`` is only used by the ``"lp"`` strategy (the label
    propagation runs on it and its cost is charged there); the
    ``"range"`` strategy is free.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = graph.num_vertices
    owner = _owner_labels(graph, num_shards, strategy, pool)
    indptr, indices = graph.indptr, graph.indices

    # remote[v]: does v have any neighbor owned by another shard?
    neighbor_owner = owner[indices]
    remote_mask = np.zeros(n, dtype=bool)
    edge_cut = 0
    for v in range(n):
        row = neighbor_owner[indptr[v] : indptr[v + 1]]
        if row.size and bool(np.any(row != owner[v])):
            remote_mask[v] = True
            edge_cut += int(np.count_nonzero(row != owner[v]))
    edge_cut //= 2  # each cut edge seen from both endpoints

    parts: list[ShardPart] = []
    for s in range(num_shards):
        owned = np.flatnonzero(owner == s).astype(np.int64)
        boundary = owned[remote_mask[owned]]
        ghost_set: set[int] = set()
        targets: dict[int, tuple[int, ...]] = {}
        for v in boundary.tolist():
            row = indices[indptr[v] : indptr[v + 1]]
            row_owner = owner[row]
            remote = row_owner != s
            ghost_set.update(int(u) for u in row[remote])
            targets[int(v)] = tuple(sorted(set(int(t) for t in row_owner[remote])))
        ghosts = np.asarray(sorted(ghost_set), dtype=np.int64)
        parts.append(
            ShardPart(
                shard_id=s,
                owned=owned,
                boundary=boundary,
                ghosts=ghosts,
                targets=targets,
            )
        )
    return ShardedGraph(
        graph=graph,
        num_shards=num_shards,
        strategy=strategy,
        owner=owner,
        parts=parts,
        edge_cut=edge_cut,
    )
