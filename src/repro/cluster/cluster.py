"""SimCluster: nodes + network + the cluster clock-composition rule.

The cluster advances one *superstep* at a time, BSP style.  Within a
superstep every alive node runs its local compute on its own pool;
the cluster clock then advances by

    ``max over alive nodes of (node pool-clock delta * slow_factor)
      + network cost charged during the exchange``

— compute across nodes overlaps (hence the max), while the exchange
is charged through the :class:`~repro.cluster.network.Network` cost
model and serializes on the cluster clock (hence the sum).  Nodes run
sequentially inside the simulation, so superstep execution is fully
deterministic: same inputs, same per-node deltas, same clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.network import Network, NetworkConfig
from repro.cluster.node import SimNode
from repro.parallel.scheduler import SimulatedPool

__all__ = ["SuperstepRecord", "SimCluster", "BSP_BARRIER"]

#: Name of the BSP barrier method — SimDist (SAN602) anchors its phase
#: discipline on calls to this method: sends are only legal inside the
#: exchange closure passed to it, and live state read by node_fns must
#: be frozen into a snapshot before each call.
BSP_BARRIER = "superstep"


@dataclass
class SuperstepRecord:
    """Clock accounting of one superstep."""

    index: int
    label: str
    compute: float                 # max over alive nodes, slow-scaled
    comms: float                   # network cost of the exchange
    node_compute: dict[int, float] = field(default_factory=dict)
    messages: int = 0
    bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "compute": self.compute,
            "comms": self.comms,
            "node_compute": {
                str(k): v for k, v in sorted(self.node_compute.items())
            },
            "messages": self.messages,
            "bytes": self.bytes,
        }


class SimCluster:
    """A fixed set of :class:`SimNode` s joined by one :class:`Network`."""

    def __init__(
        self,
        num_nodes: int,
        threads: int = 4,
        network: NetworkConfig | None = None,
        pool: SimulatedPool | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.nodes = [
            SimNode(i, threads=threads, pool=pool) for i in range(num_nodes)
        ]
        self.network = Network(num_nodes, network)
        self.compute_clock = 0.0
        self.comms_clock = 0.0
        self.supersteps: list[SuperstepRecord] = []
        self.shared_pool = pool

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def clock(self) -> float:
        """The composed cluster clock: overlapped compute + comms."""
        return self.compute_clock + self.comms_clock

    def node(self, node_id: int) -> SimNode:
        return self.nodes[node_id]

    def alive_nodes(self) -> list[SimNode]:
        return [node for node in self.nodes if node.alive]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def slow(self, node_id: int, factor: float) -> None:
        """Scale ``node_id``'s compute deltas by ``factor`` (>= 1)."""
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1")
        self.nodes[node_id].slow_factor = float(factor)

    def crash(self, node_id: int, at: float, recover_at: float | None = None) -> None:
        """Arm a deterministic crash of ``node_id`` at clock ``at``.

        The crash fires the first time the serving clock reaches
        ``at`` while the node is being dispatched to (see
        :class:`~repro.cluster.service.ClusterService`); with
        ``recover_at`` the node later re-registers from the snapshot
        catalog and rejoins its replica set.
        """
        if recover_at is not None and recover_at < at:
            raise ValueError("recover_at must be >= the crash time")
        node = self.nodes[node_id]
        node.crash_at = float(at)
        node.recover_at = None if recover_at is None else float(recover_at)

    # ------------------------------------------------------------------
    # supersteps
    # ------------------------------------------------------------------

    def superstep(
        self,
        label: str,
        node_fns: dict[int, Callable[[SimNode], None]],
        exchange: Callable[[], None] | None = None,
    ) -> SuperstepRecord:
        """Run one BSP superstep and advance the cluster clock.

        ``node_fns`` maps node ids to that node's local compute; every
        alive node with an entry runs (in ascending node order — the
        simulation is sequential, the clock model is parallel).
        ``exchange`` then performs the boundary communication, charging
        the network via :meth:`Network.send`; its cost is read off the
        network counters.  Returns the superstep's record.
        """
        messages0 = self.network.messages
        bytes0 = self.network.bytes_sent
        cost0 = self.network.total_cost
        node_compute: dict[int, float] = {}
        for node in self.nodes:
            fn = node_fns.get(node.node_id)
            if fn is None or not node.alive:
                continue
            mark = node.pool.mark()
            fn(node)
            node_compute[node.node_id] = (
                node.pool.elapsed_since(mark) * node.slow_factor
            )
        if exchange is not None:
            exchange()
        compute = max(node_compute.values(), default=0.0)
        comms = self.network.total_cost - cost0
        record = SuperstepRecord(
            index=len(self.supersteps),
            label=label,
            compute=compute,
            comms=comms,
            node_compute=node_compute,
            messages=self.network.messages - messages0,
            bytes=self.network.bytes_sent - bytes0,
        )
        self.supersteps.append(record)
        self.compute_clock += compute
        self.comms_clock += comms
        return record

    # ------------------------------------------------------------------

    def pools(self) -> list[SimulatedPool]:
        """The distinct pools of this cluster, node order preserved."""
        seen: list[SimulatedPool] = []
        for node in self.nodes:
            if all(node.pool is not pool for pool in seen):
                seen.append(node.pool)
        return seen

    def per_node_stats(self) -> list[dict]:
        """Per-node compute totals across all supersteps (JSON-ready)."""
        totals = {node.node_id: 0.0 for node in self.nodes}
        for record in self.supersteps:
            for node_id, delta in record.node_compute.items():
                totals[node_id] += delta
        sent: dict[int, int] = {node.node_id: 0 for node in self.nodes}
        received: dict[int, int] = {node.node_id: 0 for node in self.nodes}
        for (src, dst), (count, nbytes) in self.network.links.items():
            if src in sent:
                sent[src] += nbytes
            if dst in received:
                received[dst] += nbytes
        return [
            {
                "node": node.node_id,
                "alive": node.alive,
                "slow_factor": node.slow_factor,
                "compute": totals[node.node_id],
                "bytes_sent": sent[node.node_id],
                "bytes_received": received[node.node_id],
                "pool_clock": node.pool.clock,
            }
            for node in self.nodes
        ]

    def __repr__(self) -> str:
        return (
            f"SimCluster(nodes={self.num_nodes}, "
            f"clock={self.clock:.0f}, "
            f"supersteps={len(self.supersteps)})"
        )
