"""ClusterService: a sharded, replicated, fault-tolerant serving router.

The router partitions the *query space*: each request fingerprint is
hashed to a shard, and each shard is served by ``replicas`` nodes that
all hold the same published snapshot (replication for availability,
sharding for cache affinity — a shard's replicas only ever see their
slice of the fingerprint space, so their result caches and memoized
shared passes stay hot on it).  The replay loop mirrors
:class:`~repro.serve.service.HCDService` — admit, plan, then dispatch
each shard's sub-batch to its primary replica — and advances the same
deterministic work-unit clock, with three distribution-only stages:

* **routing**: request and response messages are charged through the
  :class:`~repro.cluster.network.Network` cost model and count toward
  request latency;
* **hedging**: when a dispatch costs more than ``hedge_timeout`` work
  units and another replica is alive, the router (deterministically)
  issues a backup request after ``hedge_backoff`` and completes at
  whichever copy finishes first — the classic tail-at-scale mitigation,
  and the benchmark's tail-latency win under one slow node;
* **failover**: a node whose armed ``crash_at`` fires before or during
  a dispatch is marked dead, the in-flight work is lost, and the next
  replica answers after ``failover_penalty``; a dead node with
  ``recover_at`` set later *re-registers from the snapshot catalog*
  (a fresh :class:`HCDService` over the latest published version) and
  rejoins its replica set.

Because every replica serves the same snapshot and
:meth:`HCDService.answer` depends only on (snapshot, queries), the
router's answers are **byte-identical** to a single ``HCDService`` —
under any shard count, replica count, hedging policy, or crash
schedule that leaves each shard one live replica.  Fault times are
expressed on the router's work-unit clock, so a fault scenario replays
bit-identically at any per-node thread count.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field

from repro.cluster.cluster import SimCluster, SuperstepRecord
from repro.cluster.network import NetworkConfig
from repro.cluster.node import SimNode
from repro.errors import WorkloadError
from repro.parallel.scheduler import SimulatedPool
from repro.serve.catalog import SnapshotCatalog
from repro.serve.planner import QueryPlanner, normalize_request
from repro.serve.service import (
    RequestRecord,
    ServiceConfig,
    ServiceReport,
    HCDService,
)

__all__ = [
    "ClusterServiceConfig",
    "ClusterReport",
    "ClusterService",
    "DIST_PROTOCOL",
]

#: Declared protocol facts for SimDist (SAN6xx).  The router carries
#: no shared numeric estimates (answers come from immutable published
#: snapshots), so SAN601 is vacuous; what matters here is SAN602 —
#: sends confined to the dispatch path and recovery hooks rebuilding
#: from the snapshot catalog — and SAN606 replay safety of every
#: handler a failover can re-enter.
DIST_PROTOCOL = {
    "name": "serve",
    "kernels": ("cluster_serve",),
    "estimates": (),
    "live": (),
    "compute_roots": (),
    "send_scopes": ("_dispatch_attempt",),
    "recovery_roots": ("_do_recover",),
    "rebuild_calls": ("HCDService",),
    "handler_roots": (
        "_dispatch_attempt",
        "_dispatch_group",
        "_do_recover",
        "_maybe_recover",
    ),
    "metrics": ("failovers", "hedges", "recoveries"),
    "lww": (),
}


@dataclass(frozen=True)
class ClusterServiceConfig:
    """Topology and distribution knobs of the serving router.

    ``hedge_timeout`` is in work units; ``float("inf")`` (the default)
    disables hedging.  ``request_bytes``/``response_bytes`` size the
    routing messages per query/answer for the network charges.
    """

    num_shards: int = 2
    replicas: int = 2
    hedge_timeout: float = float("inf")
    hedge_backoff: float = 200.0
    failover_penalty: float = 500.0
    request_bytes: int = 48
    response_bytes: int = 96

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.hedge_timeout <= 0:
            raise ValueError("hedge_timeout must be > 0")


@dataclass
class ClusterReport(ServiceReport):
    """A :class:`ServiceReport` plus the distribution-side counters."""

    num_shards: int = 0
    replicas: int = 0
    failed: int = 0
    failovers: int = 0
    hedges: int = 0
    recoveries: int = 0
    cluster_clock: float = 0.0
    network: dict = field(default_factory=dict)
    per_shard: list = field(default_factory=list)

    def as_dict(self) -> dict:
        payload = super().as_dict()
        payload.update(
            {
                "num_shards": self.num_shards,
                "replicas": self.replicas,
                "failed": self.failed,
                "failovers": self.failovers,
                "hedges": self.hedges,
                "recoveries": self.recoveries,
                "cluster_clock": self.cluster_clock,
                "network": dict(self.network),
                "per_shard": list(self.per_shard),
            }
        )
        return payload


def shard_of(fingerprint: str, num_shards: int) -> int:
    """Deterministic fingerprint -> shard map (stable across runs)."""
    digest = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % num_shards


class ClusterService:
    """Route one request trace over sharded, replicated HCD services."""

    def __init__(
        self,
        catalog: SnapshotCatalog,
        name: str,
        config: ClusterServiceConfig | None = None,
        service_config: ServiceConfig | None = None,
        threads: int = 4,
        network: NetworkConfig | None = None,
        pool: SimulatedPool | None = None,
    ) -> None:
        self.catalog = catalog
        self.name = name
        self.config = config or ClusterServiceConfig()
        self.service_config = service_config or ServiceConfig()
        self.planner = QueryPlanner()
        total = self.config.num_shards * self.config.replicas
        # node ids 0..total-1 are replicas (shard-major); the extra
        # node is the router itself
        self.cluster = SimCluster(
            total + 1, threads=threads, network=network, pool=pool
        )
        self.router = self.cluster.nodes[total]
        for node in self.cluster.nodes[:total]:
            node.service = HCDService(
                catalog, name, config=self.service_config, pool=node.pool
            )
        self.failovers = 0
        self.hedges = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def replica_nodes(self, shard: int) -> list[SimNode]:
        """The replica set of ``shard``, primary first."""
        r = self.config.replicas
        return self.cluster.nodes[shard * r : (shard + 1) * r]

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------

    def crash(
        self, node_id: int, at: float, recover_at: float | None = None
    ) -> None:
        """Arm a crash of replica ``node_id`` at work-unit time ``at``."""
        if node_id >= self.cluster.num_nodes - 1:
            raise ValueError("cannot crash the router node")
        self.cluster.crash(node_id, at, recover_at)

    def slow(self, node_id: int, factor: float) -> None:
        """Scale replica ``node_id``'s dispatch costs by ``factor``."""
        self.cluster.slow(node_id, factor)

    def recover(self, node_id: int) -> None:
        """Re-register a dead node from the snapshot catalog, now."""
        self._do_recover(self.cluster.nodes[node_id])

    def _do_recover(self, node: SimNode) -> None:
        node.service = HCDService(
            self.catalog,
            self.name,
            config=self.service_config,
            pool=node.pool,
        )
        node.alive = True
        node.crash_at = None
        node.recover_at = None
        node.recoveries += 1
        self.recoveries += 1

    def _maybe_recover(self, node: SimNode, now: float) -> None:
        if not node.alive and node.recover_at is not None and now >= node.recover_at:
            self._do_recover(node)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch_attempt(
        self, node: SimNode, sub_plan
    ) -> tuple[dict, dict, float, float]:
        """Send one sub-batch to one replica; cost includes routing.

        Returns ``(results, statuses, cost, pool_delta)`` where cost is
        in work units (slow-scaled) and ``pool_delta`` is the node's
        sim-clock consumption for the cluster clock.
        """
        network = self.cluster.network
        config = self.config
        request_cost = network.send(
            self.router.node_id,
            node.node_id,
            config.request_bytes * max(sub_plan.distinct, 1),
        )
        cursor = node.work_cursor()
        pool_mark = node.pool.mark()
        results, statuses = node.service.answer(sub_plan)
        work = node.work_since(cursor) * node.slow_factor
        pool_delta = node.pool.elapsed_since(pool_mark) * node.slow_factor
        response_cost = network.send(
            node.node_id,
            self.router.node_id,
            config.response_bytes * max(len(results), 1),
        )
        return results, statuses, request_cost + work + response_cost, pool_delta

    def _dispatch_group(
        self, shard: int, sub_plan, now: float
    ) -> tuple[dict, dict, float, float, dict]:
        """Answer one shard's sub-batch with failover and hedging.

        Walks the replica set primary-first; crashed replicas cost
        ``failover_penalty`` and the next replica recomputes.  Returns
        ``(results, statuses, cost, pool_delta, events)``; an empty
        results dict with empty statuses means every replica was dead.
        """
        config = self.config
        events = {"failovers": 0, "hedges": 0, "dispatches": 0}
        cost = 0.0
        pool_delta = 0.0
        replicas = self.replica_nodes(shard)
        for index, node in enumerate(replicas):
            self._maybe_recover(node, now + cost)
            if not node.alive:
                continue  # known-dead: the router routes around it
            if node.crash_at is not None and now + cost >= node.crash_at:
                # crashed between batches: discover it at dispatch time
                node.alive = False
                node.crashes += 1
                events["failovers"] += 1
                self.failovers += 1
                cost += config.failover_penalty
                continue
            events["dispatches"] += 1
            results, statuses, attempt, delta = self._dispatch_attempt(
                node, sub_plan
            )
            pool_delta += delta
            if (
                node.crash_at is not None
                and now + cost + attempt >= node.crash_at
            ):
                # crash mid-batch: the in-flight work is lost; pay the
                # time until the crash plus the failover penalty and
                # let the next replica recompute from its own state
                lost = max(node.crash_at - (now + cost), 0.0)
                node.alive = False
                node.crashes += 1
                events["failovers"] += 1
                self.failovers += 1
                cost += lost + config.failover_penalty
                continue
            hedge_partner = next(
                (
                    peer
                    for peer in replicas[index + 1 :] + replicas[:index]
                    if peer.alive and peer is not node and peer.crash_at is None
                ),
                None,
            )
            if attempt > config.hedge_timeout and hedge_partner is not None:
                # deterministic hedging: the backup request fires at
                # the timeout and the batch completes at whichever
                # replica answers first
                h_results, h_statuses, h_attempt, h_delta = (
                    self._dispatch_attempt(hedge_partner, sub_plan)
                )
                pool_delta += h_delta
                hedged_cost = (
                    config.hedge_timeout + config.hedge_backoff + h_attempt
                )
                events["hedges"] += 1
                self.hedges += 1
                if hedged_cost < attempt:
                    cost += hedged_cost
                    return h_results, h_statuses, cost, pool_delta, events
                cost += attempt
                return results, statuses, cost, pool_delta, events
            cost += attempt
            return results, statuses, cost, pool_delta, events
        return {}, {}, cost, pool_delta, events

    # ------------------------------------------------------------------
    # the replay loop
    # ------------------------------------------------------------------

    def serve(self, trace: list[dict], refresh: bool = True) -> ClusterReport:
        """Replay a trace through the sharded router; see module docs."""
        config = self.service_config
        for node in self.cluster.nodes[:-1]:
            if refresh and node.alive and node.service is not None:
                node.service.refresh()
        reference = self.replica_nodes(0)[0].service
        pool = self.router.pool
        pending: deque[tuple[int, float, dict]] = deque()
        last_arrival = float("-inf")
        for rid, entry in enumerate(trace):
            if not isinstance(entry, dict):
                raise WorkloadError(
                    f"trace[{rid}]: entry must be an object, "
                    f"got {type(entry).__name__}"
                )
            arrival = entry.get("arrival", 0)
            if not isinstance(arrival, (int, float)) or isinstance(arrival, bool):
                raise WorkloadError(
                    f"trace[{rid}]: field 'arrival' must be a number, "
                    f"got {arrival!r}"
                )
            arrival = float(arrival)
            if arrival < last_arrival:
                raise WorkloadError(
                    f"trace[{rid}]: field 'arrival' decreased "
                    f"({arrival} after {last_arrival})"
                )
            last_arrival = arrival
            pending.append((rid, arrival, entry))

        report = ClusterReport(
            snapshot=reference.snapshot.version_id,
            threads=pool.threads,
            num_shards=self.config.num_shards,
            replicas=self.config.replicas,
        )
        shard_stats = [
            {
                "shard": s,
                "requests": 0,
                "dispatches": 0,
                "work": 0.0,
                "hedges": 0,
                "failovers": 0,
            }
            for s in range(self.config.num_shards)
        ]
        queue: deque[tuple[int, float, dict]] = deque()
        region_cursor = len(pool.regions)
        now = 0.0

        def drain() -> None:
            """Advance the clock by router-local regions (admit/plan)."""
            nonlocal now, region_cursor
            regions = pool.regions
            while region_cursor < len(regions):
                stats = regions[region_cursor]
                now += stats.work_total + stats.atomic_ops
                region_cursor += 1

        while pending or queue:
            # ---- admit (identical to the single-node service) --------
            if not queue and pending and pending[0][1] > now:
                now = pending[0][1]
            arrivals = []
            while pending and pending[0][1] <= now:
                arrivals.append(pending.popleft())
            if arrivals:
                with pool.phase("cluster.admit"):
                    with pool.serial_region("cluster:admit") as ctx:
                        ctx.charge(config.admit_cost * len(arrivals))
                for rid, arrival, entry in arrivals:
                    if len(queue) >= config.queue_capacity:
                        report.shed += 1
                        report.records.append(
                            RequestRecord(
                                rid=rid,
                                fingerprint="",
                                status="shed",
                                arrival=arrival,
                                latency=0.0,
                                batch=-1,
                            )
                        )
                    else:
                        queue.append((rid, arrival, entry))
                drain()
            if not queue:
                continue

            # ---- plan ------------------------------------------------
            batch_id = report.batches
            report.batches += 1
            taken = [
                queue.popleft()
                for _ in range(min(config.max_batch, len(queue)))
            ]
            report.admitted += len(taken)
            normalized = []
            with pool.phase("cluster.plan"):
                with pool.serial_region("cluster:plan") as ctx:
                    ctx.charge(config.plan_cost * len(taken))
            for rid, arrival, entry in taken:
                try:
                    query = normalize_request(entry, where=f"trace[{rid}]")
                except WorkloadError:
                    report.invalid += 1
                    report.records.append(
                        RequestRecord(
                            rid=rid,
                            fingerprint="",
                            status="invalid",
                            arrival=arrival,
                            latency=0.0,
                            batch=batch_id,
                        )
                    )
                    continue
                normalized.append((rid, arrival, query))
            plan = self.planner.plan([(rid, q) for rid, _, q in normalized])
            report.coalesced += plan.coalesced
            drain()

            # ---- route + dispatch (shards work in parallel) ----------
            groups: dict[int, list[str]] = {}
            for fingerprint in plan.queries:
                shard = shard_of(fingerprint, self.config.num_shards)
                groups.setdefault(shard, []).append(fingerprint)
            answers: dict[str, object] = {}
            statuses: dict[str, str] = {}
            comms0 = self.cluster.network.total_cost
            messages0 = self.cluster.network.messages
            bytes0 = self.cluster.network.bytes_sent
            group_costs: dict[int, float] = {}
            group_deltas: dict[int, float] = {}
            for shard in sorted(groups):
                fps = groups[shard]
                sub_plan = self.planner.plan(
                    [
                        (plan.requesters[fp][0], plan.queries[fp])
                        for fp in fps
                    ]
                )
                results, group_statuses, cost, pool_delta, events = (
                    self._dispatch_group(shard, sub_plan, now)
                )
                answers.update(results)
                statuses.update(group_statuses)
                group_costs[shard] = cost
                group_deltas[shard] = pool_delta
                stats = shard_stats[shard]
                stats["requests"] += len(fps)
                stats["dispatches"] += events["dispatches"]
                stats["work"] += cost
                stats["hedges"] += events["hedges"]
                stats["failovers"] += events["failovers"]
            # shard groups run concurrently on different nodes: the
            # batch completes when the slowest group does (the same
            # max-compose rule as the decomposition supersteps)
            batch_cost = max(group_costs.values(), default=0.0)
            now += batch_cost
            self.cluster.compute_clock += max(
                group_deltas.values(), default=0.0
            )
            self.cluster.supersteps.append(
                SuperstepRecord(
                    index=len(self.cluster.supersteps),
                    label=f"serve:batch{batch_id}",
                    compute=max(group_deltas.values(), default=0.0),
                    comms=self.cluster.network.total_cost - comms0,
                    node_compute=group_deltas,
                    messages=self.cluster.network.messages - messages0,
                    bytes=self.cluster.network.bytes_sent - bytes0,
                )
            )

            # ---- complete --------------------------------------------
            completion = now
            leaders = {fp: rids[0] for fp, rids in plan.requesters.items()}
            for rid, arrival, query in normalized:
                fingerprint = query.fingerprint
                if fingerprint not in answers:
                    status = "failed"
                    report.failed += 1
                elif leaders.get(fingerprint) != rid:
                    status = "shared"
                    report.shared += 1
                elif statuses.get(fingerprint) == "hit":
                    status = "hit"
                    report.hits += 1
                else:
                    status = "ok"
                    report.computed += 1
                if fingerprint in answers:
                    report.results[rid] = answers[fingerprint]
                report.records.append(
                    RequestRecord(
                        rid=rid,
                        fingerprint=fingerprint,
                        status=status,
                        arrival=arrival,
                        latency=(
                            completion - arrival
                            if fingerprint in answers
                            else 0.0
                        ),
                        batch=batch_id,
                    )
                )

        report.records.sort(key=lambda r: r.rid)
        report.work_units = now
        report.sim_clock = self.router.pool.clock
        report.failovers = self.failovers
        report.hedges = self.hedges
        report.recoveries = self.recoveries
        # comms_clock accrued inside the network counters; fold the
        # serving traffic into the cluster clock
        self.cluster.comms_clock = self.cluster.network.total_cost
        report.cluster_clock = self.cluster.clock
        report.network = self.cluster.network.stats()
        report.per_shard = shard_stats
        # cache counters summed over every replica (hit_rate recomputed)
        totals = {"hits": 0, "misses": 0, "evictions": 0, "puts": 0, "size": 0, "capacity": 0}
        for node in self.cluster.nodes[:-1]:
            if node.service is None:
                continue
            stats = node.service.cache.stats()
            for key in totals:
                totals[key] += getattr(stats, key)
        probes = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / probes if probes else 0.0
        report.cache = totals
        return report
