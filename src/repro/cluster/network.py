"""The simulated interconnect: a deterministic network cost model.

Every message between two nodes is charged

    ``latency * hops(src, dst) + nbytes * byte_cost``

in the same simulated work units the pools charge, so communication
and computation compose on one cluster clock (see
:class:`~repro.cluster.cluster.SimCluster`).  ``hops`` depends on the
configured topology:

* ``"switch"`` — every pair of distinct nodes is one hop apart (a
  non-blocking crossbar; the common datacenter abstraction);
* ``"ring"`` — nodes sit on a cycle and a message pays the shorter
  ring distance, which makes partition locality measurable.

Sends where ``src == dst`` are local handoffs: free and not counted.
The network keeps per-link message/byte counters so benchmarks can
report the comms/compute ratio and per-shard traffic; like the pools,
it is purely deterministic — same sends, same totals, bit for bit.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

__all__ = ["NetworkConfig", "Network", "WIRE_COUNTERS"]

_TOPOLOGIES = ("switch", "ring")

#: The only fields the wire-accounting path (send/cost/reset) may
#: write.  SimDist (SAN604) proves nothing else is mutated there, so
#: charging a message can never perturb protocol state.
WIRE_COUNTERS = ("messages", "bytes_sent", "total_cost", "links")


@dataclass(frozen=True)
class NetworkConfig:
    """Tunable charges of the interconnect.

    The defaults make one message cost roughly one short parallel
    region (latency 500 work units) with bandwidth at 8 bytes per
    work unit — deliberately expensive enough that a partitioning
    with a large edge cut shows up in the cluster clock.
    """

    latency: float = 500.0
    byte_cost: float = 0.125
    topology: str = "switch"

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.byte_cost < 0:
            raise ValueError("byte_cost must be >= 0")
        if self.topology not in _TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {_TOPOLOGIES}"
            )


class Network:
    """Message charges and counters between ``num_nodes`` endpoints."""

    def __init__(
        self, num_nodes: int, config: NetworkConfig | None = None
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = int(num_nodes)
        self.config = config or NetworkConfig()
        self.messages = 0
        self.bytes_sent = 0
        self.total_cost = 0.0
        #: (src, dst) -> [messages, bytes]
        self.links: dict[tuple[int, int], list[int]] = {}

    def _check_endpoint(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"endpoint {node} out of range [0, {self.num_nodes})"
            )
        return node

    def hops(self, src: int, dst: int) -> int:
        """Link distance between two endpoints under the topology."""
        src = self._check_endpoint(src)
        dst = self._check_endpoint(dst)
        if src == dst:
            return 0
        if self.config.topology == "switch":
            return 1
        around = abs(src - dst)
        return min(around, self.num_nodes - around)

    def _check_nbytes(self, src: int, dst: int, nbytes: int) -> int:
        """Validate a message size, naming the offending site."""
        if isinstance(nbytes, bool):
            raise ValueError(
                f"message {int(src)}->{int(dst)}: nbytes must be an "
                f"int, got bool ({nbytes!r})"
            )
        try:
            nbytes = operator.index(nbytes)
        except TypeError:
            raise ValueError(
                f"message {int(src)}->{int(dst)}: nbytes must be an "
                f"int, got {type(nbytes).__name__} ({nbytes!r})"
            ) from None
        if nbytes < 0:
            raise ValueError(
                f"message {int(src)}->{int(dst)}: nbytes must be "
                f">= 0, got {nbytes}"
            )
        return nbytes

    def cost(self, src: int, dst: int, nbytes: int) -> float:
        """Charge for one message, without sending it."""
        nbytes = self._check_nbytes(src, dst, nbytes)
        hops = self.hops(src, dst)
        if hops == 0:
            return 0.0
        return self.config.latency * hops + nbytes * self.config.byte_cost

    def send(self, src: int, dst: int, nbytes: int) -> float:
        """Charge and count one ``src -> dst`` message of ``nbytes``.

        Returns the charged cost.  Local sends (``src == dst``) are
        free and uncounted — shared-memory handoff, not a message.
        """
        nbytes = self._check_nbytes(src, dst, nbytes)
        charged = self.cost(src, dst, nbytes)
        if src == dst:
            return 0.0
        self.messages += 1
        self.bytes_sent += nbytes
        self.total_cost += charged
        link = self.links.setdefault((int(src), int(dst)), [0, 0])
        link[0] += 1
        link[1] += nbytes
        return charged

    def reset(self) -> None:
        """Zero every counter (the configuration is kept)."""
        self.messages = 0
        self.bytes_sent = 0
        self.total_cost = 0.0
        self.links.clear()

    def stats(self) -> dict:
        """JSON-ready counter snapshot."""
        return {
            "topology": self.config.topology,
            "latency": self.config.latency,
            "byte_cost": self.config.byte_cost,
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "cost": self.total_cost,
            "links": {
                f"{src}->{dst}": {"messages": link[0], "bytes": link[1]}
                for (src, dst), link in sorted(self.links.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"Network(nodes={self.num_nodes}, "
            f"topology={self.config.topology!r}, "
            f"messages={self.messages}, bytes={self.bytes_sent})"
        )
