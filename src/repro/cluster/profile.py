"""SimProf for SimCluster runs: per-node process lanes, shard breakdown.

A :class:`ClusterProfiler` attaches one read-only
:class:`~repro.profiler.tracer.SpanTracer` to every distinct pool of a
:class:`~repro.cluster.cluster.SimCluster` (shared-pool clusters get a
single tracer) for the duration of a ``with`` block.  Afterwards it
exports:

* :meth:`ClusterProfiler.chrome_trace` — one merged Chrome
  ``trace_event`` JSON where **each node is its own process lane**
  (``pid`` = node id) with its vthread tracks underneath, so a
  4-node × 4-thread run shows 4 × (1 + 4) tracks in Perfetto;
* :meth:`ClusterProfiler.report` — the cluster ``profile.json``:
  per-node SimProf phase aggregates plus the distribution-side facts
  a single-pool profile cannot show — per-shard work, the superstep
  ledger (compute vs comms per step), and the network counters.

Tracers observe, never charge: attaching a profiler changes the
cluster clock by **exactly 0.0** (asserted in the tests — the
zero-perturbation bar of the profiler subsystem).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster.cluster import SimCluster
from repro.profiler.export import chrome_trace
from repro.profiler.report import profile_report
from repro.profiler.tracer import SpanTracer

__all__ = ["ClusterProfiler", "cluster_write_artifacts"]


class ClusterProfiler:
    """Trace every pool of a cluster; export merged artifacts.

    Use as a context manager around the traced work::

        with ClusterProfiler(cluster) as prof:
            distributed_core_decomposition(graph, cluster, sharded)
        artifacts = prof.write_artifacts("out/")
    """

    def __init__(self, cluster: SimCluster) -> None:
        self.cluster = cluster
        # one tracer per distinct pool; nodes sharing a pool share it
        self._pools = cluster.pools()
        self.tracers = [SpanTracer() for _ in self._pools]

    def _nodes_of(self, pool) -> list[int]:
        return [
            node.node_id
            for node in self.cluster.nodes
            if node.pool is pool
        ]

    def __enter__(self) -> "ClusterProfiler":
        for pool, tracer in zip(self._pools, self.tracers):
            tracer.attach(pool)
        return self

    def __exit__(self, *exc) -> bool:
        for tracer in self.tracers:
            tracer.detach()
        return False

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------

    def _lane_name(self, pool) -> str:
        node_ids = self._nodes_of(pool)
        if len(node_ids) == 1:
            return f"node {node_ids[0]}"
        ids = ",".join(str(i) for i in node_ids)
        return f"nodes {ids} (shared pool)"

    def chrome_trace(self) -> dict:
        """Merged Chrome trace: one process lane per node (pid = id)."""
        events: list[dict] = []
        for pool, tracer in zip(self._pools, self.tracers):
            node_ids = self._nodes_of(pool)
            pid = node_ids[0] if node_ids else 0
            sub = chrome_trace(
                tracer, pool, pid=pid, process_name=self._lane_name(pool)
            )
            events.extend(sub["traceEvents"])
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tracer": "SimProf/cluster",
                "nodes": self.cluster.num_nodes,
                "cluster_clock": self.cluster.clock,
                "compute_clock": self.cluster.compute_clock,
                "comms_clock": self.cluster.comms_clock,
            },
        }

    def report(self) -> dict:
        """The cluster ``profile.json``: per-node profiles + comms facts."""
        per_node_stats = self.cluster.per_node_stats()
        profiles = []
        for pool, tracer in zip(self._pools, self.tracers):
            profiles.append(
                {
                    "nodes": self._nodes_of(pool),
                    "profile": profile_report(tracer, pool),
                }
            )
        per_shard = [
            {
                "node": stats["node"],
                "compute": stats["compute"],
                "bytes_sent": stats["bytes_sent"],
                "bytes_received": stats["bytes_received"],
            }
            for stats in per_node_stats
        ]
        return {
            "cluster": {
                "nodes": self.cluster.num_nodes,
                "cluster_clock": self.cluster.clock,
                "compute_clock": self.cluster.compute_clock,
                "comms_clock": self.cluster.comms_clock,
            },
            "per_node": per_node_stats,
            "per_shard": per_shard,
            "supersteps": [r.as_dict() for r in self.cluster.supersteps],
            "network": self.cluster.network.stats(),
            "node_profiles": profiles,
        }

    def write_artifacts(
        self, out_dir: str | Path, prefix: str = "cluster_"
    ) -> dict[str, Path]:
        """Write ``cluster_profile.json`` + ``cluster_trace.json``."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = {
            "profile": out / f"{prefix}profile.json",
            "trace": out / f"{prefix}trace.json",
        }
        paths["profile"].write_text(
            json.dumps(self.report(), indent=2) + "\n", encoding="utf-8"
        )
        paths["trace"].write_text(
            json.dumps(self.chrome_trace()) + "\n", encoding="utf-8"
        )
        return paths


def cluster_write_artifacts(
    profiler: ClusterProfiler, out_dir: str | Path, prefix: str = "cluster_"
) -> dict[str, Path]:
    """Functional alias of :meth:`ClusterProfiler.write_artifacts`."""
    return profiler.write_artifacts(out_dir, prefix=prefix)
