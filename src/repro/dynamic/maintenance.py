"""Incremental coreness maintenance under edge insertions/deletions.

The paper's related work (Lin et al., PVLDB'21; Sariyüce et al.,
PVLDB'13) maintains the core hierarchy on dynamic graphs.  This module
implements the classical *traversal* maintenance of the coreness array:

* **insertion** of ``{u, v}``: only vertices with coreness
  ``k = min(c(u), c(v))`` inside the k-*subcore* reachable from the
  lower endpoint can gain (at most) one level.  The candidate set is
  collected by a BFS over coreness-``k`` vertices whose *core degree*
  (neighbors usable at level ``k+1``) exceeds ``k``; a localized
  peeling then evicts candidates that cannot sustain degree ``k+1``,
  and the survivors are promoted.
* **deletion**: only vertices in the k-subcore of the endpoints can
  lose (at most) one level; a localized peeling demotes exactly those
  whose support collapses.

:class:`DynamicGraph` wraps an edge set with these updates and rebuilds
the HCD lazily — full dynamic *hierarchy* maintenance (the paper's
[15]) is out of scope, but because coreness stays incrementally
correct, the rebuild runs PHCD on a ready decomposition.

Correctness is checked property-style in the test suite against full
recomputation after random update sequences.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import core_decomposition
from repro.core.hcd import HCD
from repro.core.phcd import phcd_build_hcd
from repro.errors import GraphBuildError
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """A mutable graph maintaining coreness across edge updates.

    Parameters
    ----------
    graph:
        Initial graph (its coreness is computed once, up front).
    """

    def __init__(self, graph: Graph) -> None:
        self._n = graph.num_vertices
        self._adj: list[set[int]] = [
            set(int(u) for u in graph.neighbors(v)) for v in range(self._n)
        ]
        self._coreness = core_decomposition(graph).astype(np.int64)
        self._m = graph.num_edges
        self._hcd_cache: HCD | None = None
        self._mutations = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    @property
    def mutation_count(self) -> int:
        """Edge mutations applied since construction (snapshot lineage)."""
        return self._mutations

    @property
    def coreness(self) -> np.ndarray:
        """The maintained coreness array (read-only view)."""
        view = self._coreness.view()
        view.setflags(write=False)
        return view

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def to_graph(self) -> Graph:
        """Materialize the current edge set as an immutable Graph."""
        edges = [
            (u, v) for u in range(self._n) for v in self._adj[u] if u < v
        ]
        return Graph.from_edges(edges, num_vertices=self._n)

    def hcd(self, threads: int = 1) -> HCD:
        """The hierarchy for the current edge set.

        Rebuilt with PHCD from the (incrementally correct) coreness and
        cached until the next update invalidates it — full dynamic
        hierarchy maintenance (the paper's [15]) is out of scope, but
        repeated queries between updates pay construction only once.
        """
        if self._hcd_cache is None:
            graph = self.to_graph()
            pool = SimulatedPool(threads=threads)
            self._hcd_cache = phcd_build_hcd(graph, self._coreness, pool)
        return self._hcd_cache

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> None:
        """Add ``{u, v}`` and repair coreness (traversal insertion)."""
        u, v = int(u), int(v)
        self._check_endpoints(u, v)
        if v in self._adj[u]:
            raise GraphBuildError(f"edge ({u}, {v}) already present")
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        self._hcd_cache = None
        self._mutations += 1

        c = self._coreness
        k = int(min(c[u], c[v]))
        root = u if c[u] <= c[v] else v
        # Candidates: the k-subcore around the root — coreness-k
        # vertices reachable through coreness-k vertices, starting at
        # the lower endpoint (only they can rise to k+1).
        candidates = self._subcore(root, k)
        self._promote(candidates, k)

    def delete_edge(self, u: int, v: int) -> None:
        """Remove ``{u, v}`` and repair coreness (traversal deletion)."""
        u, v = int(u), int(v)
        self._check_endpoints(u, v)
        if v not in self._adj[u]:
            raise GraphBuildError(f"edge ({u}, {v}) not present")
        self._adj[u].remove(v)
        self._adj[v].remove(u)
        self._m -= 1
        self._hcd_cache = None
        self._mutations += 1

        c = self._coreness
        k = int(min(c[u], c[v]))
        # Both endpoints' k-subcores may lose support.
        affected: set[int] = set()
        for x in (u, v):
            if c[x] == k:
                affected |= self._subcore(x, k)
        self._demote(affected, k)

    def insert_edges(self, edges) -> int:
        """Insert a batch of edges (duplicates skipped); returns count."""
        applied = 0
        for u, v in edges:
            if not self.has_edge(int(u), int(v)) and int(u) != int(v):
                self.insert_edge(int(u), int(v))
                applied += 1
        return applied

    def delete_edges(self, edges) -> int:
        """Delete a batch of edges (absent ones skipped); returns count."""
        applied = 0
        for u, v in edges:
            if self.has_edge(int(u), int(v)):
                self.delete_edge(int(u), int(v))
                applied += 1
        return applied

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _check_endpoints(self, u: int, v: int) -> None:
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphBuildError(f"endpoint out of range: ({u}, {v})")
        if u == v:
            raise GraphBuildError("self-loops are not allowed")

    def _subcore(self, root: int, k: int) -> set[int]:
        """Coreness-k vertices reachable from root via coreness-k paths
        (hopping over neighbors with higher coreness is allowed, since
        the k-subcore is connected inside the k-core)."""
        c = self._coreness
        if c[root] != k:
            return set()
        seen = {root}
        stack = [root]
        while stack:
            x = stack.pop()
            for y in self._adj[x]:
                if c[y] == k and y not in seen:
                    seen.add(y)
                    stack.append(y)
                elif c[y] > k:
                    # traverse through the higher core: its vertices
                    # connect k-subcore fragments of the same k-core
                    for z in self._bridge_expand(y, k, seen):
                        stack.append(z)
        return seen

    def _bridge_expand(self, start: int, k: int, seen: set[int]) -> list[int]:
        """Walk the > k region from ``start``; return newly reached
        coreness-k vertices (marked in ``seen``)."""
        c = self._coreness
        out: list[int] = []
        visited_high = {start}
        stack = [start]
        while stack:
            x = stack.pop()
            for y in self._adj[x]:
                if c[y] == k and y not in seen:
                    seen.add(y)
                    out.append(y)
                elif c[y] > k and y not in visited_high:
                    visited_high.add(y)
                    stack.append(y)
        return out

    def _promote(self, candidates: set[int], k: int) -> None:
        """Localized peeling at level k+1 over the candidate set.

        A candidate survives if it keeps > k neighbors among
        (surviving candidates) union (vertices of coreness > k).
        Survivors' coreness becomes k + 1.
        """
        c = self._coreness
        alive = set(candidates)
        changed = True
        while changed:
            changed = False
            for x in list(alive):
                support = sum(
                    1
                    for y in self._adj[x]
                    if (y in alive) or c[y] > k
                )
                if support <= k:
                    alive.remove(x)
                    changed = True
        for x in alive:
            c[x] = k + 1

    def _demote(self, affected: set[int], k: int) -> None:
        """Localized peeling at level k over the affected set.

        A vertex keeps coreness k only while it has >= k neighbors of
        effective level >= k; evicted vertices drop to k - 1 (coreness
        falls by at most one per deletion).
        """
        c = self._coreness
        alive = set(affected)
        dropped: set[int] = set()
        changed = True
        while changed:
            changed = False
            for x in list(alive):
                support = sum(
                    1
                    for y in self._adj[x]
                    if (c[y] > k) or (c[y] == k and y not in dropped)
                )
                if support < k:
                    alive.remove(x)
                    dropped.add(x)
                    changed = True
        for x in dropped:
            c[x] = k - 1
