"""Incremental coreness maintenance under edge insertions/deletions.

The paper's related work (Lin et al., PVLDB'21; Sariyüce et al.,
PVLDB'13) maintains the core hierarchy on dynamic graphs.  This module
implements the classical *traversal* maintenance of the coreness array:

* **insertion** of ``{u, v}``: only vertices with coreness
  ``k = min(c(u), c(v))`` inside the k-*subcore* reachable from the
  lower endpoint can gain (at most) one level.  The candidate set is
  collected by a BFS over coreness-``k`` vertices whose *core degree*
  (neighbors usable at level ``k+1``) exceeds ``k``; a localized
  peeling then evicts candidates that cannot sustain degree ``k+1``,
  and the survivors are promoted.
* **deletion**: only vertices in the k-subcore of the endpoints can
  lose (at most) one level; a localized peeling demotes exactly those
  whose support collapses.

Batches go through :meth:`DynamicGraph.apply_batch` instead, which
applies every structural mutation first and then runs the level-grouped
**parallel** repair of :mod:`repro.dynamic.batch` — the joint subcore
of each affected level is collected once for the whole batch rather
than once per edge.

The adjacency is a slack-capacity :class:`~repro.dynamic.dyncsr.DynamicCSR`
(sorted rows over a shared buffer), so :meth:`DynamicGraph.to_graph`
is a vectorized gather rather than an O(n + m) Python loop.

:class:`DynamicGraph` rebuilds the HCD lazily — full dynamic
*hierarchy* maintenance (the paper's [15]) is out of scope, but because
coreness stays incrementally correct, the rebuild runs PHCD on a ready
decomposition.  For delta snapshotting
(:func:`repro.serve.snapshot.snapshot_from_dynamic` with
``previous=``), the graph tracks which vertices had their adjacency or
coreness touched since the last :meth:`clear_dirty`.

Correctness is checked property-style in the test suite against full
recomputation after random update sequences.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import core_decomposition
from repro.core.hcd import HCD
from repro.core.phcd import phcd_build_hcd
from repro.dynamic.batch import BatchUpdateReport, batch_repair, normalize_batch
from repro.dynamic.dyncsr import DynamicCSR
from repro.errors import GraphBuildError
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """A mutable graph maintaining coreness across edge updates.

    Parameters
    ----------
    graph:
        Initial graph (its coreness is computed once, up front).
    """

    def __init__(self, graph: Graph) -> None:
        self._n = graph.num_vertices
        self._acsr = DynamicCSR.from_graph(graph)
        self._coreness = core_decomposition(graph).astype(np.int64)
        self._hcd_cache: HCD | None = None
        self._mutations = 0
        self._dirty_adj: set[int] = set()
        self._dirty_core: set[int] = set()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._acsr.num_edges

    @property
    def mutation_count(self) -> int:
        """Edge mutations applied since construction (snapshot lineage)."""
        return self._mutations

    @property
    def coreness(self) -> np.ndarray:
        """The maintained coreness array (read-only view)."""
        view = self._coreness.view()
        view.setflags(write=False)
        return view

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` is present.

        Endpoints are validated: out-of-range vertices — including
        negative ids, which a raw Python container would silently wrap
        onto the tail of the vertex array — raise
        :class:`~repro.errors.GraphBuildError`.  ``has_edge(u, u)`` is
        ``False`` (self-loops cannot exist).
        """
        u, v = int(u), int(v)
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphBuildError(
                f"endpoint out of range: ({u}, {v}) for {self._n} vertices"
            )
        if u == v:
            return False
        return self._acsr.has(u, v)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor row of ``v`` (read-only view)."""
        return self._acsr.neighbors(int(v))

    def to_graph(self) -> Graph:
        """Materialize the current edge set as an immutable Graph.

        A vectorized gather out of the dynamic CSR — no per-edge
        Python loop, and no re-validation (rows are kept sorted and
        deduplicated by construction).
        """
        return self._acsr.to_csr()

    def hcd(self, threads: int = 1) -> HCD:
        """The hierarchy for the current edge set.

        Rebuilt with PHCD from the (incrementally correct) coreness and
        cached until the next update invalidates it — full dynamic
        hierarchy maintenance (the paper's [15]) is out of scope, but
        repeated queries between updates pay construction only once.
        """
        if self._hcd_cache is None:
            graph = self.to_graph()
            pool = SimulatedPool(threads=threads)
            self._hcd_cache = phcd_build_hcd(graph, self._coreness, pool)
        return self._hcd_cache

    # ------------------------------------------------------------------
    # dirty tracking (delta snapshots)
    # ------------------------------------------------------------------

    @property
    def dirty_adjacency(self) -> frozenset[int]:
        """Vertices whose rows changed since :meth:`clear_dirty`."""
        return frozenset(self._dirty_adj)

    @property
    def dirty_coreness(self) -> frozenset[int]:
        """Vertices whose coreness changed since :meth:`clear_dirty`."""
        return frozenset(self._dirty_core)

    def clear_dirty(self) -> None:
        """Reset dirty tracking (called after a snapshot consumes it)."""
        self._dirty_adj.clear()
        self._dirty_core.clear()

    # ------------------------------------------------------------------
    # single-edge updates
    # ------------------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> None:
        """Add ``{u, v}`` and repair coreness (traversal insertion)."""
        u, v = int(u), int(v)
        self._check_endpoints(u, v)
        if self._acsr.has(u, v):
            raise GraphBuildError(f"edge ({u}, {v}) already present")
        self._acsr.insert(u, v)
        self._note_mutation(u, v)

        c = self._coreness
        k = int(min(c[u], c[v]))
        root = u if c[u] <= c[v] else v
        # Candidates: the k-subcore around the root — coreness-k
        # vertices reachable through coreness-k vertices, starting at
        # the lower endpoint (only they can rise to k+1).
        candidates = self._subcore(root, k)
        self._promote(candidates, k)

    def delete_edge(self, u: int, v: int) -> None:
        """Remove ``{u, v}`` and repair coreness (traversal deletion)."""
        u, v = int(u), int(v)
        self._check_endpoints(u, v)
        if not self._acsr.has(u, v):
            raise GraphBuildError(f"edge ({u}, {v}) not present")
        self._acsr.remove(u, v)
        self._note_mutation(u, v)

        c = self._coreness
        k = int(min(c[u], c[v]))
        # Both endpoints' k-subcores may lose support.
        affected: set[int] = set()
        for x in (u, v):
            if c[x] == k:
                affected |= self._subcore(x, k)
        self._demote(affected, k)

    # ------------------------------------------------------------------
    # batch updates
    # ------------------------------------------------------------------

    def insert_edges(self, edges) -> BatchUpdateReport:
        """Insert a batch of edges through per-edge repair.

        The whole batch is validated **before** anything is applied —
        a bad endpoint raises with the graph untouched (the old
        behavior left every earlier mutation applied).  Skip policy:
        self-loops, within-batch duplicates (including reversed
        ``(v, u)`` repeats), and already-present edges are skipped and
        reported, never silently dropped.
        """
        canonical, skipped = normalize_batch(edges, self._n, where="insert_edges")
        report = BatchUpdateReport(skipped=skipped)
        for u, v in canonical:
            if self._acsr.has(u, v):
                report.skipped.append((u, v, "present"))
                continue
            before = self._dirty_core_mark()
            self.insert_edge(u, v)
            report.applied_insertions.append((u, v))
            report.changed += self._dirty_core_delta(before)
        return report

    def delete_edges(self, edges) -> BatchUpdateReport:
        """Delete a batch of edges through per-edge repair.

        Validation and reporting mirror :meth:`insert_edges`; absent
        edges are skipped with reason ``"absent"``.
        """
        canonical, skipped = normalize_batch(edges, self._n, where="delete_edges")
        report = BatchUpdateReport(skipped=skipped)
        for u, v in canonical:
            if not self._acsr.has(u, v):
                report.skipped.append((u, v, "absent"))
                continue
            before = self._dirty_core_mark()
            self.delete_edge(u, v)
            report.applied_deletions.append((u, v))
            report.changed += self._dirty_core_delta(before)
        return report

    def apply_batch(
        self,
        insertions=(),
        deletions=(),
        pool: SimulatedPool | None = None,
        threads: int = 1,
    ) -> BatchUpdateReport:
        """Apply a batch of updates with level-grouped parallel repair.

        Both lists are validated up front (atomicity: a bad endpoint
        raises before any mutation); insertions are applied first, then
        deletions, then one :func:`~repro.dynamic.batch.batch_repair`
        pass repairs coreness for the whole batch at once.  The repair
        runs as ``parallel_for`` kernels on ``pool`` (or a fresh
        ``threads``-wide pool) and is bit-identical to per-edge
        maintenance at any thread count.

        Skip policy matches :meth:`insert_edges` / :meth:`delete_edges`:
        self-loops, duplicates, already-present insertions, and absent
        deletions are reported in ``skipped``.
        """
        ins, skipped_i = normalize_batch(insertions, self._n, where="insertions")
        dels, skipped_d = normalize_batch(deletions, self._n, where="deletions")
        report = BatchUpdateReport(skipped=skipped_i + skipped_d)
        for u, v in ins:
            if self._acsr.has(u, v):
                report.skipped.append((u, v, "present"))
            else:
                self._acsr.insert(u, v)
                report.applied_insertions.append((u, v))
        for u, v in dels:
            if not self._acsr.has(u, v):
                report.skipped.append((u, v, "absent"))
            else:
                self._acsr.remove(u, v)
                report.applied_deletions.append((u, v))
        if not report.applied:
            return report
        for u, v in report.applied_insertions + report.applied_deletions:
            self._note_mutation(u, v)
        if pool is None:
            pool = SimulatedPool(threads=threads)
        with pool.phase("dynamic.batch"):
            changed, rounds = batch_repair(
                self._acsr,
                self._coreness,
                inserted=report.applied_insertions,
                deleted=report.applied_deletions,
                pool=pool,
            )
        self._dirty_core.update(changed)
        report.changed = len(changed)
        report.rounds = rounds
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _note_mutation(self, u: int, v: int) -> None:
        self._m_invalidate()
        self._mutations += 1
        self._dirty_adj.update((u, v))

    def _m_invalidate(self) -> None:
        self._hcd_cache = None

    def _dirty_core_mark(self) -> int:
        return len(self._dirty_core)

    def _dirty_core_delta(self, before: int) -> int:
        return len(self._dirty_core) - before

    def _check_endpoints(self, u: int, v: int) -> None:
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphBuildError(f"endpoint out of range: ({u}, {v})")
        if u == v:
            raise GraphBuildError("self-loops are not allowed")

    def _subcore(self, root: int, k: int) -> set[int]:
        """Coreness-k vertices reachable from root via coreness-k paths
        (hopping over neighbors with higher coreness is allowed, since
        the k-subcore is connected inside the k-core)."""
        c = self._coreness
        if c[root] != k:
            return set()
        seen = {root}
        stack = [root]
        while stack:
            x = stack.pop()
            for y in self._acsr.neighbors(x):
                y = int(y)
                if c[y] == k and y not in seen:
                    seen.add(y)
                    stack.append(y)
                elif c[y] > k:
                    # traverse through the higher core: its vertices
                    # connect k-subcore fragments of the same k-core
                    for z in self._bridge_expand(y, k, seen):
                        stack.append(z)
        return seen

    def _bridge_expand(self, start: int, k: int, seen: set[int]) -> list[int]:
        """Walk the > k region from ``start``; return newly reached
        coreness-k vertices (marked in ``seen``)."""
        c = self._coreness
        out: list[int] = []
        visited_high = {start}
        stack = [start]
        while stack:
            x = stack.pop()
            for y in self._acsr.neighbors(x):
                y = int(y)
                if c[y] == k and y not in seen:
                    seen.add(y)
                    out.append(y)
                elif c[y] > k and y not in visited_high:
                    visited_high.add(y)
                    stack.append(y)
        return out

    def _promote(self, candidates: set[int], k: int) -> None:
        """Localized peeling at level k+1 over the candidate set.

        A candidate survives if it keeps > k neighbors among
        (surviving candidates) union (vertices of coreness > k).
        Survivors' coreness becomes k + 1.
        """
        c = self._coreness
        alive = set(candidates)
        changed = True
        while changed:
            changed = False
            for x in list(alive):
                support = sum(
                    1
                    for y in self._acsr.neighbors(x)
                    if (int(y) in alive) or c[y] > k
                )
                if support <= k:
                    alive.remove(x)
                    changed = True
        for x in alive:
            c[x] = k + 1
        self._dirty_core.update(alive)

    def _demote(self, affected: set[int], k: int) -> None:
        """Localized peeling at level k over the affected set.

        A vertex keeps coreness k only while it has >= k neighbors of
        effective level >= k; evicted vertices drop to k - 1 (coreness
        falls by at most one per deletion).
        """
        c = self._coreness
        alive = set(affected)
        dropped: set[int] = set()
        changed = True
        while changed:
            changed = False
            for x in list(alive):
                support = sum(
                    1
                    for y in self._acsr.neighbors(x)
                    if (c[y] > k) or (c[y] == k and int(y) not in dropped)
                )
                if support < k:
                    alive.remove(x)
                    dropped.add(x)
                    changed = True
        for x in dropped:
            c[x] = k - 1
        self._dirty_core.update(dropped)
