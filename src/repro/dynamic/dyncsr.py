"""Slack-capacity dynamic CSR: the mutable adjacency behind ``DynamicGraph``.

The original ``DynamicGraph`` kept a ``list[set[int]]`` adjacency, which
made every snapshot (``to_graph()``) an O(n + m) Python loop and kept
the maintenance kernels away from the flat-array idiom the rest of the
repo's parallel code uses.  :class:`DynamicCSR` replaces it with a
**delta-overlay CSR**:

* one shared ``int64`` buffer holds every row; ``indptr[v]`` is the
  row's start offset and ``lens[v]`` its current length (unlike an
  immutable CSR, rows are *not* contiguous — each row owns a capacity
  ``caps[v] >= lens[v]`` of slack slots so most insertions are an
  in-place sorted shift);
* a row that outgrows its capacity is **relocated** to the tail of the
  buffer with doubled capacity; the abandoned slots are tracked as
  ``dead_space`` and reclaimed by :meth:`compact` (triggered
  automatically once dead + slack bookkeeping crosses a threshold);
* rows stay **sorted**, so membership is a ``searchsorted`` probe and
  :meth:`to_csr` is a fully vectorized gather — no per-edge Python
  loop on the snapshot path.

The ``indptr`` / ``indices`` property names are deliberate: they match
the immutable :class:`~repro.graph.graph.Graph` CSR so the maintenance
kernels in :mod:`repro.dynamic.batch` traverse both through the same
trusted ``indices[indptr[v] + j]`` idiom.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphBuildError
from repro.graph.graph import Graph

__all__ = ["DynamicCSR"]

#: minimum slack capacity granted to any row
_MIN_CAP = 4

#: compact once dead space exceeds this fraction of the buffer
_DEAD_FRACTION = 0.5


class DynamicCSR:
    """A mutable, sorted, slack-capacity CSR adjacency.

    Construct with :meth:`from_graph` (or :meth:`empty`).  Mutations
    are undirected: :meth:`insert` / :meth:`remove` update both
    endpoint rows.  The structure does **no endpoint validation** —
    that is :class:`~repro.dynamic.DynamicGraph`'s job; indices
    reaching this layer are trusted to be canonical ``0 <= u,v < n``.
    """

    def __init__(
        self,
        starts: np.ndarray,
        lens: np.ndarray,
        caps: np.ndarray,
        buf: np.ndarray,
        tail: int,
        num_edges: int,
    ) -> None:
        self._starts = starts
        self._lens = lens
        self._caps = caps
        self._buf = buf
        self._tail = int(tail)
        self._m = int(num_edges)
        self._dead = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Graph, slack: float = 0.25) -> "DynamicCSR":
        """Lay out a graph's rows consecutively with per-row slack.

        ``slack`` is the fractional headroom per row (at least
        :data:`_MIN_CAP` slots), so a burst of insertions rarely forces
        relocation right away.
        """
        degs = graph.degrees().astype(np.int64)
        caps = degs + np.maximum((degs * slack).astype(np.int64), _MIN_CAP)
        starts = np.concatenate([[0], np.cumsum(caps)[:-1]]).astype(np.int64)
        tail = int(caps.sum())
        buf = np.zeros(max(tail, 1), dtype=np.int64)
        # vectorized scatter of the packed CSR into the slack layout
        src_indptr = graph.indptr
        n = graph.num_vertices
        if graph.num_edges:
            shift = np.repeat(starts - src_indptr[:-1], degs)
            dst = np.arange(src_indptr[-1], dtype=np.int64) + shift
            buf[dst] = graph.indices
        return cls(
            starts=starts,
            lens=degs.copy(),
            caps=caps,
            buf=buf,
            tail=tail,
            num_edges=graph.num_edges,
        ) if n else cls.empty(0)

    @classmethod
    def empty(cls, num_vertices: int) -> "DynamicCSR":
        n = int(num_vertices)
        caps = np.full(n, _MIN_CAP, dtype=np.int64)
        starts = (np.arange(n, dtype=np.int64) * _MIN_CAP)
        return cls(
            starts=starts,
            lens=np.zeros(n, dtype=np.int64),
            caps=caps,
            buf=np.zeros(max(n * _MIN_CAP, 1), dtype=np.int64),
            tail=n * _MIN_CAP,
            num_edges=0,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return int(self._starts.size)

    @property
    def num_edges(self) -> int:
        return self._m

    @property
    def indptr(self) -> np.ndarray:
        """Row start offsets (kernel-facing; rows are non-contiguous)."""
        return self._starts

    @property
    def indices(self) -> np.ndarray:
        """The shared neighbor buffer (kernel-facing)."""
        return self._buf

    @property
    def lens(self) -> np.ndarray:
        """Per-row neighbor counts (kernel-facing)."""
        return self._lens

    @property
    def dead_space(self) -> int:
        """Buffer slots abandoned by relocated rows (reclaimed by compact)."""
        return self._dead

    def degree(self, v: int) -> int:
        return int(self._lens[v])

    def degrees(self) -> np.ndarray:
        return self._lens.copy()

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor row of ``v`` (a read-only view)."""
        s = int(self._starts[v])
        view = self._buf[s : s + int(self._lens[v])]
        view.setflags(write=False)
        return view

    def has(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` is present (searchsorted probe)."""
        row = self._buf[
            int(self._starts[u]) : int(self._starts[u]) + int(self._lens[u])
        ]
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def insert(self, u: int, v: int) -> None:
        """Add undirected edge ``{u, v}``; raises if already present."""
        if self.has(u, v):
            raise GraphBuildError(f"edge ({u}, {v}) already present")
        self._insert_directed(u, v)
        self._insert_directed(v, u)
        self._m += 1

    def remove(self, u: int, v: int) -> None:
        """Remove undirected edge ``{u, v}``; raises if absent."""
        if not self.has(u, v):
            raise GraphBuildError(f"edge ({u}, {v}) not present")
        self._remove_directed(u, v)
        self._remove_directed(v, u)
        self._m -= 1

    def _insert_directed(self, u: int, v: int) -> None:
        if self._lens[u] == self._caps[u]:
            self._relocate(u)
        s = int(self._starts[u])
        length = int(self._lens[u])
        row = self._buf[s : s + length]
        pos = int(np.searchsorted(row, v))
        # shift the tail of the row right by one, then drop v in place
        self._buf[s + pos + 1 : s + length + 1] = self._buf[s + pos : s + length]
        self._buf[s + pos] = v
        self._lens[u] = length + 1

    def _remove_directed(self, u: int, v: int) -> None:
        s = int(self._starts[u])
        length = int(self._lens[u])
        row = self._buf[s : s + length]
        pos = int(np.searchsorted(row, v))
        self._buf[s + pos : s + length - 1] = self._buf[s + pos + 1 : s + length]
        self._lens[u] = length - 1

    def _relocate(self, u: int) -> None:
        """Move row ``u`` to the buffer tail with doubled capacity."""
        old_cap = int(self._caps[u])
        new_cap = max(2 * old_cap, _MIN_CAP)
        if self._tail + new_cap > self._buf.size:
            grow = max(self._buf.size, new_cap)
            self._buf = np.concatenate(
                [self._buf, np.zeros(grow, dtype=np.int64)]
            )
        s = int(self._starts[u])
        length = int(self._lens[u])
        self._buf[self._tail : self._tail + length] = self._buf[s : s + length]
        self._starts[u] = self._tail
        self._caps[u] = new_cap
        self._tail += new_cap
        self._dead += old_cap
        if self._dead > _DEAD_FRACTION * self._buf.size:
            self.compact()

    def compact(self, slack: float = 0.25) -> None:
        """Rebuild the buffer with fresh per-row slack, dropping dead space."""
        degs = self._lens
        caps = degs + np.maximum((degs * slack).astype(np.int64), _MIN_CAP)
        starts = np.concatenate([[0], np.cumsum(caps)[:-1]]).astype(np.int64)
        tail = int(caps.sum())
        buf = np.zeros(max(tail, 1), dtype=np.int64)
        total = int(degs.sum())
        if total:
            old_pos = np.repeat(self._starts, degs) + _intra_row_offsets(degs)
            new_pos = np.repeat(starts, degs) + _intra_row_offsets(degs)
            buf[new_pos] = self._buf[old_pos]
        self._starts = starts
        self._caps = caps
        self._buf = buf
        self._tail = tail
        self._dead = 0

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------

    def to_csr(self) -> Graph:
        """Materialize an immutable packed :class:`Graph` — vectorized.

        Rows are already sorted and deduplicated, so the result can use
        the trusted fast-path constructor (``validate=False``).
        """
        degs = self._lens
        indptr = np.concatenate([[0], np.cumsum(degs)]).astype(np.int64)
        total = int(indptr[-1])
        if total:
            pos = np.repeat(self._starts, degs) + _intra_row_offsets(degs)
            indices = np.ascontiguousarray(self._buf[pos])
        else:
            indices = np.empty(0, dtype=np.int64)
        return Graph(indptr, indices, validate=False)


def _intra_row_offsets(lens: np.ndarray) -> np.ndarray:
    """``[0..lens[0]), [0..lens[1]), ...`` concatenated, vectorized."""
    total = int(lens.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lens)
    reset = np.repeat(ends - lens, lens)
    return np.arange(total, dtype=np.int64) - reset
