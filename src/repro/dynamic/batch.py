"""Batched parallel traversal maintenance of the coreness array.

Per-edge traversal maintenance (:mod:`repro.dynamic.maintenance`)
repairs one update at a time: collect the affected k-subcore, peel,
adjust.  Under a *batch* of updates that wastes work twice over — the
same subcore is re-collected for every edge that lands in it, and the
repair runs as serial Python.  This module implements the batched
alternative in the spirit of the level-grouped parallel maintenance
literature (Liu & Dong's parallel k-core; Shi, Dhulipala & Shun's
parallel hierarchy maintenance): group the pending updates by affected
level ``k = min(c(u), c(v))``, collect the **joint** candidate subcore
of all roots at that level once, and run candidate collection and
localized peeling as ``parallel_for`` kernels on a
:class:`~repro.parallel.scheduler.SimulatedPool` — every access
recorded through :class:`~repro.parallel.context.ThreadContext`, so
SimTSan / SimCheck / SimFlow cover the kernels like any other in the
repo.

Algorithm (``batch_repair``)
----------------------------
Structural mutations are applied to the adjacency *before* repair.
The repair then runs two monotone phases:

1. **Demotion** (only if the batch deletes edges): worklist rounds
   seeded by the deleted edges — per round, group seeds by current
   level, collect each level's joint subcore, run the demote peel
   (a vertex keeps level ``k`` only with ``>= k`` supporters of
   effective level ``>= k``), demote failures one level, and feed
   them back as seeds — followed by a **verification sweep** that
   re-runs the demote peel over *every* vertex of each dirty level
   until a full sweep changes nothing.  Coreness only decreases.
2. **Promotion** (only if the batch inserts edges): the mirror-image
   worklist (promote peel at ``k + 1``: a candidate survives with
   ``> k`` supporters among surviving candidates and higher cores;
   survivors rise one level) followed by the promote verification
   sweep over dirty levels.  Coreness only increases, and promotions
   can never invalidate the demotion phase's quiescence (they only
   add support).

Each phase alone terminates (monotone, bounded), and joint quiescence
of the verification sweeps certifies exact coreness: every vertex has
``>= c(v)`` neighbors of level ``>= c(v)`` (so ``c`` is a valid core
witness, hence a lower bound of nothing above the true coreness), and
no level's full peel can lift anyone (so no vertex is undervalued).
Levels never marked dirty are untouched by construction — every level
a vertex passes through, and every pending edge's current level, is
marked.  Because coreness is canonical, the result is bit-identical
to per-edge maintenance and to full recomputation; the property tests
check exactly that at several thread counts.

Determinism across thread counts comes from the same discipline as
the PKC kernel: exactly-once CAS claims on shared frontiers, two-phase
(snapshot then apply) peels with per-vertex slots, per-thread output
buffers merged and sorted between regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphBuildError
from repro.parallel.atomics import AtomicArray
from repro.parallel.scheduler import SimulatedPool

__all__ = [
    "BatchUpdateReport",
    "normalize_batch",
    "batch_repair",
]


# ----------------------------------------------------------------------
# batch normalization / validation
# ----------------------------------------------------------------------


@dataclass
class BatchUpdateReport:
    """Outcome of one batched update (or one batch-API call).

    ``skipped`` holds ``(u, v, reason)`` triples for entries the
    documented skip policy dropped (``"self-loop"``, ``"duplicate"``,
    ``"present"``, ``"absent"``); anything *invalid* (out-of-range or
    non-integer endpoints) raises instead, before any mutation.
    """

    applied_insertions: list[tuple[int, int]] = field(default_factory=list)
    applied_deletions: list[tuple[int, int]] = field(default_factory=list)
    skipped: list[tuple[int, int, str]] = field(default_factory=list)
    changed: int = 0     # vertices whose coreness moved
    rounds: int = 0      # repair worklist rounds run

    @property
    def applied(self) -> int:
        """Total structural mutations applied."""
        return len(self.applied_insertions) + len(self.applied_deletions)

    def as_dict(self) -> dict:
        return {
            "applied_insertions": len(self.applied_insertions),
            "applied_deletions": len(self.applied_deletions),
            "skipped": len(self.skipped),
            "changed": self.changed,
            "rounds": self.rounds,
        }


def normalize_batch(
    edges, num_vertices: int, where: str = "batch"
) -> tuple[list[tuple[int, int]], list[tuple[int, int, str]]]:
    """Validate and canonicalize a whole edge batch **up front**.

    Every endpoint is checked before anything is applied — a bad entry
    raises :class:`~repro.errors.GraphBuildError` naming its position,
    leaving the caller's graph untouched (batch atomicity).  Edges are
    canonicalized to ``(min, max)``; self-loops and within-batch
    duplicates (including reversed ``(v, u)`` repeats) are dropped into
    the skip list, never silently.
    """
    canonical: list[tuple[int, int]] = []
    skipped: list[tuple[int, int, str]] = []
    seen: set[tuple[int, int]] = set()
    for pos, pair in enumerate(edges):
        try:
            u, v = pair
            u, v = int(u), int(v)
        except (TypeError, ValueError):
            raise GraphBuildError(
                f"{where}[{pos}]: expected an edge pair, got {pair!r}"
            ) from None
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise GraphBuildError(
                f"{where}[{pos}]: endpoint out of range: ({u}, {v}) "
                f"for {num_vertices} vertices"
            )
        if u == v:
            skipped.append((u, v, "self-loop"))
            continue
        edge = (u, v) if u < v else (v, u)
        if edge in seen:
            skipped.append((u, v, "duplicate"))
            continue
        seen.add(edge)
        canonical.append(edge)
    return canonical, skipped


# ----------------------------------------------------------------------
# parallel kernels
# ----------------------------------------------------------------------


def _merge_parts(parts: list[list[int]]) -> list[int]:
    """Deterministic (sorted) merge of per-thread output buffers."""
    return sorted(y for part in parts for y in part)


def _collect_subcore(
    pool: SimulatedPool,
    indptr: np.ndarray,
    indices: np.ndarray,
    row_len: np.ndarray,
    coreness: np.ndarray,
    roots: list[int],
    k: int,
    tag: str,
) -> list[int]:
    """Joint k-subcore of all roots: every coreness-``k`` vertex
    connected to a root inside the k-core (paths may hop through
    vertices of coreness ``> k`` — they glue subcore fragments of the
    same k-core together, exactly like the per-edge bridge walk).

    One BFS claims the whole ``>= k`` reachable region through an
    exactly-once CAS per vertex, so the claimed set — and the total
    work — is independent of how the pool partitions each frontier.
    """
    n = coreness.size
    visited = AtomicArray(n, name="visited")
    nthreads = pool.threads
    seed_parts: list[list[int]] = [[] for _ in range(nthreads)]

    def claim_root(x, ctx) -> None:
        xi = int(x)
        ctx.read(("coreness", xi))
        if visited.compare_and_swap(ctx, xi, 0, 1):
            seed_parts[ctx.thread_id].append(xi)

    pool.parallel_for(list(roots), claim_root, label=f"dyn_seed:{tag}")
    frontier = _merge_parts(seed_parts)
    members: list[int] = []
    while frontier:
        members.extend(x for x in frontier if int(coreness[x]) == k)
        next_parts: list[list[int]] = [[] for _ in range(nthreads)]

        def expand(x, ctx) -> None:
            xi = int(x)
            ctx.read(("row_len", xi))
            base = int(indptr[xi])
            deg = int(row_len[xi])
            for j in range(deg):
                y = int(indices[base + j])
                ctx.read(("coreness", y))
                if int(coreness[y]) >= k:
                    if visited.compare_and_swap(ctx, y, 0, 1):
                        next_parts[ctx.thread_id].append(y)

        pool.parallel_for(frontier, expand, label=f"dyn_expand:{tag}")
        frontier = _merge_parts(next_parts)
    return sorted(members)


def _peel_promote(
    pool: SimulatedPool,
    indptr: np.ndarray,
    indices: np.ndarray,
    row_len: np.ndarray,
    coreness: np.ndarray,
    cand: list[int],
    k: int,
    tag: str,
) -> list[int]:
    """Localized promote peel at level ``k + 1`` over ``cand``.

    A candidate survives while it keeps ``> k`` neighbors among the
    surviving candidates and the vertices of coreness ``> k``.
    Returns the sorted survivors (their coreness is *not* written
    here).  Two-phase per round: support counted into per-vertex slots
    against a frozen ``alive`` snapshot, then evictions applied to
    disjoint slots — bit-identical at any thread count.
    """
    n = coreness.size
    alive = np.zeros(n, dtype=np.int64)
    supp = np.zeros(n, dtype=np.int64)
    alive_list = sorted(cand)
    for x in alive_list:
        alive[x] = 1
    nthreads = pool.threads
    while alive_list:

        def count_support(x, ctx) -> None:
            xi = int(x)
            ctx.read(("row_len", xi))
            base = int(indptr[xi])
            deg = int(row_len[xi])
            s = 0
            for j in range(deg):
                y = int(indices[base + j])
                ctx.read(("coreness", y))
                ctx.read(("alive", y))
                if int(coreness[y]) > k or alive[y]:
                    s += 1
            ctx.write(("supp", xi))
            supp[xi] = s

        pool.parallel_for(alive_list, count_support, label=f"dyn_support:{tag}")
        out_parts: list[list[int]] = [[] for _ in range(nthreads)]

        def evict(x, ctx) -> None:
            xi = int(x)
            ctx.read(("supp", xi))
            if int(supp[xi]) <= k:
                ctx.write(("alive", xi))
                alive[xi] = 0
                out_parts[ctx.thread_id].append(xi)

        pool.parallel_for(alive_list, evict, label=f"dyn_evict:{tag}")
        if not any(out_parts):
            break
        alive_list = [x for x in alive_list if alive[x]]
    return alive_list


def _peel_demote(
    pool: SimulatedPool,
    indptr: np.ndarray,
    indices: np.ndarray,
    row_len: np.ndarray,
    coreness: np.ndarray,
    cand: list[int],
    k: int,
    tag: str,
) -> list[int]:
    """Localized demote peel at level ``k`` over ``cand``.

    A vertex keeps level ``k`` while it has ``>= k`` supporters of
    effective level ``>= k`` (coreness ``> k``, or coreness ``k`` and
    not yet dropped).  Returns the sorted dropped vertices (coreness
    not written here).  Same two-phase snapshot discipline as the
    promote peel.
    """
    n = coreness.size
    dropped = np.zeros(n, dtype=np.int64)
    supp = np.zeros(n, dtype=np.int64)
    active = sorted(cand)
    all_dropped: list[int] = []
    nthreads = pool.threads
    while active:

        def count_support(x, ctx) -> None:
            xi = int(x)
            ctx.read(("row_len", xi))
            base = int(indptr[xi])
            deg = int(row_len[xi])
            s = 0
            for j in range(deg):
                y = int(indices[base + j])
                ctx.read(("coreness", y))
                ctx.read(("dropped", y))
                cy = int(coreness[y])
                if cy > k or (cy == k and not dropped[y]):
                    s += 1
            ctx.write(("supp", xi))
            supp[xi] = s

        pool.parallel_for(active, count_support, label=f"dyn_support:{tag}")
        out_parts: list[list[int]] = [[] for _ in range(nthreads)]

        def evict(x, ctx) -> None:
            xi = int(x)
            ctx.read(("supp", xi))
            if int(supp[xi]) < k:
                ctx.write(("dropped", xi))
                dropped[xi] = 1
                out_parts[ctx.thread_id].append(xi)

        pool.parallel_for(active, evict, label=f"dyn_evict:{tag}")
        evicted = _merge_parts(out_parts)
        if not evicted:
            break
        all_dropped.extend(evicted)
        active = [x for x in active if not dropped[x]]
    return sorted(all_dropped)


def _apply_level(
    pool: SimulatedPool,
    coreness: np.ndarray,
    vertices: list[int],
    level: int,
    tag: str,
) -> None:
    """Write ``level`` into every vertex's coreness slot (disjoint)."""

    def assign(x, ctx) -> None:
        xi = int(x)
        ctx.write(("coreness", xi))
        coreness[xi] = level

    pool.parallel_for(sorted(vertices), assign, label=f"dyn_apply:{tag}")


# ----------------------------------------------------------------------
# phase orchestration
# ----------------------------------------------------------------------


def _group_by_level(
    coreness: np.ndarray,
    edges: list[tuple[int, int]],
    seeds: set[int],
    dirty_levels: set[int],
) -> dict[int, set[int]]:
    """Map current level ``k`` to the repair roots at that level.

    Every pending edge re-registers at its *current* ``min`` level each
    round (levels move between rounds), and marks it dirty so the
    verification sweep covers it even when the worklist finds nothing.
    """
    level_roots: dict[int, set[int]] = {}
    for u, v in edges:
        k = int(min(coreness[u], coreness[v]))
        dirty_levels.add(k)
        for x in (u, v):
            if int(coreness[x]) == k:
                level_roots.setdefault(k, set()).add(x)
    for x in seeds:
        level_roots.setdefault(int(coreness[x]), set()).add(x)
    return level_roots


def _demote_phase(
    pool: SimulatedPool,
    indptr: np.ndarray,
    indices: np.ndarray,
    row_len: np.ndarray,
    coreness: np.ndarray,
    deleted: list[tuple[int, int]],
    changed: set[int],
    dirty_levels: set[int],
) -> int:
    """Worklist demotion rounds to quiescence; returns rounds run."""
    seeds: set[int] = set()
    rounds = 0
    while True:
        rounds += 1
        level_roots = _group_by_level(coreness, deleted, seeds, dirty_levels)
        seeds = set()
        any_change = False
        for k in sorted(level_roots, reverse=True):
            if k < 1:
                continue
            roots = sorted(x for x in level_roots[k] if int(coreness[x]) == k)
            if not roots:
                continue
            with pool.phase(f"dynamic.demote:level-{k}"):
                cand = _collect_subcore(
                    pool, indptr, indices, row_len, coreness, roots, k, f"d{k}"
                )
                droppedv = _peel_demote(
                    pool, indptr, indices, row_len, coreness, cand, k, f"d{k}"
                )
                if droppedv:
                    _apply_level(pool, coreness, droppedv, k - 1, f"d{k}")
            if droppedv:
                any_change = True
                dirty_levels.update((k - 1, k))
                changed.update(droppedv)
                seeds.update(droppedv)
        if not any_change:
            return rounds


def _promote_phase(
    pool: SimulatedPool,
    indptr: np.ndarray,
    indices: np.ndarray,
    row_len: np.ndarray,
    coreness: np.ndarray,
    inserted: list[tuple[int, int]],
    changed: set[int],
    dirty_levels: set[int],
) -> int:
    """Worklist promotion rounds to quiescence; returns rounds run."""
    seeds: set[int] = set()
    rounds = 0
    while True:
        rounds += 1
        level_roots = _group_by_level(coreness, inserted, seeds, dirty_levels)
        seeds = set()
        any_change = False
        for k in sorted(level_roots):
            roots = sorted(x for x in level_roots[k] if int(coreness[x]) == k)
            if not roots:
                continue
            with pool.phase(f"dynamic.promote:level-{k}"):
                cand = _collect_subcore(
                    pool, indptr, indices, row_len, coreness, roots, k, f"i{k}"
                )
                survivors = _peel_promote(
                    pool, indptr, indices, row_len, coreness, cand, k, f"i{k}"
                )
                if survivors:
                    _apply_level(pool, coreness, survivors, k + 1, f"i{k}")
            if survivors:
                any_change = True
                dirty_levels.update((k, k + 1))
                changed.update(survivors)
                seeds.update(survivors)
        if not any_change:
            return rounds


def _verify_demote(
    pool: SimulatedPool,
    indptr: np.ndarray,
    indices: np.ndarray,
    row_len: np.ndarray,
    coreness: np.ndarray,
    changed: set[int],
    dirty_levels: set[int],
) -> int:
    """Full-level demote sweeps over dirty levels until quiescent."""
    sweeps = 0
    while True:
        sweeps += 1
        any_change = False
        for k in sorted(dirty_levels, reverse=True):
            if k < 1:
                continue
            cand = [int(x) for x in np.flatnonzero(coreness == k)]
            if not cand:
                continue
            with pool.phase(f"dynamic.verify-demote:level-{k}"):
                droppedv = _peel_demote(
                    pool, indptr, indices, row_len, coreness, cand, k, f"v{k}"
                )
                if droppedv:
                    _apply_level(pool, coreness, droppedv, k - 1, f"v{k}")
            if droppedv:
                any_change = True
                dirty_levels.add(k - 1)
                changed.update(droppedv)
        if not any_change:
            return sweeps


def _verify_promote(
    pool: SimulatedPool,
    indptr: np.ndarray,
    indices: np.ndarray,
    row_len: np.ndarray,
    coreness: np.ndarray,
    changed: set[int],
    dirty_levels: set[int],
) -> int:
    """Full-level promote sweeps over dirty levels until quiescent."""
    sweeps = 0
    while True:
        sweeps += 1
        any_change = False
        for k in sorted(dirty_levels):
            cand = [int(x) for x in np.flatnonzero(coreness == k)]
            if not cand:
                continue
            with pool.phase(f"dynamic.verify-promote:level-{k}"):
                survivors = _peel_promote(
                    pool, indptr, indices, row_len, coreness, cand, k, f"v{k}"
                )
                if survivors:
                    _apply_level(pool, coreness, survivors, k + 1, f"v{k}")
            if survivors:
                any_change = True
                dirty_levels.add(k + 1)
                changed.update(survivors)
        if not any_change:
            return sweeps


def batch_repair(
    acsr,
    coreness: np.ndarray,
    inserted: list[tuple[int, int]],
    deleted: list[tuple[int, int]],
    pool: SimulatedPool,
) -> tuple[set[int], int]:
    """Repair ``coreness`` in place after a batch of applied mutations.

    ``acsr`` is the already-mutated adjacency (``DynamicCSR`` or any
    object exposing ``indptr`` / ``indices`` / ``lens``); ``inserted``
    and ``deleted`` are the canonical edge lists that were actually
    applied.  Returns ``(changed_vertices, worklist_rounds)``.
    """
    indptr = acsr.indptr
    indices = acsr.indices
    row_len = acsr.lens
    changed: set[int] = set()
    dirty_levels: set[int] = set()
    rounds = 0
    if deleted:
        rounds += _demote_phase(
            pool, indptr, indices, row_len, coreness, deleted,
            changed, dirty_levels,
        )
        _verify_demote(
            pool, indptr, indices, row_len, coreness, changed, dirty_levels
        )
    if inserted:
        rounds += _promote_phase(
            pool, indptr, indices, row_len, coreness, inserted,
            changed, dirty_levels,
        )
        _verify_promote(
            pool, indptr, indices, row_len, coreness, changed, dirty_levels
        )
    return changed, rounds
