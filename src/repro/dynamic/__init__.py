"""Dynamic-graph extension: incremental coreness maintenance."""

from repro.dynamic.maintenance import DynamicGraph

__all__ = ["DynamicGraph"]
