"""Dynamic-graph extension: incremental coreness maintenance.

Per-edge traversal maintenance and batched parallel maintenance
(:meth:`DynamicGraph.apply_batch` over :mod:`repro.dynamic.batch`)
on a slack-capacity dynamic CSR (:mod:`repro.dynamic.dyncsr`).
"""

from repro.dynamic.batch import BatchUpdateReport, batch_repair, normalize_batch
from repro.dynamic.dyncsr import DynamicCSR
from repro.dynamic.maintenance import DynamicGraph

__all__ = [
    "BatchUpdateReport",
    "DynamicCSR",
    "DynamicGraph",
    "batch_repair",
    "normalize_batch",
]
