"""k-edge-connected components and their hierarchy (Section VI extension)."""

from repro.ecc.decomposition import (
    EccHierarchy,
    ecc_decomposition,
    k_edge_connected_components,
    stoer_wagner_min_cut,
)

__all__ = [
    "stoer_wagner_min_cut",
    "k_edge_connected_components",
    "EccHierarchy",
    "ecc_decomposition",
]
