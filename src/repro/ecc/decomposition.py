"""k-edge-connected components and their hierarchy (Section VI).

The paper's extension list closes with k-ECC [40]: maximal subgraphs
that remain connected after removing any ``k - 1`` edges.  Like
k-cores and k-trusses, the k-ECCs nest across ``k`` — a k-ECC cannot
be separated by any cut of value below ``k``, so recursive global
min-cut splitting yields, in one pass, *every* level of the
decomposition:

* compute the component's min cut ``c`` (Stoer-Wagner);
* the component is a maximal k-ECC exactly for
  ``parent_value < k <= c`` — one hierarchy node;
* split along the min cut and recurse on the two sides.

:func:`ecc_decomposition` returns the per-vertex connectivity number
(the largest ``k`` whose k-ECC contains the vertex non-trivially) and
the hierarchy; :func:`k_edge_connected_components` answers a single
level, cross-checked against networkx in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = [
    "stoer_wagner_min_cut",
    "k_edge_connected_components",
    "EccHierarchy",
    "ecc_decomposition",
]


def stoer_wagner_min_cut(
    graph: Graph, vertices: np.ndarray | None = None
) -> tuple[int, list[int]]:
    """Global min cut of the induced subgraph on ``vertices``.

    Returns ``(cut_value, one_side)`` with ``one_side`` a non-empty
    proper subset of the vertices.  Classic Stoer-Wagner with unit
    edge weights and vertex merging, O(n^3); intended for the modest
    components the decomposition recurses on.

    Requires the induced subgraph to be connected with >= 2 vertices.
    """
    if vertices is None:
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
    verts = [int(v) for v in vertices]
    n = len(verts)
    if n < 2:
        raise ValueError("min cut needs at least two vertices")
    pos = {v: i for i, v in enumerate(verts)}
    # dense weight matrix of the induced subgraph
    w = np.zeros((n, n), dtype=np.int64)
    for i, v in enumerate(verts):
        for u in graph.neighbors(v):
            j = pos.get(int(u))
            if j is not None:
                w[i, j] = 1
    groups: list[list[int]] = [[v] for v in verts]
    active = list(range(n))
    best_value = None
    best_side: list[int] = []
    while len(active) > 1:
        # maximum-adjacency ordering
        weights = np.zeros(n, dtype=np.int64)
        in_a = set()
        order = []
        for _ in range(len(active)):
            pick = max(
                (x for x in active if x not in in_a),
                key=lambda x: (weights[x], -x),
            )
            in_a.add(pick)
            order.append(pick)
            weights[[y for y in active if y not in in_a]] += w[
                pick, [y for y in active if y not in in_a]
            ]
        s, t = order[-2], order[-1]
        cut_of_phase = int(weights[t])
        if best_value is None or cut_of_phase < best_value:
            best_value = cut_of_phase
            best_side = list(groups[t])
        # merge t into s
        w[s, :] += w[t, :]
        w[:, s] += w[:, t]
        w[s, s] = 0
        groups[s].extend(groups[t])
        active.remove(t)
    assert best_value is not None
    return best_value, sorted(best_side)


def _connected_pieces(graph: Graph, vertices: list[int]) -> list[list[int]]:
    """Connected components of the induced subgraph, as vertex lists."""
    member = set(vertices)
    seen: set[int] = set()
    pieces = []
    for start in vertices:
        if start in seen:
            continue
        comp = [start]
        seen.add(start)
        stack = [start]
        while stack:
            x = stack.pop()
            for y in graph.neighbors(x):
                y = int(y)
                if y in member and y not in seen:
                    seen.add(y)
                    comp.append(y)
                    stack.append(y)
        pieces.append(sorted(comp))
    return pieces


def k_edge_connected_components(graph: Graph, k: int) -> list[list[int]]:
    """The k-ECCs of ``graph`` as sorted vertex lists (incl. singletons).

    Recursive min-cut splitting; every returned multi-vertex set
    induces a k-edge-connected subgraph, and the sets are maximal.
    """
    if k < 1:
        return [sorted(range(graph.num_vertices))] if graph.num_vertices else []
    out: list[list[int]] = []

    def recurse(vertices: list[int]) -> None:
        if len(vertices) == 1:
            out.append(vertices)
            return
        for piece in _connected_pieces(graph, vertices):
            if len(piece) == 1:
                out.append(piece)
                continue
            value, side = stoer_wagner_min_cut(graph, np.asarray(piece))
            if value >= k:
                out.append(piece)
                continue
            other = sorted(set(piece) - set(side))
            recurse(side)
            recurse(other)

    if graph.num_vertices:
        recurse(sorted(range(graph.num_vertices)))
    return sorted(out)


@dataclass
class EccHierarchy:
    """Nested k-ECC structure from recursive min-cut splitting.

    ``nodes[i] = (value, vertex frozenset)``: the set is a maximal
    k-ECC for every ``k`` in ``(parent value, value]``.
    ``connectivity[v]`` is the deepest value over nodes containing v.
    """

    nodes: list[tuple[int, frozenset[int]]]
    parents: list[int]
    connectivity: np.ndarray

    def components_at(self, k: int) -> list[list[int]]:
        """Multi-vertex k-ECCs read off the hierarchy."""
        out = []
        for idx, (value, members) in enumerate(self.nodes):
            if value < k:
                continue
            pa = self.parents[idx]
            parent_value = self.nodes[pa][0] if pa >= 0 else 0
            if parent_value < k:
                out.append(sorted(members))
        return sorted(out)


def ecc_decomposition(
    graph: Graph,
    pool: SimulatedPool | None = None,
) -> EccHierarchy:
    """Full k-ECC hierarchy + per-vertex connectivity numbers."""
    n = graph.num_vertices
    connectivity = np.zeros(n, dtype=np.int64)
    nodes: list[tuple[int, frozenset[int]]] = []
    parents: list[int] = []
    charged = 0

    def recurse(vertices: list[int], parent_idx: int, parent_value: int) -> None:
        nonlocal charged
        for piece in _connected_pieces(graph, vertices):
            charged += len(piece)
            if len(piece) == 1:
                continue
            value, side = stoer_wagner_min_cut(graph, np.asarray(piece))
            charged += len(piece) ** 2
            node_idx = parent_idx
            node_value = parent_value
            if value > parent_value:
                node_idx = len(nodes)
                nodes.append((value, frozenset(piece)))
                parents.append(parent_idx)
                node_value = value
                for v in piece:
                    connectivity[v] = value
            other = sorted(set(piece) - set(side))
            recurse(side, node_idx, node_value)
            recurse(other, node_idx, node_value)

    if n:
        recurse(sorted(range(n)), -1, 0)
    if pool is not None:
        with pool.serial_region("ecc_decomposition") as ctx:
            ctx.charge(charged)
    return EccHierarchy(
        nodes=nodes, parents=parents, connectivity=connectivity
    )
