"""Rendering the HCD for humans: ASCII trees and Graphviz DOT.

Graph visualization is one of the paper's motivating applications: the
hierarchy of k-cores is itself an elegant summary of a network.  These
renderers keep that spirit without a plotting dependency — an indented
ASCII forest for terminals, and a DOT document for external tooling.
"""

from __future__ import annotations

import numpy as np

from repro.core.hcd import HCD

__all__ = ["ascii_tree", "to_dot", "hierarchy_summary"]


def _node_label(hcd: HCD, node: int, max_vertices: int) -> str:
    verts = hcd.vertices_of(node)
    shown = ", ".join(str(int(v)) for v in verts[:max_vertices])
    if verts.size > max_vertices:
        shown += f", ... ({verts.size} total)"
    return f"k={int(hcd.node_coreness[node])} [{shown}]"


def ascii_tree(hcd: HCD, max_vertices: int = 8) -> str:
    """Indented forest rendering, roots first, children by coreness.

    Each line shows a tree node's coreness and (a prefix of) its
    vertex set, mirroring Figure 1(c) of the paper.
    """
    lines: list[str] = []

    def render(node: int, prefix: str, is_last: bool) -> None:
        connector = "`-- " if is_last else "|-- "
        lines.append(prefix + connector + _node_label(hcd, node, max_vertices))
        child_prefix = prefix + ("    " if is_last else "|   ")
        children = sorted(
            hcd.children[node], key=lambda c: (int(hcd.node_coreness[c]), c)
        )
        for i, child in enumerate(children):
            render(child, child_prefix, i == len(children) - 1)

    roots = sorted(
        hcd.roots(), key=lambda r: (int(hcd.node_coreness[r]), r)
    )
    for root in roots:
        lines.append(_node_label(hcd, root, max_vertices))
        children = sorted(
            hcd.children[root], key=lambda c: (int(hcd.node_coreness[c]), c)
        )
        for i, child in enumerate(children):
            render(child, "", i == len(children) - 1)
    return "\n".join(lines)


def to_dot(hcd: HCD, name: str = "hcd") -> str:
    """Graphviz DOT document of the forest (one box per tree node)."""
    lines = [f"digraph {name} {{", "  rankdir=BT;", "  node [shape=box];"]
    for node in range(hcd.num_nodes):
        size = int(hcd.vertices_of(node).size)
        lines.append(
            f'  t{node} [label="T{node}\\nk={int(hcd.node_coreness[node])}'
            f'\\n|V|={size}"];'
        )
    for node in range(hcd.num_nodes):
        pa = int(hcd.parent[node])
        if pa >= 0:
            lines.append(f"  t{node} -> t{pa};")
    lines.append("}")
    return "\n".join(lines)


def hierarchy_summary(hcd: HCD) -> str:
    """Multi-line textual summary: node counts per level, depth, widths."""
    if hcd.num_nodes == 0:
        return "empty hierarchy"
    stats = hcd.stats()
    per_level = np.bincount(
        hcd.node_coreness, minlength=int(hcd.node_coreness.max()) + 1
    )
    lines = [
        f"tree nodes : {stats.num_nodes}",
        f"roots      : {stats.num_roots}",
        f"max depth  : {stats.max_depth}",
        f"kmax       : {stats.kmax}",
        f"largest |V|: {stats.largest_node}",
        "nodes per coreness level:",
    ]
    for k, count in enumerate(per_level):
        if count:
            lines.append(f"  k={k:4d}: {'#' * min(int(count), 60)} {int(count)}")
    return "\n".join(lines)
