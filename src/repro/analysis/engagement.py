"""User-engagement analysis on the core hierarchy.

One of the paper's motivating applications (Section I): a user's
coreness estimates their engagement level, and the estimate improves
when the user's *position in the HCD* is also considered (Lin et al.,
PVLDB'21).  This module provides the study pipeline on synthetic
engagement signals:

* :func:`synthesize_engagement` draws a per-vertex engagement value
  (e.g. "number of check-ins") whose mean grows with coreness and with
  the vertex's depth in the HCD, plus noise — the generative model the
  empirical studies report;
* :func:`mean_engagement_by_coreness` reproduces the classic positive
  coreness/engagement correlation;
* :func:`mean_engagement_by_position` shows the refinement: within a
  fixed coreness, engagement still varies with HCD depth, so hierarchy
  position carries signal coreness alone misses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hcd import HCD

__all__ = [
    "EngagementStudy",
    "synthesize_engagement",
    "mean_engagement_by_coreness",
    "mean_engagement_by_position",
    "pearson_correlation",
]


def synthesize_engagement(
    coreness: np.ndarray,
    hcd: HCD | None = None,
    base: float = 2.0,
    coreness_weight: float = 1.5,
    depth_weight: float = 0.8,
    noise: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Per-vertex synthetic engagement values.

    ``engagement(v) = base + coreness_weight * c(v)
    + depth_weight * depth(tid(v)) + Gaussian(0, noise)``, clipped at 0.
    """
    coreness = np.asarray(coreness, dtype=np.float64)
    rng = np.random.default_rng(seed)
    values = base + coreness_weight * coreness
    if hcd is not None and hcd.num_nodes:
        depths = hcd.depths()
        values = values + depth_weight * depths[hcd.tid].astype(np.float64)
    values = values + rng.normal(0.0, noise, size=coreness.size)
    return np.maximum(values, 0.0)


def mean_engagement_by_coreness(
    coreness: np.ndarray, engagement: np.ndarray
) -> dict[int, float]:
    """Mean engagement of the vertices in each k-shell."""
    coreness = np.asarray(coreness, dtype=np.int64)
    engagement = np.asarray(engagement, dtype=np.float64)
    out: dict[int, float] = {}
    for k in np.unique(coreness):
        members = coreness == k
        out[int(k)] = float(engagement[members].mean())
    return out


def mean_engagement_by_position(
    coreness: np.ndarray, hcd: HCD, engagement: np.ndarray
) -> dict[tuple[int, int], float]:
    """Mean engagement keyed by ``(coreness, HCD depth)``.

    Splitting each shell by hierarchy depth exposes the within-shell
    variation that position-aware engagement estimation exploits.
    """
    coreness = np.asarray(coreness, dtype=np.int64)
    engagement = np.asarray(engagement, dtype=np.float64)
    depths = hcd.depths()
    out: dict[tuple[int, int], float] = {}
    vertex_depth = depths[hcd.tid]
    for k in np.unique(coreness):
        for d in np.unique(vertex_depth[coreness == k]):
            members = (coreness == k) & (vertex_depth == d)
            out[(int(k), int(d))] = float(engagement[members].mean())
    return out


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (0.0 for degenerate inputs)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 2 or float(x.std()) == 0.0 or float(y.std()) == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


@dataclass
class EngagementStudy:
    """Bundle of the engagement-analysis outputs for one graph."""

    engagement: np.ndarray
    by_coreness: dict[int, float]
    by_position: dict[tuple[int, int], float]
    coreness_correlation: float
    position_gain: float

    @classmethod
    def run(
        cls,
        coreness: np.ndarray,
        hcd: HCD,
        seed: int = 0,
    ) -> "EngagementStudy":
        """Full study: synthesize, aggregate, and quantify the gain.

        ``position_gain`` is the reduction in mean absolute estimation
        error when predicting engagement by (coreness, depth) cell
        means instead of coreness-only cell means — positive when the
        hierarchy refines the estimate, as the paper reports.
        """
        coreness = np.asarray(coreness, dtype=np.int64)
        engagement = synthesize_engagement(coreness, hcd, seed=seed)
        by_core = mean_engagement_by_coreness(coreness, engagement)
        by_pos = mean_engagement_by_position(coreness, hcd, engagement)
        pred_core = np.asarray([by_core[int(k)] for k in coreness])
        depths = hcd.depths()[hcd.tid]
        pred_pos = np.asarray(
            [by_pos[(int(k), int(d))] for k, d in zip(coreness, depths)]
        )
        err_core = float(np.abs(engagement - pred_core).mean())
        err_pos = float(np.abs(engagement - pred_pos).mean())
        return cls(
            engagement=engagement,
            by_coreness=by_core,
            by_position=by_pos,
            coreness_correlation=pearson_correlation(
                coreness.astype(np.float64), engagement
            ),
            position_gain=err_core - err_pos,
        )
