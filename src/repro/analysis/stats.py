"""Small reporting helpers shared by the benchmark harnesses."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["format_table", "geometric_mean", "speedup", "format_seconds", "ascii_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table (the benchmarks print paper-style rows)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; 0.0 for empty input, requires positives."""
    vals = [float(v) for v in values]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup(baseline: float, candidate: float) -> float:
    """``baseline / candidate`` guarded against a zero denominator."""
    if candidate <= 0:
        return float("inf")
    return baseline / candidate


def format_seconds(sim_time: float, scale: float = 1e9) -> str:
    """Render a simulated-nanosecond clock as seconds, paper style."""
    return f"{sim_time / scale:.3f}"


_SPARK_LEVELS = " .:-=+*#%@"


def ascii_series(values: Sequence[float], width: int = 1) -> str:
    """Tiny text sparkline of a numeric series (max normalized).

    The benchmark harnesses append these to the figure tables so a
    results file shows the curve shape at a glance.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    top = max(vals)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(vals) * width
    out = []
    for v in vals:
        idx = int(round((len(_SPARK_LEVELS) - 1) * max(v, 0.0) / top))
        out.append(_SPARK_LEVELS[idx] * width)
    return "".join(out)
