"""Analysis layer: dataset stand-ins, engagement study, visualization."""

from repro.analysis.datasets import (
    PAPER_STATS,
    Dataset,
    DatasetSpec,
    clear_cache,
    dataset_abbrevs,
    dataset_names,
    get_spec,
    load,
)
from repro.analysis.engagement import (
    EngagementStudy,
    mean_engagement_by_coreness,
    mean_engagement_by_position,
    pearson_correlation,
    synthesize_engagement,
)
from repro.analysis.report import analysis_report
from repro.analysis.stats import ascii_series, format_table, geometric_mean, speedup
from repro.analysis.visualization import ascii_tree, hierarchy_summary, to_dot

__all__ = [
    "Dataset",
    "DatasetSpec",
    "dataset_names",
    "dataset_abbrevs",
    "get_spec",
    "load",
    "clear_cache",
    "PAPER_STATS",
    "EngagementStudy",
    "synthesize_engagement",
    "mean_engagement_by_coreness",
    "mean_engagement_by_position",
    "pearson_correlation",
    "ascii_tree",
    "to_dot",
    "hierarchy_summary",
    "format_table",
    "geometric_mean",
    "speedup",
    "ascii_series",
    "analysis_report",
]
