"""Alias module: ``repro.analysis.sanitizer`` → :mod:`repro.sanitizer`.

The sanitizer lives in its own top-level package (it instruments the
parallel substrate, not the analysis pipeline), but is re-exported
here so analysis-side code and notebooks can reach it alongside the
other ``repro.analysis`` entry points.
"""

from repro.sanitizer import *  # noqa: F401,F403
from repro.sanitizer import __all__  # noqa: F401
