"""Scaled-down stand-ins for the paper's ten datasets (Table II).

The paper evaluates on ten real graphs between 11 million and 3.7
billion edges.  Those inputs are neither redistributable nor tractable
on this substrate, so each gets a deterministic synthetic stand-in that
preserves the *structural contrasts* the experiments depend on:

* relative ordering of ``m`` across the ten datasets;
* character of the degree/shell profile — social (BA-style heavy
  tails), collaboration/brain (dense planted communities), web crawls
  (skewed R-MAT with many isolated/low vertices, hence large ``|T|``);
* a planted clique per dataset scaled to the paper's ``kmax`` column,
  which both drives the dataset's degeneracy and makes the Table IV
  maximum-clique experiment meaningful (the paper's web graphs keep
  their maximum clique inside the densest core — so do these);
* FriendSter/Orkut-style graphs get homogeneous BA profiles: few
  shells, few tree nodes, one giant component (the paper blames
  FriendSter's cost on exactly that shape).

Every stand-in is generated from a fixed seed; ``load()`` caches the
graph, its coreness, and derived artifacts per process so benchmarks
and tests share one copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import UnknownDatasetError
from repro.graph.generators import (
    barabasi_albert,
    planted_partition,
    powerlaw_cluster,
    rmat,
)
from repro.graph.graph import Graph

__all__ = [
    "DatasetSpec",
    "Dataset",
    "dataset_names",
    "dataset_abbrevs",
    "get_spec",
    "load",
    "clear_cache",
    "PAPER_STATS",
]

#: Table II of the paper, for side-by-side reporting.
PAPER_STATS: dict[str, dict[str, float]] = {
    "as_skitter": {"n": 1_696_415, "m": 11_095_298, "davg": 13.1, "kmax": 111, "T": 902},
    "livejournal": {"n": 3_997_962, "m": 34_681_189, "davg": 17.3, "kmax": 360, "T": 1755},
    "hollywood": {"n": 1_069_126, "m": 56_306_653, "davg": 105.3, "kmax": 2208, "T": 678},
    "orkut": {"n": 3_072_441, "m": 117_185_083, "davg": 76.3, "kmax": 253, "T": 253},
    "human_jung": {"n": 784_262, "m": 267_844_669, "davg": 683.0, "kmax": 1200, "T": 4087},
    "arabic_2005": {"n": 22_744_080, "m": 639_999_458, "davg": 56.3, "kmax": 3247, "T": 28693},
    "it_2004": {"n": 41_291_594, "m": 1_150_725_436, "davg": 55.7, "kmax": 3224, "T": 53023},
    "friendster": {"n": 65_608_366, "m": 1_806_067_135, "davg": 55.1, "kmax": 304, "T": 450},
    "sk_2005": {"n": 50_636_154, "m": 1_949_412_601, "davg": 77.0, "kmax": 4510, "T": 14356},
    "uk_2007_05": {"n": 105_896_555, "m": 3_738_733_648, "davg": 70.6, "kmax": 5704, "T": 79318},
}


def _overlay_clique(base: Graph, size: int, seed: int) -> Graph:
    """Plant a ``size``-clique on random vertices of ``base``.

    Raises the graph's degeneracy to ``size - 1`` (when above the
    base's own kmax), mirroring the dense nuclei of the paper's web
    crawls, and plants a known dense region for the densest-subgraph
    and maximum-clique experiments.
    """
    rng = np.random.default_rng(seed)
    chosen = rng.choice(base.num_vertices, size=size, replace=False)
    clique_edges = [
        (int(chosen[i]), int(chosen[j]))
        for i in range(size)
        for j in range(i + 1, size)
    ]
    all_edges = np.vstack(
        [base.edge_array(), np.asarray(clique_edges, dtype=np.int64)]
    )
    return Graph.from_edges(all_edges, num_vertices=base.num_vertices)


def _attach_periphery(
    base: Graph, groups: int, seed: int, min_size: int = 3, max_size: int = 6
) -> Graph:
    """Attach many small cliques to random vertices of ``base``.

    Each group is a clique of ``min_size..max_size`` new vertices tied
    to a random base vertex through a fresh degree-2 *bridge* vertex.
    The bridge lies on no cycle, so its coreness is 1 — the clique's
    only path into the giant nucleus runs through a coreness-1 vertex,
    which keeps the clique a *separate* (size-1)-core with its own tree
    node.  This reproduces the dataset-to-dataset spread of the paper's
    ``|T|`` column: real social and brain networks owe their thousands
    of tree nodes to a sea of small peripheral cores around the nucleus.
    """
    rng = np.random.default_rng(seed)
    edges = [tuple(int(x) for x in row) for row in base.edge_array()]
    next_id = base.num_vertices
    for _ in range(groups):
        size = int(rng.integers(min_size, max_size + 1))
        members = list(range(next_id, next_id + size))
        bridge = next_id + size
        next_id += size + 1
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                edges.append((u, v))
        anchor = int(rng.integers(0, base.num_vertices))
        edges.append((members[0], bridge))
        edges.append((bridge, anchor))
    return Graph.from_edges(edges, num_vertices=next_id)


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one stand-in dataset."""

    name: str
    abbrev: str
    description: str
    factory: Callable[[], Graph]


@dataclass
class Dataset:
    """A loaded stand-in with its cached decomposition artifacts."""

    spec: DatasetSpec
    graph: Graph
    _coreness: np.ndarray | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def abbrev(self) -> str:
        return self.spec.abbrev

    @property
    def coreness(self) -> np.ndarray:
        """Cached Batagelj-Zaversnik coreness of the stand-in."""
        if self._coreness is None:
            from repro.core.decomposition import core_decomposition

            self._coreness = core_decomposition(self.graph)
        return self._coreness

    @property
    def kmax(self) -> int:
        return int(self.coreness.max()) if self.graph.num_vertices else 0

    def paper_stats(self) -> dict[str, float]:
        """The real dataset's Table II row, for reporting."""
        return dict(PAPER_STATS[self.spec.name])


def _spec(
    name: str, abbrev: str, description: str, factory: Callable[[], Graph]
) -> DatasetSpec:
    return DatasetSpec(
        name=name, abbrev=abbrev, description=description, factory=factory
    )


_SPECS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _SPECS[spec.name] = spec


_register(_spec(
    "as_skitter", "AS",
    "internet topology: power-law with clustering, shallow cores",
    lambda: _attach_periphery(_overlay_clique(powerlaw_cluster(900, 4, 0.30, seed=101), 13, 1101), 90, 2101),
))
_register(_spec(
    "livejournal", "LJ",
    "social network: preferential attachment, moderate degeneracy",
    lambda: _attach_periphery(_overlay_clique(barabasi_albert(950, 8, seed=102), 20, 1102), 170, 2102),
))
_register(_spec(
    "hollywood", "H",
    "collaboration network: dense planted communities, deep nucleus, few tree nodes",
    lambda: _attach_periphery(
        _overlay_clique(planted_partition(12, 60, 0.36, 0.004, seed=103), 42, 1103),
        65, 2103,
    ),
))
_register(_spec(
    "orkut", "O",
    "social network: homogeneous heavy BA profile, very few shells/tree nodes",
    lambda: _attach_periphery(_overlay_clique(barabasi_albert(1650, 8, seed=104), 18, 1104), 22, 2104),
))
_register(_spec(
    "human_jung", "HJ",
    "brain network: very dense planted blocks, deep nucleus",
    lambda: _attach_periphery(
        _overlay_clique(planted_partition(8, 80, 0.50, 0.010, seed=105), 34, 1105),
        400, 2105,
    ),
))
_register(_spec(
    "arabic_2005", "A",
    "web crawl: skewed R-MAT, many low-coreness vertices, large |T|",
    lambda: _overlay_clique(rmat(11, 13, seed=106), 46, 1106),
))
_register(_spec(
    "it_2004", "IT",
    "web crawl: larger skewed R-MAT, large |T|",
    lambda: _overlay_clique(rmat(12, 7, seed=107), 45, 1107),
))
_register(_spec(
    "friendster", "FS",
    "social network: giant homogeneous BA, smallest |T|, giant components",
    lambda: _attach_periphery(_overlay_clique(barabasi_albert(3450, 8, seed=108), 19, 1108), 42, 2108),
))
_register(_spec(
    "sk_2005", "SK",
    "web crawl: dense skewed R-MAT, deepest nucleus but one",
    lambda: _overlay_clique(rmat(12, 9, seed=109), 52, 1109),
))
_register(_spec(
    "uk_2007_05", "UK",
    "web crawl: largest stand-in, deepest nucleus, largest |T|",
    lambda: _attach_periphery(_overlay_clique(rmat(12, 11, seed=110), 58, 1110), 400, 2110),
))


def dataset_names() -> list[str]:
    """Stand-in names in the paper's Table II order (ascending m)."""
    return list(_SPECS)


def dataset_abbrevs() -> dict[str, str]:
    """name -> paper abbreviation."""
    return {name: spec.abbrev for name, spec in _SPECS.items()}


def get_spec(name: str) -> DatasetSpec:
    """Spec by name or abbreviation."""
    if name in _SPECS:
        return _SPECS[name]
    for spec in _SPECS.values():
        if spec.abbrev == name:
            return spec
    raise UnknownDatasetError(
        f"unknown dataset {name!r}; known: {dataset_names()}"
    )


_CACHE: dict[str, Dataset] = {}


def load(name: str) -> Dataset:
    """Load (and cache) a stand-in dataset by name or abbreviation."""
    spec = get_spec(name)
    if spec.name not in _CACHE:
        _CACHE[spec.name] = Dataset(spec=spec, graph=spec.factory())
    return _CACHE[spec.name]


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to control memory)."""
    _CACHE.clear()
