"""One-shot textual analysis report for a graph.

Bundles what a practitioner looks at first: size statistics, the
coreness profile, the hierarchy's shape, the best community under each
registered metric, and the densest-core summary — rendered as plain
text for terminals and logs.  Used by ``python -m repro report``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import format_table
from repro.analysis.visualization import hierarchy_summary
from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool
from repro.pipeline import decompose
from repro.search.densest import pbks_densest
from repro.search.metrics import metric_names
from repro.search.pbks import pbks_search
from repro.search.preprocessing import preprocess_neighbor_counts

__all__ = ["analysis_report"]


def analysis_report(
    graph: Graph,
    threads: int = 4,
    metrics: list[str] | None = None,
) -> str:
    """Render the full analysis report for ``graph``.

    ``metrics`` defaults to every registered community metric; the
    preprocessing pass is shared across all of them.
    """
    deco = decompose(graph, threads=threads)
    coreness = deco.coreness
    hcd = deco.hcd
    lines: list[str] = []

    lines.append("== graph ==")
    lines.append(f"vertices       : {graph.num_vertices}")
    lines.append(f"edges          : {graph.num_edges}")
    lines.append(f"average degree : {graph.average_degree():.2f}")
    kmax = int(coreness.max()) if graph.num_vertices else 0
    lines.append(f"kmax           : {kmax}")
    lines.append("")

    lines.append("== coreness profile ==")
    if graph.num_vertices:
        hist = np.bincount(coreness)
        for k, count in enumerate(hist):
            if count:
                bar = "#" * min(int(60 * count / hist.max()), 60)
                lines.append(f"  k={k:4d}: {count:6d} {bar}")
    lines.append("")

    lines.append("== hierarchy ==")
    lines.append(hierarchy_summary(hcd))
    lines.append("")

    lines.append("== best community per metric ==")
    pool = SimulatedPool(threads=threads)
    counts = preprocess_neighbor_counts(graph, coreness, pool)
    rows = []
    for name in metrics or metric_names():
        result = pbks_search(
            graph, coreness, hcd, name, pool,
            counts=counts, rank_result=deco.rank_result,
        )
        rows.append(
            [
                name,
                result.best_k,
                f"{result.best_score:.4f}",
                result.best_members().size,
            ]
        )
    lines.append(format_table(["metric", "best k", "score", "|S|"], rows))
    lines.append("")

    lines.append("== densest core (PBKS-D) ==")
    dens = pbks_densest(graph, coreness, hcd, pool, counts=counts)
    lines.append(
        f"average degree {dens.average_degree:.3f} over {dens.size} vertices "
        f"({100 * dens.size / max(graph.num_vertices, 1):.2f}% of the graph)"
    )
    return "\n".join(lines)
