"""Parallel bottom-up tree accumulation (Sevilgen, Aluru & Futamura).

PBKS (Algorithm 3, lines 6-9) sums per-tree-node primary values from the
leaves of the HCD towards the roots.  The paper notes this is "efficiently
computed by parallel tree accumulation" [36]; this module provides that
primitive on the simulated scheduler: nodes are grouped by depth and each
depth level is one ``parallel_for`` region whose workers add their node's
values into the parent's slot atomically.

The forest is given as a ``parents`` array (``-1`` marks roots).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import HierarchyError
from repro.parallel.atomics import AtomicArray
from repro.parallel.scheduler import SimulatedPool
from repro.sanitizer.memcheck import san_empty

__all__ = ["tree_depths", "tree_accumulate", "tree_accumulate_euler"]


def tree_depths(parents: Sequence[int]) -> np.ndarray:
    """Depth of each node in the forest (roots have depth 0).

    Raises :class:`HierarchyError` on cycles or out-of-range parents.
    """
    parents = np.asarray(parents, dtype=np.int64)
    n = parents.size
    depths = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if depths[start] != -1:
            continue
        path = []
        node = start
        while node != -1 and depths[node] == -1:
            path.append(node)
            nxt = int(parents[node])
            if nxt != -1 and not 0 <= nxt < n:
                raise HierarchyError(f"parent {nxt} of node {node} out of range")
            if len(path) > n:
                raise HierarchyError("cycle detected in parent links")
            node = nxt
        base = 0 if node == -1 else int(depths[node])
        for offset, member in enumerate(reversed(path), start=1):
            depths[member] = base + offset
        if node == -1 and path:
            # re-anchor: the last element of path is a root at depth 0
            root_depth = depths[path[-1]]
            for member in path:
                depths[member] -= root_depth
    return depths


def tree_accumulate(
    pool: SimulatedPool,
    parents: Sequence[int],
    values: np.ndarray,
    label: str = "tree_accumulate",
) -> np.ndarray:
    """Sum ``values`` up the forest; returns the accumulated copy.

    ``values`` has one row per node (or is 1-D); on return, each node's
    row holds the sum over the node's entire subtree, i.e. exactly the
    primary values of the node's *original k-core* when rows start as
    per-tree-node contributions (PBKS Example 6).

    Each depth level is a parallel region; the adds into parents are
    charged as atomics, so sibling fan-in contention is modelled.
    """
    parents = np.asarray(parents, dtype=np.int64)
    n = parents.size
    vals = np.array(values, dtype=np.float64, copy=True)
    flat = vals.ndim == 1
    if flat:
        vals = vals.reshape(n, 1)
    if vals.shape[0] != n:
        raise HierarchyError(
            f"values has {vals.shape[0]} rows for {n} nodes"
        )
    if n == 0:
        return vals.reshape(-1) if flat else vals

    depths = tree_depths(parents)
    width = vals.shape[1]
    sink = AtomicArray(n * width, dtype=np.float64, name=label)
    sink.data = vals.reshape(-1)  # accumulate in place, with charging

    order = np.argsort(depths, kind="stable")
    max_depth = int(depths.max())
    # Process deepest level first; each level in parallel.
    level_start = np.searchsorted(depths[order], np.arange(max_depth + 2))
    for depth in range(max_depth, 0, -1):
        level_nodes = order[level_start[depth] : level_start[depth + 1]]

        def push_to_parent(node: int, ctx) -> None:
            parent = int(parents[node])
            for col in range(width):
                # plain read of the child's row (depth-d rows are only
                # written at the *next* level's region, so the read set
                # and the atomic write set never overlap within a level)
                ctx.read((label, node * width + col))
                sink.add(
                    ctx, parent * width + col, vals[node, col]
                )

        pool.parallel_for(
            [int(v) for v in level_nodes],
            push_to_parent,
            label=f"{label}:depth{depth}",
        )
        vals = sink.data.reshape(n, width)
    result = sink.data.reshape(n, width)
    return result.reshape(-1) if flat else result


def tree_accumulate_euler(
    pool: SimulatedPool,
    parents: Sequence[int],
    values: np.ndarray,
    label: str = "tree_accumulate_euler",
) -> np.ndarray:
    """Subtree sums via Euler tour + parallel prefix scan.

    The alternative Sevilgen-style accumulation with
    ``O(log n)``-round span instead of the depth-synchronous variant's
    ``O(depth)`` rounds: a preorder numbering makes every subtree a
    contiguous range, a Hillis-Steele parallel scan produces prefix
    sums in ``ceil(log2 n)`` regions, and each node's subtree total is
    one range difference.  Results are identical to
    :func:`tree_accumulate` (asserted by the tests); the ablation
    benchmark compares the two region counts on deep forests.
    """
    parents = np.asarray(parents, dtype=np.int64)
    n = parents.size
    vals = np.array(values, dtype=np.float64, copy=True)
    flat = vals.ndim == 1
    if flat:
        vals = vals.reshape(n, 1)
    if vals.shape[0] != n:
        raise HierarchyError(f"values has {vals.shape[0]} rows for {n} nodes")
    if n == 0:
        return vals.reshape(-1) if flat else vals
    tree_depths(parents)  # validates parents (cycles, range)

    # Preorder numbering + subtree extents (one serial O(n) pass).
    children: list[list[int]] = [[] for _ in range(n)]
    roots = []
    for node in range(n):
        pa = int(parents[node])
        if pa >= 0:
            children[pa].append(node)
        else:
            roots.append(node)
    preorder = san_empty(n, np.int64, name=f"{label}:preorder")  # position -> node
    start = san_empty(n, np.int64, name=f"{label}:start")  # node -> first position
    end = san_empty(n, np.int64, name=f"{label}:end")  # node -> one past last
    cursor = 0
    for root in roots:
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                end[node] = cursor
                continue
            start[node] = cursor
            preorder[cursor] = node
            cursor += 1
            stack.append((node, True))
            for child in reversed(children[node]):
                stack.append((child, False))
    with pool.serial_region(f"{label}:tour") as ctx:
        ctx.charge(n)

    # Hillis-Steele inclusive scan over values in preorder, one region
    # per doubling stride.
    width = vals.shape[1]
    prefix = vals[preorder].copy()
    stride = 1
    while stride < n:
        source = prefix.copy()

        def shift_add(i: int, ctx) -> None:
            # source is a pre-region snapshot (read-only here); each
            # position owns its prefix row, so writes are disjoint
            ctx.read((f"{label}:source{stride}", int(i - stride)), 0.0)
            ctx.write((f"{label}:prefix", int(i)), width)
            prefix[i] += source[i - stride]

        pool.parallel_for(
            list(range(stride, n)),
            shift_add,
            label=f"{label}:scan{stride}",
        )
        stride *= 2

    # subtree sum of node = prefix[end-1] - prefix[start-1]
    out = san_empty(vals.shape, vals.dtype, name=f"{label}:out")

    def subtree_total(node: int, ctx) -> None:
        # prefix is frozen after the scan regions; each node owns its
        # output row.  start/end are tour positions in [0, n] by
        # construction (every node is pushed exactly once), so the
        # prefix reads stay in bounds.
        hi = prefix[end[node] - 1]  # sani: ok - tour bounds proof above
        lo = prefix[start[node] - 1] if start[node] > 0 else 0.0  # sani: ok - tour bounds
        total = hi - lo
        ctx.write((f"{label}:out", int(node)), width, value=total)
        out[node] = total

    pool.parallel_for(
        list(range(n)), subtree_total, label=f"{label}:ranges"
    )
    return out.reshape(-1) if flat else out
