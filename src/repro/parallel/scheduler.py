"""Deterministic simulated-multicore scheduler.

:class:`SimulatedPool` is the execution substrate substituting for the
paper's 40-core OpenMP environment (see DESIGN.md Section 1).  Worker
code runs *for real* — results are exactly what a serial execution
produces — while a simulated clock advances according to the cost model:

* a ``parallel_for`` region partitions its items over ``threads``
  virtual threads, runs each partition, and advances the clock by the
  *maximum* per-thread cost plus spawn/barrier overhead and a
  contention penalty for atomics on shared locations;
* a ``serial_region`` advances the clock by exactly the work charged.

Because the virtual threads are executed one after another in a fixed
order, every run is deterministic: algorithms must therefore be written
so that their *output* does not depend on interleaving (the same
property the paper's lock-free algorithms guarantee), and the test
suite verifies output equality across thread counts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Sequence, TypeVar

from repro.errors import SchedulerError
from repro.parallel.context import ThreadContext
from repro.parallel.cost_model import DEFAULT_COST_MODEL, CostModel

__all__ = ["SimulatedPool", "RegionStats"]

T = TypeVar("T")
R = TypeVar("R")


class RegionStats:
    """Accounting record of one completed parallel region."""

    __slots__ = (
        "label",
        "threads",
        "items",
        "work_total",
        "work_max",
        "atomic_ops",
        "contention_penalty",
        "elapsed",
        "kind",
    )

    def __init__(
        self,
        label: str,
        threads: int,
        items: int,
        work_total: int,
        work_max: int,
        atomic_ops: int,
        contention_penalty: float,
        elapsed: float,
        kind: str = "parallel",
    ) -> None:
        self.label = label
        self.threads = threads
        self.items = items
        self.work_total = work_total
        self.work_max = work_max
        self.atomic_ops = atomic_ops
        self.contention_penalty = contention_penalty
        self.elapsed = elapsed
        self.kind = kind

    def __repr__(self) -> str:
        return (
            f"RegionStats({self.label!r}, p={self.threads}, items={self.items}, "
            f"work={self.work_total}, elapsed={self.elapsed:.0f})"
        )


class SimulatedPool:
    """A pool of ``threads`` virtual threads with a simulated clock.

    Parameters
    ----------
    threads:
        Number of virtual threads; 1 reproduces serial execution (plus
        region overheads, as a real 1-thread OpenMP run would pay).
    cost_model:
        Constants converting charges to simulated time.
    """

    def __init__(
        self,
        threads: int = 1,
        cost_model: CostModel | None = None,
    ) -> None:
        if threads < 1:
            raise SchedulerError(f"threads must be >= 1, got {threads}")
        self.threads = int(threads)
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self._clock = 0.0
        self._regions: list[RegionStats] = []
        self._in_region = False
        self._observer: object | None = None
        self._phase_stack: list[str] = []

    # ------------------------------------------------------------------
    # observation (race detection / tracing)
    # ------------------------------------------------------------------

    def set_observer(self, observer: object | None) -> None:
        """Install a region observer (e.g. a sanitizer race detector).

        The observer receives ``on_region_begin(label, contexts)``
        before any worker runs (typically enabling event recording on
        each :class:`ThreadContext`) and ``on_region_end(label,
        contexts)`` after the region's accounting closes — the barrier
        point, and therefore the happens-before synchronization edge.
        Pass ``None`` to detach.
        """
        self._observer = observer

    @property
    def observer(self) -> object | None:
        """The attached region observer, or ``None``."""
        return self._observer

    # ------------------------------------------------------------------
    # phases (profiling attribution)
    # ------------------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Group subsequent regions under a named algorithm phase.

        Phases are *attribution only*: they never charge the clock.
        Kernels annotate their rounds (``phcd:level-3``, ``pbks:score``)
        so that a profiling observer (SimProf's
        :class:`~repro.profiler.tracer.SpanTracer`) can nest region
        records under algorithm structure.  Phases nest; regions opened
        inside run under the innermost phase.  With no observer
        attached the body costs one list append/pop.

        An observer providing ``on_phase_begin(name)`` /
        ``on_phase_end(name)`` is notified at the boundaries; observers
        without those hooks (e.g. the race detector) are unaffected.
        """
        if self._in_region:
            raise SchedulerError("cannot open a phase inside a region")
        self._phase_stack.append(str(name))
        observer = self._observer
        if observer is not None:
            hook = getattr(observer, "on_phase_begin", None)
            if hook is not None:
                hook(name)
        try:
            yield
        finally:
            # reset() inside the block clears the stack; don't over-pop
            if self._phase_stack:
                self._phase_stack.pop()
            observer = self._observer
            if observer is not None:
                hook = getattr(observer, "on_phase_end", None)
                if hook is not None:
                    hook(name)

    @property
    def phase_stack(self) -> tuple[str, ...]:
        """The currently open phases, outermost first."""
        return tuple(self._phase_stack)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------

    @property
    def clock(self) -> float:
        """Total simulated time elapsed on this pool."""
        return self._clock

    @property
    def regions(self) -> list[RegionStats]:
        """Accounting records of every completed region, in order."""
        return list(self._regions)

    @property
    def last_region(self) -> RegionStats | None:
        """The most recently completed region's record, or ``None``."""
        return self._regions[-1] if self._regions else None

    def reset(self, detach_observer: bool = True) -> None:
        """Restore the pool to construction state.

        Zeroes the clock, drops region records, clears any open phase
        stack, and — by default — detaches the region observer, so a
        reused pool cannot silently keep stale tracer/sanitizer state
        (an observer attached before ``reset()`` would otherwise keep
        receiving events and mixing runs).  Pass
        ``detach_observer=False`` to deliberately keep an observer
        across runs, e.g. to accumulate race reports over several
        workloads.
        """
        self._clock = 0.0
        self._regions = []
        self._in_region = False
        self._phase_stack = []
        if detach_observer:
            self._observer = None

    def mark(self) -> float:
        """Current clock value, for phase timing via subtraction."""
        return self._clock

    def elapsed_since(self, mark: float) -> float:
        """Simulated time since a previous :meth:`mark`."""
        return self._clock - mark

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------

    def partition(self, count: int) -> list[range]:
        """Static contiguous split of ``range(count)`` over the threads.

        Mirrors Algorithm 1's "distribute vertices to V_1..V_pmax in
        ascending vertex id".  Threads receive near-equal slices; the
        first ``count % threads`` slices are one longer.
        """
        p = self.threads
        base, extra = divmod(count, p)
        ranges: list[range] = []
        start = 0
        for t in range(p):
            size = base + (1 if t < extra else 0)
            ranges.append(range(start, start + size))
            start += size
        return ranges

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------

    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T, ThreadContext], R],
        label: str = "parallel_for",
        chunking: str = "static",
        grain: int = 64,
    ) -> list[R]:
        """Run ``fn(item, ctx)`` for every item; return results in order.

        ``chunking='static'`` gives each virtual thread one contiguous
        slice (OpenMP ``schedule(static)``); ``'dynamic'`` deals
        ``grain``-sized chunks round-robin (``schedule(dynamic, grain)``)
        which improves simulated load balance on skewed work.
        """
        if self._in_region:
            raise SchedulerError("nested parallel regions are not supported")
        if chunking not in ("static", "dynamic"):
            raise SchedulerError(f"unknown chunking {chunking!r}")
        count = len(items)
        results: list[R] = [None] * count  # type: ignore[list-item]
        contexts = [
            ThreadContext(t, self.cost_model) for t in range(self.threads)
        ]
        if chunking == "static":
            assignment = self.partition(count)
        else:
            assignment = self._dynamic_assignment(count, grain)
        observer = self._observer
        if observer is not None:
            observer.on_region_begin(label, contexts)
        self._in_region = True
        try:
            for t, idx_range in enumerate(assignment):
                ctx = contexts[t]
                for i in idx_range:
                    results[i] = fn(items[i], ctx)
        finally:
            self._in_region = False
        self._close_region(label, count, contexts)
        if observer is not None:
            observer.on_region_end(label, contexts)
        return results

    def _dynamic_assignment(self, count: int, grain: int) -> list[list[int]]:
        """Deal ``grain``-sized chunks of indices round-robin to threads."""
        if grain < 1:
            raise SchedulerError("grain must be >= 1")
        buckets: list[list[int]] = [[] for _ in range(self.threads)]
        chunk_start = 0
        t = 0
        while chunk_start < count:
            chunk_end = min(chunk_start + grain, count)
            buckets[t].extend(range(chunk_start, chunk_end))
            chunk_start = chunk_end
            t = (t + 1) % self.threads
        return buckets

    def _close_region(
        self, label: str, items: int, contexts: list[ThreadContext]
    ) -> None:
        """Fold per-thread charges into a region record and the clock."""
        cost = self.cost_model
        work_total = sum(ctx.work for ctx in contexts)
        work_max = max(ctx.work for ctx in contexts)
        atomic_ops = sum(ctx.atomic_ops for ctx in contexts)
        local_max = max(ctx.local_time for ctx in contexts)
        penalty = self._contention_penalty(contexts)
        elapsed = (
            local_max
            + penalty
            + cost.spawn_cost * self.threads
            + cost.barrier_cost
        )
        self._clock += elapsed
        self._regions.append(
            RegionStats(
                label=label,
                threads=self.threads,
                items=items,
                work_total=work_total,
                work_max=work_max,
                atomic_ops=atomic_ops,
                contention_penalty=penalty,
                elapsed=elapsed,
            )
        )

    def _contention_penalty(self, contexts: list[ThreadContext]) -> float:
        """Serialized time for atomics shared across threads.

        For each location, the ops issued beyond the single busiest
        thread's share must queue behind it; each queued op costs
        ``contended_atomic_cost`` on the region's critical path.
        """
        if self.threads == 1:
            return 0.0
        totals: dict[object, int] = {}
        maxima: dict[object, int] = {}
        for ctx in contexts:
            for loc, ops in ctx.atomic_locations.items():
                totals[loc] = totals.get(loc, 0) + ops
                if ops > maxima.get(loc, 0):
                    maxima[loc] = ops
        queued = sum(total - maxima[loc] for loc, total in totals.items())
        return queued * self.cost_model.contended_atomic_cost

    @contextmanager
    def serial_region(self, label: str = "serial") -> Iterator[ThreadContext]:
        """Charge work from purely sequential code onto the clock.

        No spawn/barrier overhead is applied — this is the accounting
        path for the serial baselines (LCPS, BKS) and for sequential
        stretches inside parallel algorithms.
        """
        if self._in_region:
            raise SchedulerError("nested regions are not supported")
        ctx = ThreadContext(0, self.cost_model)
        observer = self._observer
        if observer is not None:
            observer.on_region_begin(label, [ctx])
        self._in_region = True
        try:
            yield ctx
        finally:
            self._in_region = False
        # close accounting first so observers see the finished record
        # (the documented on_region_end contract, same as parallel_for)
        self._clock += ctx.local_time
        self._regions.append(
            RegionStats(
                label=label,
                threads=1,
                items=0,
                work_total=ctx.work,
                work_max=ctx.work,
                atomic_ops=ctx.atomic_ops,
                contention_penalty=0.0,
                elapsed=ctx.local_time,
                kind="serial",
            )
        )
        if observer is not None:
            observer.on_region_end(label, [ctx])

    def __repr__(self) -> str:
        return f"SimulatedPool(threads={self.threads}, clock={self._clock:.0f})"
