"""Cost model for the simulated multicore scheduler.

The paper benchmarks C++/OpenMP code on a 40-core Xeon.  This machine
has one core and CPython's GIL, so wall-clock speedups are not
observable; instead every algorithm *charges* its abstract operations
(array reads/writes, union-find ops, atomic updates) to a
:class:`CostModel`, and :class:`~repro.parallel.scheduler.SimulatedPool`
converts per-thread charges into a simulated elapsed time:

``region_time = max(per-thread work) * op_cost
              + contention penalty on shared atomic locations
              + spawn_cost * threads + barrier_cost``

The constants below are fixed once for the whole repository (they are
*not* fitted per dataset or per experiment); DESIGN.md Section 5
describes the calibration.  The per-dataset and per-algorithm variation
in every reproduced table comes from real operation counts of real
algorithm executions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Constants converting operation charges to simulated nanoseconds.

    Attributes
    ----------
    op_cost:
        Simulated time per charged unit of ordinary work (one array
        access / comparison / pointer chase).
    atomic_cost:
        Surcharge per atomic operation (uncontended CAS / fetch-add),
        on top of its ``op_cost`` charge.
    contended_atomic_cost:
        Serialized cost per atomic operation that loses the cache line
        to another thread; added to the region's critical path.
    spawn_cost:
        Per-thread cost of launching work in a parallel region (OpenMP
        fork overhead).
    barrier_cost:
        Cost of the implicit barrier closing each parallel region.
    """

    op_cost: float = 1.0
    atomic_cost: float = 2.0
    contended_atomic_cost: float = 8.0
    spawn_cost: float = 0.5
    barrier_cost: float = 25.0

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every constant multiplied by ``factor``."""
        return CostModel(
            op_cost=self.op_cost * factor,
            atomic_cost=self.atomic_cost * factor,
            contended_atomic_cost=self.contended_atomic_cost * factor,
            spawn_cost=self.spawn_cost * factor,
            barrier_cost=self.barrier_cost * factor,
        )


#: The calibration used by every benchmark in this repository.
DEFAULT_COST_MODEL = CostModel()
