"""Per-thread accounting context for the simulated scheduler.

A :class:`ThreadContext` is handed to every worker function run inside
a :meth:`SimulatedPool.parallel_for` region (and to serial code via
:meth:`SimulatedPool.serial_region`).  Workers call :meth:`charge` for
ordinary operations and :meth:`atomic` for atomic read-modify-write
operations on a named shared location.  The scheduler turns the
recorded charges into simulated time; see
:mod:`repro.parallel.cost_model`.
"""

from __future__ import annotations

from repro.parallel.cost_model import CostModel

__all__ = ["ThreadContext", "CACHELINE_WORDS"]

#: Atomic locations are coalesced at this granularity to model false
#: sharing: two threads hitting nearby array slots contend for the same
#: cache line.
CACHELINE_WORDS = 8


class ThreadContext:
    """Accumulates the simulated cost of one virtual thread.

    Attributes
    ----------
    thread_id:
        Index of the virtual thread within its region (0-based).
    work:
        Ordinary work units charged so far.
    atomic_ops:
        Number of atomic operations charged so far.
    """

    __slots__ = ("thread_id", "work", "atomic_ops", "_cost", "_atomic_locations")

    def __init__(self, thread_id: int, cost_model: CostModel) -> None:
        self.thread_id = thread_id
        self.work = 0.0
        self.atomic_ops = 0
        self._cost = cost_model
        #: location-key -> number of atomic ops by this thread
        self._atomic_locations: dict[object, int] = {}

    def charge(self, units: float = 1) -> None:
        """Charge ``units`` of ordinary work.

        The unit is one *random-access* memory operation (pointer
        chase, priority-slot update).  Sequential adjacency scans are
        cheaper per element (hardware prefetch) and charge fractional
        units; algorithm modules document their constants.
        """
        self.work += units

    def atomic(
        self, location: object, units: int = 1, contended: bool = True
    ) -> None:
        """Charge ``units`` atomic operations on a shared ``location``.

        ``location`` is any hashable key identifying the memory being
        updated; array-based structures should coalesce indices to
        cache-line granularity (see :data:`CACHELINE_WORDS`).  The
        scheduler uses cross-thread location overlap to compute the
        region's contention penalty.

        ``contended=False`` marks commutative relaxed accumulation
        (hardware fetch-add): it pays the atomic surcharge but does not
        serialize on the critical path — only CAS-style operations
        (links, publications, insert-if-absent) queue behind each other.
        """
        self.atomic_ops += units
        self.work += units  # the op itself is also work
        if contended:
            self._atomic_locations[location] = (
                self._atomic_locations.get(location, 0) + units
            )

    @property
    def local_time(self) -> float:
        """Simulated time of this thread, excluding contention effects."""
        return (
            self.work * self._cost.op_cost
            + self.atomic_ops * self._cost.atomic_cost
        )

    @property
    def atomic_locations(self) -> dict[object, int]:
        """Read-only view of this thread's atomic-location histogram."""
        return self._atomic_locations

    def __repr__(self) -> str:
        return (
            f"ThreadContext(t={self.thread_id}, work={self.work}, "
            f"atomics={self.atomic_ops})"
        )
