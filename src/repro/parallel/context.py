"""Per-thread accounting context for the simulated scheduler.

A :class:`ThreadContext` is handed to every worker function run inside
a :meth:`SimulatedPool.parallel_for` region (and to serial code via
:meth:`SimulatedPool.serial_region`).  Workers call :meth:`charge` for
ordinary operations and :meth:`atomic` for atomic read-modify-write
operations on a named shared location.  The scheduler turns the
recorded charges into simulated time; see
:mod:`repro.parallel.cost_model`.

Memory-access recording
-----------------------
When a :class:`~repro.sanitizer.detector.RaceDetector` is attached to
the pool, each context additionally records a *memory-access event
stream*: plain reads/writes (:meth:`read`, :meth:`write`) and atomic
accesses (:meth:`atomic`, :meth:`atomic_load`) on per-word location
keys.  The detector replays the stream against a vector-clock
happens-before model to flag unsynchronized conflicting accesses —
races that the deterministic sequential execution of virtual threads
would otherwise mask forever.  Recording is off by default
(``_events is None``) and costs one predicate test per charge site.

Event kinds are small ints so hot paths append plain tuples:

========================  =====================================================
:data:`EV_READ`           plain (unsynchronized) read
:data:`EV_WRITE`          plain (unsynchronized) write
:data:`EV_ATOMIC_READ`    atomic load (relaxed/acquire read, synchronized)
:data:`EV_ATOMIC_WRITE`   atomic RMW / store / CAS (synchronized)
========================  =====================================================
"""

from __future__ import annotations

from repro.parallel.cost_model import CostModel

__all__ = [
    "ThreadContext",
    "CACHELINE_WORDS",
    "EV_READ",
    "EV_WRITE",
    "EV_ATOMIC_READ",
    "EV_ATOMIC_WRITE",
    "EVENT_NAMES",
]

#: Atomic locations are coalesced at this granularity to model false
#: sharing: two threads hitting nearby array slots contend for the same
#: cache line.
CACHELINE_WORDS = 8

EV_READ = 0
EV_WRITE = 1
EV_ATOMIC_READ = 2
EV_ATOMIC_WRITE = 3

#: Human-readable names of the event kinds, indexed by kind.
EVENT_NAMES = ("read", "write", "atomic read", "atomic write")


class ThreadContext:
    """Accumulates the simulated cost of one virtual thread.

    Attributes
    ----------
    thread_id:
        Index of the virtual thread within its region (0-based).
    work:
        Ordinary work units charged so far.
    atomic_ops:
        Number of atomic operations charged so far.
    """

    __slots__ = (
        "thread_id",
        "work",
        "atomic_ops",
        "_cost",
        "_atomic_locations",
        "_events",
        "_memcheck",
        "proven",
        "barrier_units",
        "elided",
    )

    def __init__(self, thread_id: int, cost_model: CostModel) -> None:
        self.thread_id = thread_id
        self.work = 0.0
        self.atomic_ops = 0
        self._cost = cost_model
        #: location-key -> number of atomic ops by this thread
        self._atomic_locations: dict[object, int] = {}
        #: memory-access event stream (None = recording disabled)
        self._events: list[tuple[int, object]] | None = None
        #: SimCheck read/write barrier (None = memcheck disabled).  Set
        #: by a :class:`~repro.sanitizer.memcheck.MemChecker` observer
        #: at region begin; every recorded access is then also checked
        #: *immediately* against the poisoned-allocation shadow state,
        #: so uninitialized reads and out-of-bounds indices report the
        #: exact serial order the substrate executed.  Charge-free.
        self._memcheck: object | None = None
        #: SimProve fast path.  ``None`` = no certificate; ``True`` =
        #: every access of this region is statically proven in-bounds;
        #: a ``frozenset`` = only accesses to these location names are
        #: proven.  Proven accesses skip the memcheck barrier (and its
        #: modeled ``barrier_units`` charge) — the certificate already
        #: established what the barrier would check dynamically.
        self.proven: object | None = None
        #: Modeled sim-clock cost of one memcheck barrier crossing.
        #: Zero by default so attaching a checker never perturbs the
        #: cost model; ``bench_prove`` sets it to expose the savings
        #: that certificate-driven elision buys.
        self.barrier_units: float = 0.0
        #: Number of barrier crossings elided via the certificate.
        self.elided: int = 0

    def _certified(self, location: object) -> bool:
        """True when the active certificate covers ``location``."""
        p = self.proven
        if p is None:
            return False
        if p is True:
            return True
        name = (
            location[0]
            if type(location) is tuple and location
            else location
        )
        return name in p

    def charge(self, units: float = 1) -> None:
        """Charge ``units`` of ordinary work.

        The unit is one *random-access* memory operation (pointer
        chase, priority-slot update).  Sequential adjacency scans are
        cheaper per element (hardware prefetch) and charge fractional
        units; algorithm modules document their constants.
        """
        self.work += units

    def atomic(
        self,
        location: object,
        units: int = 1,
        contended: bool = True,
        word: object | None = None,
    ) -> None:
        """Charge ``units`` atomic operations on a shared ``location``.

        ``location`` is any hashable key identifying the memory being
        updated; array-based structures should coalesce indices to
        cache-line granularity (see :data:`CACHELINE_WORDS`).  The
        scheduler uses cross-thread location overlap to compute the
        region's contention penalty.

        ``contended=False`` marks commutative relaxed accumulation
        (hardware fetch-add): it pays the atomic surcharge but does not
        serialize on the critical path — only CAS-style operations
        (links, publications, insert-if-absent) queue behind each other.

        ``word`` optionally names the exact machine word for the race
        detector.  Contention is modelled at cache-line granularity
        (false sharing), but two atomics on *different* words of one
        line do not race — so detection uses the word key when given
        and falls back to ``location``.
        """
        self.atomic_ops += units
        self.work += units  # the op itself is also work
        if contended:
            self._atomic_locations[location] = (
                self._atomic_locations.get(location, 0) + units
            )
        if self._events is not None:
            self._events.append(
                (EV_ATOMIC_WRITE, location if word is None else word)
            )
        if self._memcheck is not None:
            key = location if word is None else word
            if self._certified(key):
                self.elided += 1
            else:
                if self.barrier_units:
                    self.work += self.barrier_units
                self._memcheck.on_write_event(key, None, self.thread_id)

    # ------------------------------------------------------------------
    # recorded plain / atomic accesses (sanitizer-visible)
    # ------------------------------------------------------------------

    def read(self, location: object, units: float = 1.0) -> None:
        """Charge a plain read of the shared word ``location``.

        Equivalent to :meth:`charge` for the cost model, but visible to
        the race detector as an *unsynchronized* read.  Pass
        ``units=0.0`` when the surrounding code already charged the
        access and only the event matters.
        """
        self.work += units
        if self._events is not None:
            self._events.append((EV_READ, location))
        if self._memcheck is not None:
            if self._certified(location):
                self.elided += 1
            else:
                if self.barrier_units:
                    self.work += self.barrier_units
                self._memcheck.on_read_event(location, self.thread_id)

    def write(
        self, location: object, units: float = 1.0, value: object = None
    ) -> None:
        """Charge a plain write of the shared word ``location``.

        The write itself is *not* synchronized: the detector flags it
        against any concurrent access of the same word.  Kernels use
        this for stores whose disjointness across threads is a proof
        obligation (per-item output slots, permutation scatters).

        ``value`` optionally carries the value being stored so the
        memcheck sanitizer can track numeric soundness — a non-finite
        ``value`` records the writing region/phase as the NaN origin.
        Pass it at score-producing sites; it is ignored (and free)
        when no checker is attached.
        """
        self.work += units
        if self._events is not None:
            self._events.append((EV_WRITE, location))
        if self._memcheck is not None:
            if self._certified(location):
                self.elided += 1
            else:
                if self.barrier_units:
                    self.work += self.barrier_units
                self._memcheck.on_write_event(
                    location, value, self.thread_id
                )

    def atomic_load(self, location: object, units: float = 1.0) -> None:
        """Charge an atomic (synchronized) load of ``location``.

        Atomic wrappers use this for their read APIs: a relaxed atomic
        load does not pay the RMW surcharge — it costs ordinary work —
        but unlike :meth:`read` it never races with atomic writes.
        """
        self.work += units
        if self._events is not None:
            self._events.append((EV_ATOMIC_READ, location))
        if self._memcheck is not None:
            if self._certified(location):
                self.elided += 1
            else:
                if self.barrier_units:
                    self.work += self.barrier_units
                self._memcheck.on_read_event(location, self.thread_id)

    def record(self, kind: int, location: object) -> None:
        """Append a raw access event without charging.

        For structures whose cost is charged at a flat amortized rate
        (union-find's ``FIND_CHARGE``) but whose individual slot
        accesses must still reach the detector.
        """
        if self._events is not None:
            self._events.append((kind, location))
        if self._memcheck is not None:
            if self._certified(location):
                self.elided += 1
            elif kind in (EV_WRITE, EV_ATOMIC_WRITE):
                if self.barrier_units:
                    self.work += self.barrier_units
                self._memcheck.on_write_event(location, None, self.thread_id)
            else:
                if self.barrier_units:
                    self.work += self.barrier_units
                self._memcheck.on_read_event(location, self.thread_id)

    def begin_recording(self) -> None:
        """Start (or reset) memory-access event recording."""
        self._events = []

    def end_recording(self) -> list[tuple[int, object]]:
        """Stop recording and return the event stream."""
        events = self._events or []
        self._events = None
        return events

    @property
    def events(self) -> list[tuple[int, object]]:
        """Recorded ``(kind, location)`` events (empty when disabled)."""
        return self._events if self._events is not None else []

    @property
    def local_time(self) -> float:
        """Simulated time of this thread, excluding contention effects."""
        return (
            self.work * self._cost.op_cost
            + self.atomic_ops * self._cost.atomic_cost
        )

    @property
    def atomic_locations(self) -> dict[object, int]:
        """Read-only view of this thread's atomic-location histogram."""
        return self._atomic_locations

    def __repr__(self) -> str:
        return (
            f"ThreadContext(t={self.thread_id}, work={self.work}, "
            f"atomics={self.atomic_ops})"
        )
