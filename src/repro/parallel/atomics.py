"""Atomic data structures on the simulated cost model.

These wrappers execute ordinary Python/numpy updates while charging
atomic operations to the active :class:`ThreadContext`, so the
scheduler can model contention.  Because virtual threads run one after
another, the updates themselves need no real synchronization — the
charge is the point.

Location keys coalesce array indices to cache-line granularity
(:data:`~repro.parallel.context.CACHELINE_WORDS`) so nearby slots
contend, modelling false sharing.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.context import CACHELINE_WORDS, ThreadContext

__all__ = ["AtomicCounter", "AtomicArray", "AtomicSet", "AtomicList"]


class AtomicCounter:
    """A shared integer supporting ``fetch_add`` (one contended location)."""

    __slots__ = ("_value", "_key")

    def __init__(self, initial: int = 0, name: str = "counter") -> None:
        self._value = int(initial)
        self._key = ("ctr", name)

    def fetch_add(self, ctx: ThreadContext, delta: int = 1) -> int:
        """Atomically add ``delta``; return the previous value.

        Modelled as a hardware fetch-add (no CAS retry serialization).
        """
        ctx.atomic(self._key, contended=False)
        old = self._value
        self._value += delta
        return old

    @property
    def value(self) -> int:
        """Current value (non-atomic read)."""
        return self._value


class AtomicArray:
    """A numpy array with atomically-charged element updates."""

    __slots__ = ("data", "_name")

    def __init__(self, size: int, dtype: type = np.int64, name: str = "arr") -> None:
        self.data = np.zeros(size, dtype=dtype)
        self._name = name

    def _key(self, index: int) -> tuple[str, int]:
        return (self._name, index // CACHELINE_WORDS)

    def add(self, ctx: ThreadContext, index: int, delta) -> None:
        """Atomic ``data[index] += delta`` (relaxed fetch-add)."""
        ctx.atomic(self._key(index), contended=False)
        self.data[index] += delta

    def store(self, ctx: ThreadContext, index: int, value) -> None:
        """Atomic ``data[index] = value`` (publication, contends)."""
        ctx.atomic(self._key(index))
        self.data[index] = value

    def compare_and_swap(
        self, ctx: ThreadContext, index: int, expected, value
    ) -> bool:
        """CAS: write ``value`` iff the slot holds ``expected``."""
        ctx.atomic(self._key(index))
        if self.data[index] == expected:
            self.data[index] = value
            return True
        return False

    def load(self, ctx: ThreadContext, index: int):
        """Plain (charged) read of ``data[index]``."""
        ctx.charge()
        return self.data[index]

    def __len__(self) -> int:
        return int(self.data.size)


class AtomicSet:
    """A shared set with atomic add-if-absent (PHCD's ``kpc_pivot``).

    The paper's line "atomic add pvt to kpc_pivot if not exists"
    (Algorithm 2, line 9) maps to :meth:`add_if_absent`.  Every add
    hits the same hash-bucket location derived from the element, so
    different elements mostly avoid contention while duplicate inserts
    collide — matching a concurrent hash set.
    """

    __slots__ = ("_items", "_name", "_buckets")

    def __init__(self, name: str = "set", buckets: int = 64) -> None:
        self._items: set = set()
        self._name = name
        self._buckets = buckets

    def add_if_absent(self, ctx: ThreadContext, item) -> bool:
        """Insert ``item``; return True when it was not present.

        A plain read precedes the insert (check-then-CAS), so repeated
        inserts of an existing element cost one read and never contend
        — only the first insertion of each element pays the CAS.
        """
        ctx.charge(0.3)  # cached hash probe
        if item in self._items:
            return False
        ctx.atomic((self._name, hash(item) % self._buckets))
        self._items.add(item)
        return True

    def __contains__(self, item) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        # Deterministic iteration order regardless of insertion pattern.
        return iter(sorted(self._items))


class AtomicList:
    """A shared append-only list (atomic tail pointer)."""

    __slots__ = ("_items", "_key")

    def __init__(self, name: str = "list") -> None:
        self._items: list = []
        self._key = ("lst", name)

    def append(self, ctx: ThreadContext, item) -> None:
        """Atomically append ``item``."""
        ctx.atomic(self._key)
        self._items.append(item)

    def snapshot(self) -> list:
        """Copy of the current contents."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)
