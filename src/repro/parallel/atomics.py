"""Atomic data structures on the simulated cost model.

These wrappers execute ordinary Python/numpy updates while charging
atomic operations to the active :class:`ThreadContext`, so the
scheduler can model contention.  Because virtual threads run one after
another, the updates themselves need no real synchronization — the
charge is the point.

Location keys coalesce array indices to cache-line granularity
(:data:`~repro.parallel.context.CACHELINE_WORDS`) so nearby slots
contend, modelling false sharing.  Race-detection events use the
*word*-granular key instead: two atomics on different words of one
cache line contend but do not race.

Sanitizer contract
------------------
Every access that goes through a method taking a ``ctx`` is recorded
as a *synchronized* (atomic) access and can never be flagged by the
race detector.  The bare ``.data`` / ``.value`` escape hatches exist
for **post-region inspection only**: inside a parallel region they are
uncharged, invisible to the detector, and — on a real machine — racy.
The static lint pass (:mod:`repro.sanitizer.lint`) flags them inside
worker bodies; kernels use :meth:`AtomicArray.load` /
:meth:`AtomicCounter.load` instead.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.context import CACHELINE_WORDS, ThreadContext

__all__ = ["AtomicCounter", "AtomicArray", "AtomicSet", "AtomicList"]


class AtomicCounter:
    """A shared integer supporting ``fetch_add`` (one contended location)."""

    __slots__ = ("_value", "_key")

    def __init__(self, initial: int = 0, name: str = "counter") -> None:
        self._value = int(initial)
        self._key = ("ctr", name)

    def fetch_add(self, ctx: ThreadContext, delta: int = 1) -> int:
        """Atomically add ``delta``; return the previous value.

        Modelled as a hardware fetch-add (no CAS retry serialization).
        """
        ctx.atomic(self._key, contended=False)
        old = self._value
        self._value += delta
        return old

    def load(self, ctx: ThreadContext) -> int:
        """Charged atomic load of the current value.

        The in-region read API: one work unit, recorded as a
        synchronized read so the detector can pair it against
        concurrent ``fetch_add`` traffic without flagging a race.
        """
        ctx.atomic_load(self._key)
        return self._value

    @property
    def value(self) -> int:
        """Current value — uncharged, for *post-region inspection only*."""
        return self._value


class AtomicArray:
    """A numpy array with atomically-charged element updates."""

    __slots__ = ("data", "_name")

    def __init__(self, size: int, dtype: type = np.int64, name: str = "arr") -> None:
        self.data = np.zeros(size, dtype=dtype)
        self._name = name

    @classmethod
    def from_array(cls, data: np.ndarray, name: str = "arr") -> "AtomicArray":
        """Wrap an existing 1-D array *without copying*.

        The wrapper and the caller share the buffer: kernels use this
        to give charged, detector-visible atomic access to state that
        another component owns (e.g. PHCD publishing tree-node ids
        into the builder's ``tid`` array).
        """
        arr = cls.__new__(cls)
        arr.data = data
        arr._name = name
        return arr

    def _key(self, index: int) -> tuple[str, int]:
        """Cache-line-coalesced contention key (false sharing)."""
        return (self._name, index // CACHELINE_WORDS)

    def _word(self, index: int) -> tuple[str, int]:
        """Exact-word key used for race detection."""
        return (self._name, int(index))

    def add(self, ctx: ThreadContext, index: int, delta):
        """Atomic ``data[index] += delta`` (relaxed fetch-add).

        Returns the *previous* value — real parallel peeling code must
        branch on the fetch-add result, never on a later raw re-read
        of the slot (which would race with other decrements).
        """
        ctx.atomic(self._key(index), contended=False, word=self._word(index))
        old = self.data[index]
        self.data[index] += delta
        return old

    def store(self, ctx: ThreadContext, index: int, value) -> None:
        """Atomic ``data[index] = value`` (publication, contends)."""
        ctx.atomic(self._key(index), word=self._word(index))
        self.data[index] = value

    def compare_and_swap(
        self, ctx: ThreadContext, index: int, expected, value
    ) -> bool:
        """CAS: write ``value`` iff the slot holds ``expected``."""
        ctx.atomic(self._key(index), word=self._word(index))
        if self.data[index] == expected:
            self.data[index] = value
            return True
        return False

    def fetch_min(self, ctx: ThreadContext, index: int, value):
        """Atomic ``data[index] = min(data[index], value)``; returns old.

        Modelled as the usual load + CAS-min loop: an improving value
        pays one contended CAS, a non-improving one only the load.  On
        the sequential substrate the CAS succeeds on the first try.
        """
        old = self.data[index]
        if value < old:
            ctx.atomic(self._key(index), word=self._word(index))
            self.data[index] = value
        else:
            ctx.atomic_load(self._word(index))
        return old

    def load(self, ctx: ThreadContext, index: int):
        """Charged atomic load of ``data[index]`` (one work unit)."""
        ctx.atomic_load(self._word(index))
        return self.data[index]

    def __len__(self) -> int:
        return int(self.data.size)


class AtomicSet:
    """A shared set with atomic add-if-absent (PHCD's ``kpc_pivot``).

    The paper's line "atomic add pvt to kpc_pivot if not exists"
    (Algorithm 2, line 9) maps to :meth:`add_if_absent`.  Every add
    hits the same hash-bucket location derived from the element, so
    different elements mostly avoid contention while duplicate inserts
    collide — matching a concurrent hash set.
    """

    __slots__ = ("_items", "_name", "_buckets")

    def __init__(self, name: str = "set", buckets: int = 64) -> None:
        self._items: set = set()
        self._name = name
        self._buckets = buckets

    def add_if_absent(self, ctx: ThreadContext, item) -> bool:
        """Insert ``item``; return True when it was not present.

        An atomic probe precedes the insert (check-then-CAS), so
        repeated inserts of an existing element cost one read and never
        contend — only the first insertion of each element pays the CAS.
        The probe and the insert are both keyed by the item identity,
        so two threads racing on the *same* element pair as atomic
        read vs. atomic write (synchronized, as in a concurrent set).
        """
        ctx.atomic_load(("setitem", self._name, item), units=0.3)
        if item in self._items:
            return False
        ctx.atomic(
            (self._name, hash(item) % self._buckets),
            word=("setitem", self._name, item),
        )
        self._items.add(item)
        return True

    def __contains__(self, item) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        # Deterministic iteration order regardless of insertion pattern.
        return iter(sorted(self._items))


class AtomicList:
    """A shared append-only list (atomic tail pointer)."""

    __slots__ = ("_items", "_key")

    def __init__(self, name: str = "list") -> None:
        self._items: list = []
        self._key = ("lst", name)

    def append(self, ctx: ThreadContext, item) -> None:
        """Atomically append ``item``."""
        ctx.atomic(self._key)
        self._items.append(item)

    def snapshot(self) -> list:
        """Copy of the current contents."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)
