"""Simulated-multicore substrate: scheduler, cost model, atomics."""

from repro.parallel.accumulate import (
    tree_accumulate,
    tree_accumulate_euler,
    tree_depths,
)
from repro.parallel.atomics import AtomicArray, AtomicCounter, AtomicList, AtomicSet
from repro.parallel.context import ThreadContext
from repro.parallel.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.parallel.scheduler import RegionStats, SimulatedPool

__all__ = [
    "SimulatedPool",
    "RegionStats",
    "ThreadContext",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "AtomicCounter",
    "AtomicArray",
    "AtomicSet",
    "AtomicList",
    "tree_accumulate",
    "tree_accumulate_euler",
    "tree_depths",
]
