"""Composing multiple region observers on one pool.

:class:`~repro.parallel.scheduler.SimulatedPool` holds a single
observer slot, but the sanitizer families are independent tools: the
race detector (:class:`~repro.sanitizer.detector.RaceDetector`) owns
the recorded event streams, the memory checker
(:class:`~repro.sanitizer.memcheck.MemChecker`) hooks the per-access
read barrier, and the profiler consumes region records.
:class:`ObserverFanout` broadcasts the observer protocol to all of
them so ``pytest --sanitize --memcheck`` (or any other combination)
can run every family in one pass.

The fanout forwards ``on_region_begin``/``on_region_end`` to every
child in order, and the optional ``on_phase_begin``/``on_phase_end``
hooks to the children that define them.  Children must not fight over
shared state: exactly one child may drain the per-thread event streams
(``ctx.end_recording()``), which in practice means at most one
``RaceDetector`` per fanout.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.parallel.context import ThreadContext

__all__ = ["ObserverFanout"]


class ObserverFanout:
    """Broadcast the region-observer protocol to several observers."""

    __slots__ = ("observers",)

    def __init__(self, observers: Iterable[object]) -> None:
        self.observers: list[object] = [o for o in observers if o is not None]

    def on_region_begin(
        self, label: str, contexts: Sequence[ThreadContext]
    ) -> None:
        for observer in self.observers:
            observer.on_region_begin(label, contexts)

    def on_region_end(
        self, label: str, contexts: Sequence[ThreadContext]
    ) -> None:
        for observer in self.observers:
            observer.on_region_end(label, contexts)

    def on_phase_begin(self, name: str) -> None:
        for observer in self.observers:
            hook = getattr(observer, "on_phase_begin", None)
            if hook is not None:
                hook(name)

    def on_phase_end(self, name: str) -> None:
        for observer in self.observers:
            hook = getattr(observer, "on_phase_end", None)
            if hook is not None:
                hook(name)

    def __repr__(self) -> str:
        inner = ", ".join(type(o).__name__ for o in self.observers)
        return f"ObserverFanout([{inner}])"
