"""Parallel nucleus-hierarchy construction — the open gap of Section VII.

The paper observes: "A parallel solution for local nucleus query ...
is proposed in [44], but there is no parallel solution for the
hierarchy construction of nucleus decomposition."  Since the PHCD
paradigm only needs (i) elements arriving in descending decomposition
level and (ii) a connectivity relation preserved across levels, it
applies verbatim with *triangles* as elements and *K4 co-membership*
as adjacency:

* shells are (3,4)-nucleus-number classes, added in descending k;
* a K4 carries connectivity at level k iff all four of its triangles
  have theta >= k;
* the outermost (theta = 0) level falls back to shared-edge
  connectivity so the forest roots follow triangle connectivity;
* a pivot union-find over triangle ids groups shell triangles into
  tree nodes and finds parents — Algorithm 2's four steps unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HierarchyError
from repro.graph.graph import Graph
from repro.parallel.atomics import AtomicArray, AtomicSet
from repro.parallel.scheduler import SimulatedPool
from repro.nucleus.decomposition import TriangleIndex, nucleus_decomposition
from repro.sanitizer.memcheck import san_empty
from repro.unionfind.pivot import PivotUnionFind

__all__ = ["NucleusHierarchy", "nucleus_hierarchy"]


@dataclass
class NucleusHierarchy:
    """Forest over K4-connected nucleus components (triangles in nodes)."""

    index: TriangleIndex
    node_theta: np.ndarray
    parent: np.ndarray
    tid_node: np.ndarray  # triangle id -> owning node
    _node_triangles: list[list[int]]
    children: list[list[int]] = field(init=False)

    def __post_init__(self) -> None:
        self.children = [[] for _ in range(self.num_nodes)]
        for node in range(self.num_nodes):
            pa = int(self.parent[node])
            if pa >= 0:
                self.children[pa].append(node)

    @property
    def num_nodes(self) -> int:
        return int(self.node_theta.size)

    def triangles_of(self, node: int) -> np.ndarray:
        """Triangle ids stored directly in ``node``."""
        return np.asarray(self._node_triangles[node], dtype=np.int64)

    def reconstruct_nucleus(self, node: int) -> np.ndarray:
        """All triangle ids of the node's original nucleus (subtree)."""
        out: list[int] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            out.extend(self._node_triangles[cur])
            stack.extend(self.children[cur])
        return np.asarray(sorted(out), dtype=np.int64)

    def vertices_of_nucleus(self, node: int) -> np.ndarray:
        """Distinct corners of the node's nucleus triangles."""
        tris = self.index.triangles[self.reconstruct_nucleus(node)]
        return np.unique(tris.reshape(-1))

    def canonical_form(self):
        """Order-independent content description (for equality tests)."""
        entries = []
        for node in range(self.num_nodes):
            tris = tuple(sorted(self._node_triangles[node]))
            pa = int(self.parent[node])
            pkey = (
                (-1, ())
                if pa < 0
                else (int(self.node_theta[pa]), tuple(sorted(self._node_triangles[pa])))
            )
            entries.append((int(self.node_theta[node]), tris, pkey[0], pkey[1]))
        entries.sort()
        return entries

    def validate(self, theta: np.ndarray) -> None:
        """Partition + monotone-parent checks."""
        t = len(self.index)
        seen = np.zeros(t, dtype=bool)
        for node in range(self.num_nodes):
            k = int(self.node_theta[node])
            for tid in self._node_triangles[node]:
                if seen[tid]:
                    raise HierarchyError(f"triangle {tid} in two nodes")
                seen[tid] = True
                if int(theta[tid]) != k:
                    raise HierarchyError(
                        f"triangle {tid} theta {theta[tid]} in k={k} node"
                    )
                if int(self.tid_node[tid]) != node:
                    raise HierarchyError(f"tid_node({tid}) != {node}")
            pa = int(self.parent[node])
            if pa >= 0 and int(self.node_theta[pa]) >= k:
                raise HierarchyError("parent theta must be smaller")
        if t and not bool(seen.all()):
            missing = int(np.flatnonzero(~seen)[0])
            raise HierarchyError(f"triangle {missing} missing from hierarchy")


def _edge_neighbors(
    graph: Graph, index: TriangleIndex, tid: int
) -> list[int]:
    """Triangles sharing an edge with ``tid`` (outermost-level glue)."""
    a, b, c = (int(x) for x in index.triangles[tid])
    out = []
    for u, v in ((a, b), (a, c), (b, c)):
        commons = np.intersect1d(
            graph.neighbors(u), graph.neighbors(v), assume_unique=True
        )
        for w in commons:
            other = index.get(u, v, int(w))
            if other is not None and other != tid:
                out.append(other)
    return out


def nucleus_hierarchy(
    graph: Graph,
    theta: np.ndarray | None = None,
    pool: SimulatedPool | None = None,
    index: TriangleIndex | None = None,
) -> NucleusHierarchy:
    """Build the (3,4)-nucleus hierarchy with the PHCD paradigm."""
    pool = pool or SimulatedPool(threads=1)
    index = index or TriangleIndex(graph)
    t = len(index)
    if theta is None:
        theta = nucleus_decomposition(graph, index, pool)
    theta = np.asarray(theta, dtype=np.int64)
    if t == 0:
        return NucleusHierarchy(
            index=index,
            node_theta=np.empty(0, dtype=np.int64),
            parent=np.empty(0, dtype=np.int64),
            tid_node=np.empty(0, dtype=np.int64),
            _node_triangles=[],
        )

    kmax = int(theta.max())
    order = np.lexsort((np.arange(t), theta))
    rank = san_empty(t, np.int64, name="nucleus_rank")
    rank[order] = np.arange(t)
    shells: list[list[int]] = [[] for _ in range(kmax + 1)]
    for tid in range(t):
        shells[int(theta[tid])].append(tid)

    uf = PivotUnionFind(rank, name="nucleus_uf")
    tid_node = np.full(t, -1, dtype=np.int64)
    tid_arr = AtomicArray.from_array(tid_node, name="nucleus_tid")
    node_theta: list[int] = []
    node_parent: list[int] = []
    node_triangles: list[list[int]] = []

    def new_node(k: int) -> int:
        node_theta.append(k)
        node_parent.append(-1)
        node_triangles.append([])
        return len(node_theta) - 1

    for k in range(kmax, -1, -1):
        shell = shells[k]
        if not shell:
            continue
        kpc_pivot = AtomicSet(name=f"nucleus_kpc_{k}")

        # Step 1: capture pivots of higher components this shell joins.
        def collect(tid: int, ctx) -> None:
            ctx.charge(1)
            for companions in index.k4_companions(tid):
                ctx.charge(1)
                if all(theta[x] >= k for x in companions):
                    for other in companions:
                        if theta[other] > k:
                            kpc_pivot.add_if_absent(
                                ctx, uf.get_pivot(other, ctx)
                            )

        pool.parallel_for(shell, collect, label=f"nucleus:step1_k{k}")
        if k == 0:
            def collect_edges(tid: int, ctx) -> None:
                for other in _edge_neighbors(graph, index, tid):
                    ctx.charge(1)
                    if theta[other] > 0:
                        kpc_pivot.add_if_absent(ctx, uf.get_pivot(other, ctx))

            pool.parallel_for(shell, collect_edges, label="nucleus:step1b_k0")

        # Step 2: union along K4s wholly inside the k-nucleus.
        def connect(tid: int, ctx) -> None:
            ctx.charge(1)
            for companions in index.k4_companions(tid):
                ctx.charge(1)
                if all(theta[x] >= k for x in companions):
                    for other in companions:
                        uf.union(tid, other, ctx)

        pool.parallel_for(shell, connect, label=f"nucleus:step2_k{k}")
        if k == 0:
            def connect_edges(tid: int, ctx) -> None:
                for other in _edge_neighbors(graph, index, tid):
                    ctx.charge(1)
                    uf.union(tid, other, ctx)

            pool.parallel_for(shell, connect_edges, label="nucleus:step2b_k0")

        # Step 3: group shell triangles into nodes by pivot.
        def group(tid: int, ctx) -> None:
            pvt = uf.get_pivot(tid, ctx)
            node = int(tid_arr.load(ctx, pvt))
            if node < 0:
                # create-node race between shell triangles of one
                # component: allocate, publish via CAS, loser re-reads
                fresh = new_node(k)
                ctx.atomic(("nucleus_nodes",), contended=False)
                if tid_arr.compare_and_swap(ctx, pvt, -1, fresh):
                    node = fresh
                else:
                    node = int(tid_arr.load(ctx, pvt))
            if tid != pvt:
                # each shell triangle owns its tid_node slot this round
                ctx.write(("nucleus_tid", int(tid)), 0.0)
                tid_node[tid] = node
            ctx.atomic(("nucleus_members", node), contended=False)
            node_triangles[node].append(tid)  # sani: ok - tail append, charged atomic above

        pool.parallel_for(shell, group, label=f"nucleus:step3_k{k}")

        # Step 4: attach captured children under the new nodes.
        def attach(old_pivot: int, ctx) -> None:
            pvt = uf.get_pivot(old_pivot, ctx)
            child = int(tid_arr.load(ctx, old_pivot))
            parent = int(tid_arr.load(ctx, pvt))
            ctx.write(("nucleus_parent", child), 0.0)
            node_parent[child] = parent  # sani: ok - distinct old pivots, distinct children

        pool.parallel_for(list(kpc_pivot), attach, label=f"nucleus:step4_k{k}")

    return NucleusHierarchy(
        index=index,
        node_theta=np.asarray(node_theta, dtype=np.int64),
        parent=np.asarray(node_parent, dtype=np.int64),
        tid_node=tid_node,
        _node_triangles=node_triangles,
    )
