"""(3,4)-nucleus decomposition and its parallel hierarchy.

Closes the gap the paper names in Section VII: hierarchy construction
for nucleus decomposition had no parallel solution — here it runs on
the same union-find/pivot framework as PHCD.
"""

from repro.nucleus.decomposition import (
    TriangleIndex,
    nucleus_decomposition,
    triangle_supports,
)
from repro.nucleus.hierarchy import NucleusHierarchy, nucleus_hierarchy

__all__ = [
    "TriangleIndex",
    "triangle_supports",
    "nucleus_decomposition",
    "NucleusHierarchy",
    "nucleus_hierarchy",
]
