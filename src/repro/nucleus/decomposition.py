"""(3,4)-nucleus decomposition: per-triangle nucleus numbers.

The nucleus decomposition of Sariyüce & Pinar generalizes k-core
(vertices/edges) and k-truss (edges/triangles) one motif higher:
*triangles* supported by *K4s*.  The (3,4)-nucleus number
``theta(T)`` of a triangle is the largest ``k`` such that ``T``
belongs to a maximal sub-collection of triangles in which every
triangle participates in at least ``k`` K4s whose four triangles all
remain in the sub-collection.

The paper's related work (Section VII) points out that hierarchy
construction for nucleus decomposition *has no parallel solution* —
:mod:`repro.nucleus.hierarchy` closes that gap with the PHCD
framework; this module provides the decomposition it consumes, via the
same bin-bucket peeling as k-core and k-truss, one motif level up.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.scheduler import SimulatedPool

__all__ = ["TriangleIndex", "triangle_supports", "nucleus_decomposition"]


class TriangleIndex:
    """Dense ids for a graph's triangles with O(1) lookup.

    Triangles are stored as sorted vertex triples, enumerated once via
    the degree-ordered wedge direction (O(m^1.5)).
    """

    __slots__ = ("triangles", "_lookup", "_graph")

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        degrees = graph.degrees()
        found: list[tuple[int, int, int]] = []
        for u, v in graph.edges():
            # direct the edge to the lower-(degree, id) endpoint
            lo, hi = (
                (u, v)
                if (int(degrees[u]), u) < (int(degrees[v]), v)
                else (v, u)
            )
            row_hi = graph.neighbors(hi)
            for w in graph.neighbors(lo):
                w = int(w)
                if w == hi:
                    continue
                # count each triangle once: at its max-id vertex as w
                if w < max(u, v):
                    continue
                pos = int(np.searchsorted(row_hi, w))
                if pos < row_hi.size and row_hi[pos] == w:
                    found.append(tuple(sorted((u, v, w))))
        unique = sorted(set(found))
        self.triangles = (
            np.asarray(unique, dtype=np.int64)
            if unique
            else np.empty((0, 3), dtype=np.int64)
        )
        self._lookup = {t: i for i, t in enumerate(unique)}

    def id_of(self, a: int, b: int, c: int) -> int:
        """Triangle id of ``{a, b, c}``; KeyError if absent."""
        return self._lookup[tuple(sorted((a, b, c)))]

    def get(self, a: int, b: int, c: int) -> int | None:
        """Triangle id of ``{a, b, c}`` or None."""
        return self._lookup.get(tuple(sorted((a, b, c))))

    def k4_companions(self, tid: int) -> list[tuple[int, int, int]]:
        """For triangle ``tid``, its K4s as companion triangle triples.

        Each common neighbor ``w`` of the triangle's corners closes a
        K4 whose other three triangles are returned as one tuple.
        """
        a, b, c = (int(x) for x in self.triangles[tid])
        g = self._graph
        commons = np.intersect1d(
            np.intersect1d(g.neighbors(a), g.neighbors(b), assume_unique=True),
            g.neighbors(c),
            assume_unique=True,
        )
        out = []
        for w in commons:
            w = int(w)
            t1 = self.get(a, b, w)
            t2 = self.get(a, c, w)
            t3 = self.get(b, c, w)
            if t1 is not None and t2 is not None and t3 is not None:
                out.append((t1, t2, t3))
        return out

    def __len__(self) -> int:
        return int(self.triangles.shape[0])


def triangle_supports(
    graph: Graph, index: TriangleIndex | None = None
) -> np.ndarray:
    """Number of K4s through every triangle (by triangle id)."""
    index = index or TriangleIndex(graph)
    supports = np.zeros(len(index), dtype=np.int64)
    for tid in range(len(index)):
        supports[tid] = len(index.k4_companions(tid))
    return supports


def nucleus_decomposition(
    graph: Graph,
    index: TriangleIndex | None = None,
    pool: SimulatedPool | None = None,
) -> np.ndarray:
    """(3,4)-nucleus number of every triangle (by triangle id).

    Bin-bucket peeling over K4 supports, exactly the k-core/k-truss
    recipe one motif level up; charged to ``pool`` when given.
    """
    index = index or TriangleIndex(graph)
    t = len(index)
    theta = np.zeros(t, dtype=np.int64)
    if t == 0:
        return theta
    support = triangle_supports(graph, index)
    charged = int(support.sum()) + t

    alive = np.ones(t, dtype=bool)
    buckets: list[list[int]] = [[] for _ in range(int(support.max()) + 1)]
    for tid in range(t):
        buckets[int(support[tid])].append(tid)
    cursor = 0
    removed = 0
    while removed < t:
        while cursor < len(buckets) and not buckets[cursor]:
            cursor += 1
        tid = buckets[cursor].pop()
        if not alive[tid] or support[tid] != cursor:
            continue  # stale entry
        alive[tid] = False
        removed += 1
        theta[tid] = cursor
        for companions in index.k4_companions(tid):
            charged += 3
            if not all(alive[x] for x in companions):
                continue  # this K4 is already broken
            for other in companions:
                if support[other] > cursor:
                    support[other] -= 1
                    buckets[int(support[other])].append(other)
    if pool is not None:
        with pool.phase("nucleus:peel"):
            with pool.serial_region("nucleus_decomposition") as ctx:
                ctx.charge(charged)
    return theta
